//! Property-based integration tests (proptest) on cross-crate invariants:
//! trigger application, detection statistics, SSIM bounds, and the
//! mask/pattern parameterisation.

use proptest::prelude::*;
use universal_soldier::defenses::TriggerVar;
use universal_soldier::tensor::ssim::ssim;
use universal_soldier::tensor::stats::{anomaly_indices, flag_small_outliers, median};
use universal_soldier::tensor::Tensor;

fn unit_image(seed_vals: &[f32], c: usize, h: usize, w: usize) -> Tensor {
    Tensor::from_fn(&[c, h, w], |i| {
        seed_vals[i % seed_vals.len()].clamp(0.0, 1.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trigger_var_apply_stays_in_unit_range(
        mask_vals in proptest::collection::vec(0.0f32..1.0, 16),
        pat_vals in proptest::collection::vec(0.0f32..1.0, 16),
        img_vals in proptest::collection::vec(0.0f32..1.0, 16),
    ) {
        let mask = Tensor::from_vec(mask_vals, &[4, 4]);
        let pattern = Tensor::from_vec(pat_vals, &[1, 4, 4]);
        let var = TriggerVar::from_values(&mask, &pattern);
        let batch = Tensor::from_vec(img_vals, &[1, 1, 4, 4]);
        let out = var.apply(&batch);
        prop_assert!(out.min() >= -1e-4, "below 0: {}", out.min());
        prop_assert!(out.max() <= 1.0 + 1e-4, "above 1: {}", out.max());
    }

    #[test]
    fn trigger_var_zero_mask_is_identity(
        pat_vals in proptest::collection::vec(0.0f32..1.0, 16),
        img_vals in proptest::collection::vec(0.0f32..1.0, 16),
    ) {
        let mask = Tensor::zeros(&[4, 4]);
        let pattern = Tensor::from_vec(pat_vals, &[1, 4, 4]);
        let var = TriggerVar::from_values(&mask, &pattern);
        let batch = Tensor::from_vec(img_vals.clone(), &[1, 1, 4, 4]);
        let out = var.apply(&batch);
        for (a, b) in out.data().iter().zip(&img_vals) {
            prop_assert!((a - b).abs() < 2e-3, "zero mask changed pixel {a} vs {b}");
        }
    }

    #[test]
    fn trigger_var_full_mask_replaces_with_pattern(
        pat_vals in proptest::collection::vec(0.05f32..0.95, 16),
        img_vals in proptest::collection::vec(0.0f32..1.0, 16),
    ) {
        let mask = Tensor::ones(&[4, 4]);
        let pattern = Tensor::from_vec(pat_vals.clone(), &[1, 4, 4]);
        let var = TriggerVar::from_values(&mask, &pattern);
        let batch = Tensor::from_vec(img_vals, &[1, 1, 4, 4]);
        let out = var.apply(&batch);
        for (a, p) in out.data().iter().zip(&pat_vals) {
            // atanh clamping costs a little precision near 0/1.
            prop_assert!((a - p).abs() < 2e-2, "full mask should yield pattern: {a} vs {p}");
        }
    }

    #[test]
    fn ssim_is_bounded_and_reflexive(
        vals in proptest::collection::vec(0.0f32..1.0, 64),
    ) {
        let x = unit_image(&vals, 1, 10, 10);
        let s = ssim(&x, &x);
        prop_assert!((s - 1.0).abs() < 1e-3, "ssim(x,x) = {s}");
        // Against a constant grey image SSIM stays in [-1, 1].
        let grey = Tensor::full(&[1, 10, 10], 0.5);
        let s = ssim(&x, &grey);
        prop_assert!((-1.0..=1.0).contains(&s), "ssim out of range: {s}");
    }

    #[test]
    fn anomaly_indices_are_translation_invariant(
        base in proptest::collection::vec(1.0f64..100.0, 6..12),
        shift in 0.0f64..50.0,
    ) {
        let shifted: Vec<f64> = base.iter().map(|v| v + shift).collect();
        let a = anomaly_indices(&base);
        let b = anomaly_indices(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "translation changed index: {x} vs {y}");
        }
    }

    #[test]
    fn flagging_is_scale_invariant(
        base in proptest::collection::vec(1.0f64..100.0, 6..12),
        scale in 0.1f64..10.0,
    ) {
        let scaled: Vec<f64> = base.iter().map(|v| v * scale).collect();
        let a = flag_small_outliers(&base, 2.0);
        let b = flag_small_outliers(&scaled, 2.0);
        prop_assert_eq!(a.flagged, b.flagged);
    }

    #[test]
    fn median_is_within_range(vals in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
        let m = median(&vals);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn mask_l1_matches_mask_sum(
        mask_vals in proptest::collection::vec(0.0f32..1.0, 16),
    ) {
        let mask = Tensor::from_vec(mask_vals, &[4, 4]);
        let pattern = Tensor::full(&[1, 4, 4], 0.5);
        let var = TriggerVar::from_values(&mask, &pattern);
        let diff = (var.mask_l1() - var.mask().sum() as f64).abs();
        prop_assert!(diff < 1e-5);
    }
}
