//! Pins the daemon's bounded-memory contract with a counting global
//! allocator: live heap bytes are tracked process-wide (the daemon
//! allocates on reader, scheduler, and inspection-worker threads, so the
//! thread-local counter of `crates/core/tests/refine_alloc.rs` would miss
//! almost everything), and the suite asserts that
//!
//! * repeated submissions of the **same** bundle re-use the resident
//!   model — live bytes stop growing once the cache is warm, and the
//!   hit/miss ledger shows one parse total;
//! * a stream of **distinct** bundles cannot grow the cache past its
//!   configured capacity — the LRU evicts, `resident_models` stays at the
//!   cap, and live bytes stay bounded.
//!
//! Everything runs in ONE `#[test]` so no concurrent test traffic
//! pollutes the live-byte readings; this file is its own test binary for
//! the same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;
use universal_soldier::eval::serve::{Client, ServeConfig, Server, SubmitOptions};

mod serve_util;

/// Live heap bytes across every thread (allocations minus deallocations).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

#[test]
fn resident_cache_keeps_daemon_memory_bounded() {
    const CAPACITY: usize = 2;
    let config = ServeConfig {
        workers: 2,
        max_pending: 8,
        cache_capacity: CAPACITY,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let mut client = Client::connect(server.local_addr()).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");
    let submit = |client: &mut Client, tag: u64, bundle: &[u8]| {
        let opts = SubmitOptions {
            tag,
            seed: 17,
            subset: 32,
            workers: 2,
            fast: true,
        };
        client
            .inspect(bundle, &opts, |_| {})
            .expect("daemon inspection")
    };

    // --- Phase 1: the same bundle over and over -------------------------
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    // Two warm-up requests: the first parses the bundle and regenerates
    // the dataset into the resident cache, the second covers lazy one-time
    // setup on the warm path (workspace pools, formatting machinery).
    let first = submit(&mut client, 1, &bundle);
    assert!(!first.cache_hit, "the very first request must miss");
    let second = submit(&mut client, 2, &bundle);
    assert!(second.cache_hit, "the repeat request must stay resident");

    const REPEATS: u64 = 8;
    let warm_baseline = live_bytes();
    for i in 0..REPEATS {
        let v = submit(&mut client, 10 + i, &bundle);
        assert!(v.cache_hit, "repeat {i} fell out of the resident cache");
    }
    let growth = live_bytes() - warm_baseline;
    // One resident entry (model + regenerated dataset) is a few hundred
    // KiB; if warm requests leaked even one entry-sized thing each, eight
    // repeats would blow far past this bound. Transient inspection
    // buffers are freed before `inspect` returns, so the steady state is
    // near-zero growth.
    assert!(
        growth < (1 << 20),
        "8 warm same-bundle requests grew live heap by {growth} bytes — \
         the warm path must not accumulate per-request state"
    );
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1, "one parse for the repeated bundle");
    assert_eq!(stats.cache_hits, 1 + REPEATS);

    // --- Phase 2: distinct bundles past the cache capacity --------------
    // Each variant carries a different data-regeneration seed, so each has
    // distinct bytes (a distinct fingerprint) and forces a cache miss.
    const DISTINCT: u64 = 4;
    let bounded_baseline = live_bytes();
    for k in 0..DISTINCT {
        let variant = serve_util::bundle_bytes(1000 + k);
        let v = submit(&mut client, 100 + k, &variant);
        assert!(!v.cache_hit, "variant {k} has fresh bytes: must miss");
    }
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1 + DISTINCT);
    assert!(
        stats.resident_models <= CAPACITY as u64,
        "{} models resident with capacity {CAPACITY}: the LRU failed to evict",
        stats.resident_models
    );
    // Streaming more distinct bundles than the cache holds must not grow
    // memory linearly with the stream: everything past the cap is evicted.
    // Allow capacity entries' worth of slack (generously sized) on top of
    // the warm baseline.
    let growth = live_bytes() - bounded_baseline;
    assert!(
        growth < (CAPACITY as i64) * (4 << 20),
        "{DISTINCT} distinct bundles grew live heap by {growth} bytes with a \
         {CAPACITY}-entry cache — eviction is not releasing memory"
    );

    // The evicted-and-resubmitted original bundle misses again (it was
    // pushed out by the variants), which is exactly the bounded-memory
    // trade: re-parse cost, not unbounded growth.
    let v = submit(&mut client, 200, &bundle);
    assert!(!v.cache_hit, "the original bundle should have been evicted");
    let stats = server.stop();
    assert!(stats.resident_models <= CAPACITY as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.protocol_errors, 0);
}
