//! Pins the daemon's bounded-memory contract with a counting global
//! allocator: live heap bytes are tracked process-wide (the daemon
//! allocates on reader, scheduler, and inspection-worker threads, so the
//! thread-local counter of `crates/core/tests/refine_alloc.rs` would miss
//! almost everything), and the suite asserts that
//!
//! * repeated submissions of the **same** bundle re-use the resident
//!   model — live bytes stop growing once the cache is warm, and the
//!   hit/miss ledger shows one parse total;
//! * a stream of **distinct** bundles cannot grow the cache past its
//!   configured **byte budget** — the LRU evicts by actual resident
//!   footprint (model + regenerated dataset), `resident_models` stays at
//!   what the budget affords, and live bytes stay bounded;
//! * a quantized (Q8) twin of the fixture bundle is accepted by the
//!   daemon, and is ≥ 1.8× smaller than its f32 twin both on disk and in
//!   resident memory (measured with the counting allocator).
//!
//! Everything runs in ONE `#[test]` so no concurrent test traffic
//! pollutes the live-byte readings; this file is its own test binary for
//! the same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;
use universal_soldier::attacks::persist::read_victim_bytes;
use universal_soldier::eval::serve::{Client, ServeConfig, Server, SubmitOptions};
use universal_soldier::tensor::Dtype;

mod serve_util;

/// Live heap bytes across every thread (allocations minus deallocations).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Live-heap delta held by one parsed-and-resident `VictimBundle` —
/// allocate it, read the counter, drop it. Transient parse buffers are
/// freed before `read_victim_bytes` returns, so the delta is the bundle's
/// actual resident footprint.
fn resident_footprint(bytes: &[u8]) -> i64 {
    let before = live_bytes();
    let parsed = read_victim_bytes(bytes).expect("parsing a fixture bundle");
    let delta = live_bytes() - before;
    drop(parsed);
    delta
}

#[test]
fn resident_cache_keeps_daemon_memory_bounded() {
    // Size the byte budget from the fixture's true footprint (model +
    // regenerated dataset): room for two resident entries, not three.
    const ENTRIES: usize = 2;
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    let entry_footprint = {
        let mut parsed = read_victim_bytes(&bundle).expect("parsing the fixture bundle");
        let data = parsed.data_spec.generate(parsed.data_seed);
        parsed.victim.model.resident_bytes() + data.resident_bytes()
    };
    let config = ServeConfig {
        workers: 2,
        max_pending: 8,
        cache_bytes: ENTRIES * entry_footprint + entry_footprint / 2,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let mut client = Client::connect(server.local_addr()).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");
    let submit = |client: &mut Client, tag: u64, bundle: &[u8]| {
        let opts = SubmitOptions {
            tag,
            seed: 17,
            subset: 32,
            workers: 2,
            fast: true,
        };
        client
            .inspect(bundle, &opts, |_| {})
            .expect("daemon inspection")
    };

    // --- Phase 1: the same bundle over and over -------------------------
    // Two warm-up requests: the first parses the bundle and regenerates
    // the dataset into the resident cache, the second covers lazy one-time
    // setup on the warm path (workspace pools, formatting machinery).
    let first = submit(&mut client, 1, &bundle);
    assert!(!first.cache_hit, "the very first request must miss");
    let second = submit(&mut client, 2, &bundle);
    assert!(second.cache_hit, "the repeat request must stay resident");

    const REPEATS: u64 = 8;
    let warm_baseline = live_bytes();
    for i in 0..REPEATS {
        let v = submit(&mut client, 10 + i, &bundle);
        assert!(v.cache_hit, "repeat {i} fell out of the resident cache");
    }
    let growth = live_bytes() - warm_baseline;
    // One resident entry (model + regenerated dataset) is a few hundred
    // KiB; if warm requests leaked even one entry-sized thing each, eight
    // repeats would blow far past this bound. Transient inspection
    // buffers are freed before `inspect` returns, so the steady state is
    // near-zero growth.
    assert!(
        growth < (1 << 20),
        "8 warm same-bundle requests grew live heap by {growth} bytes — \
         the warm path must not accumulate per-request state"
    );
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1, "one parse for the repeated bundle");
    assert_eq!(stats.cache_hits, 1 + REPEATS);

    // --- Phase 2: distinct bundles past the byte budget -----------------
    // Each variant carries a different data-regeneration seed, so each has
    // distinct bytes (a distinct fingerprint) and forces a cache miss.
    // Every variant has the same footprint as the original (same spec,
    // same sizes), so the budget affords exactly `ENTRIES` of them.
    const DISTINCT: u64 = 4;
    let bounded_baseline = live_bytes();
    for k in 0..DISTINCT {
        let variant = serve_util::bundle_bytes(1000 + k);
        let v = submit(&mut client, 100 + k, &variant);
        assert!(!v.cache_hit, "variant {k} has fresh bytes: must miss");
    }
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1 + DISTINCT);
    assert!(
        stats.resident_models <= ENTRIES as u64,
        "{} models resident with a budget sized for {ENTRIES}: the LRU \
         failed to evict by footprint",
        stats.resident_models
    );
    // Streaming more distinct bundles than the budget holds must not grow
    // memory linearly with the stream: everything past the budget is
    // evicted. Allow the budget's worth of slack (generously sized) on
    // top of the warm baseline.
    let growth = live_bytes() - bounded_baseline;
    assert!(
        growth < (ENTRIES as i64) * (4 << 20),
        "{DISTINCT} distinct bundles grew live heap by {growth} bytes with \
         a {ENTRIES}-entry byte budget — eviction is not releasing memory"
    );

    // The evicted-and-resubmitted original bundle misses again (it was
    // pushed out by the variants), which is exactly the bounded-memory
    // trade: re-parse cost, not unbounded growth.
    let v = submit(&mut client, 200, &bundle);
    assert!(!v.cache_hit, "the original bundle should have been evicted");

    // --- Phase 3: the quantized twin ------------------------------------
    // A Q8 bundle of the same victim is accepted by the daemon like any
    // other bundle: one miss to parse, then resident.
    let q8 = serve_util::bundle_bytes_dtype(serve_util::FIXTURE_DATA_SEED, Dtype::Q8);
    let v = submit(&mut client, 300, &q8);
    assert!(!v.cache_hit, "the Q8 twin has fresh bytes: must miss");
    let v = submit(&mut client, 301, &q8);
    assert!(v.cache_hit, "the Q8 twin must stay resident once parsed");

    let stats = server.stop();
    assert!(stats.resident_models <= ENTRIES as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.protocol_errors, 0);

    // With the daemon gone (no concurrent allocation traffic), measure
    // the low-precision storage win: the Q8 twin must be ≥ 1.8× smaller
    // than its f32 twin on disk AND in resident memory. (In memory the
    // win is larger than on disk: a dense f32 weight keeps a same-sized
    // gradient buffer resident, a quantized weight keeps none.)
    assert!(
        bundle.len() as f64 >= 1.8 * q8.len() as f64,
        "Q8 bundle is only {:.2}x smaller on disk ({} vs {} bytes)",
        bundle.len() as f64 / q8.len() as f64,
        bundle.len(),
        q8.len()
    );
    let f32_resident = resident_footprint(&bundle);
    let q8_resident = resident_footprint(&q8);
    assert!(
        f32_resident as f64 >= 1.8 * q8_resident as f64,
        "Q8 bundle is only {:.2}x smaller resident ({} vs {} live bytes)",
        f32_resident as f64 / q8_resident as f64,
        f32_resident,
        q8_resident
    );
}
