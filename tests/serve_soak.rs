//! Concurrency soak for the inspection daemon: several clients hammer
//! one server at once, and the suite pins the three properties that make
//! multi-tenancy work — fair scheduling (a flooding client cannot starve
//! single-request tenants), request/response correlation (every verdict
//! maps back to exactly one submitted tag), and the shared-`&Network`
//! contract (the scheduler clones no model, no matter how many jobs run).

mod serve_util;

use std::time::{Duration, Instant};
use universal_soldier::eval::serve::{Client, Frame, ServeConfig, Server, SubmitOptions};
use universal_soldier::nn::models::network_clone_count;

fn connect(addr: std::net::SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");
    client
}

fn opts(tag: u64) -> SubmitOptions {
    SubmitOptions {
        tag,
        seed: 17,
        subset: 32,
        workers: 2,
        fast: true,
    }
}

#[test]
fn flooding_client_cannot_starve_single_request_tenants() {
    let config = ServeConfig {
        workers: 2,
        max_pending: 8,
        cache_bytes: 64 << 20,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let addr = server.local_addr();
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);

    // Warm the resident cache so every measured job costs the same.
    connect(addr)
        .inspect(&bundle, &opts(1), |_| {})
        .expect("cache-warming request");

    // Client A floods: six jobs queued back to back on one connection
    // *before* the single-request tenants even connect, so its queue is
    // full when they arrive. Submitting from this thread (not a spawned
    // one) removes the race between the flood and the tenants.
    const FLOOD: u64 = 6;
    let mut flood_client = connect(addr);
    for i in 0..FLOOD {
        flood_client
            .submit(&bundle, &opts(100 + i))
            .expect("queueing a flood job");
    }

    let (a_last_done, b_done, c_done) = std::thread::scope(|scope| {
        // The flood client drains its own event stream, proving along
        // the way that every verdict correlates to exactly one tag.
        let a = scope.spawn(move || {
            let mut client = flood_client;
            let mut tag_of_job = std::collections::HashMap::new();
            let mut verdict_tags = Vec::new();
            let mut last_done = None;
            while verdict_tags.len() < FLOOD as usize {
                match client.next_frame().expect("flood client event stream") {
                    Frame::Accepted { tag, job, .. } => {
                        assert!(
                            tag_of_job.insert(job, tag).is_none(),
                            "job id {job} assigned twice"
                        );
                    }
                    Frame::Progress(ev) => {
                        assert!(
                            tag_of_job.contains_key(&ev.job),
                            "progress for a job this connection never submitted"
                        );
                    }
                    Frame::Verdict(v) => {
                        let tag = *tag_of_job
                            .get(&v.job)
                            .expect("verdict for a job this connection never submitted");
                        verdict_tags.push(tag);
                        last_done = Some(Instant::now());
                    }
                    other => panic!("unexpected frame on the flood connection: {other:?}"),
                }
            }
            verdict_tags.sort_unstable();
            assert_eq!(
                verdict_tags,
                (100..100 + FLOOD).collect::<Vec<u64>>(),
                "every flood tag must get exactly one verdict"
            );
            last_done.expect("the flood saw at least one verdict")
        });

        // B and C arrive *after* the flood is queued and want one verdict
        // each. Round-robin scheduling must interleave them ahead of the
        // flood's tail instead of making them wait out all six jobs.
        let bundle_ref = &bundle;
        let single_tenant = move |tag: u64| {
            let mut client = connect(addr);
            let verdict = client
                .inspect(bundle_ref, &opts(tag), |_| {})
                .expect("single-request tenant");
            assert_eq!(verdict.per_class.len(), 4);
            Instant::now()
        };
        let b = scope.spawn(move || single_tenant(200));
        let c = scope.spawn(move || single_tenant(300));

        (
            a.join().expect("flood client"),
            b.join().expect("tenant B"),
            c.join().expect("tenant C"),
        )
    });

    assert!(
        b_done < a_last_done,
        "tenant B waited out the whole flood: fair scheduling is broken"
    );
    assert!(
        c_done < a_last_done,
        "tenant C waited out the whole flood: fair scheduling is broken"
    );
    let stats = server.stop();
    assert_eq!(stats.completed, 1 + FLOOD + 2);
    assert_eq!(stats.rejected, 0, "nothing here should trip admission");
    assert_eq!(stats.cache_misses, 1, "one parse, then resident forever");
}

#[test]
fn admission_control_rejects_past_the_pending_cap_and_recovers() {
    let config = ServeConfig {
        workers: 2,
        max_pending: 1,
        cache_bytes: 64 << 20,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let addr = server.local_addr();
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);

    // Two back-to-back submissions against a cap of one pending job: the
    // first is admitted, the second bounces with an error frame echoing
    // its tag — and the first still completes untouched.
    let mut client = connect(addr);
    client.submit(&bundle, &opts(1)).expect("first submission");
    client.submit(&bundle, &opts(2)).expect("second submission");
    let mut accepted = 0u32;
    let mut rejected_tags = Vec::new();
    let mut verdicts = 0u32;
    while verdicts == 0 || accepted > verdicts {
        match client.next_frame().expect("event stream") {
            Frame::Accepted { .. } => accepted += 1,
            Frame::Progress(_) => {}
            Frame::Verdict(_) => verdicts += 1,
            Frame::Error { tag, job, message } => {
                assert_eq!(job, 0, "a rejection precedes job assignment");
                assert!(
                    message.contains("pending"),
                    "unexpected rejection message: {message}"
                );
                rejected_tags.push(tag);
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(accepted, 1);
    assert_eq!(rejected_tags, vec![2], "the overflow tag must bounce");

    // The connection is not poisoned: with the queue drained, the same
    // client submits again and gets a verdict.
    let verdict = client
        .inspect(&bundle, &opts(3), |_| {})
        .expect("post-rejection submission");
    assert_eq!(verdict.per_class.len(), 4);
    let stats = server.stop();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn daemon_scheduler_spawns_zero_network_clones() {
    // The scheduler answers every job against its resident model by
    // reference: parse once on the cache miss, then share `&Network`
    // across the per-class fan-out of every subsequent job. (The counter
    // is process-wide, so — as in tests/determinism.rs — no test in this
    // binary may exercise `Network::clone`.)
    let config = ServeConfig {
        workers: 2,
        max_pending: 8,
        cache_bytes: 64 << 20,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let addr = server.local_addr();
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);

    let mut client = connect(addr);
    // Warm-up covers the parse path plus any lazy one-time setup.
    client
        .inspect(&bundle, &opts(1), |_| {})
        .expect("warm-up request");
    let before = network_clone_count();
    for (i, workers) in [1u32, 2, 4].into_iter().enumerate() {
        let opts = SubmitOptions {
            tag: 10 + i as u64,
            workers,
            ..opts(0)
        };
        let verdict = client
            .inspect(&bundle, &opts, |_| {})
            .expect("measured request");
        assert_eq!(verdict.per_class.len(), 4);
        assert!(verdict.cache_hit, "warm requests must stay resident");
    }
    let after = network_clone_count();
    assert_eq!(
        after - before,
        0,
        "the daemon cloned the victim {} times; jobs must share the resident &Network",
        after - before
    );
    drop(server);
}
