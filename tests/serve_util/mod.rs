//! Shared fixtures for the serve-layer integration suites. Every suite
//! drives a real daemon over a real loopback socket, and they all need
//! the same thing to feed it: a victim bundle as raw USBV bytes.
//!
//! The victim is the `determinism-badnet` fixture (4-class BasicCnn,
//! `TrainConfig::fast`) shared with `tests/determinism.rs` — trained once
//! into the `target/fixtures/` disk cache, loaded bit-exactly by every
//! suite afterwards.

#![allow(dead_code)] // each test binary uses a different subset of this

use universal_soldier::attacks::persist::{write_victim, write_victim_dtype};
use universal_soldier::prelude::*;
use universal_soldier::tensor::Dtype;

/// The training data seed baked into the fixture (and therefore the
/// data-regeneration seed a faithful bundle should carry).
pub const FIXTURE_DATA_SEED: u64 = 55;

/// The fixture's training seed.
pub const FIXTURE_TRAIN_SEED: u64 = 9;

fn fixture_spec() -> FixtureSpec {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = BadNet::new(2, 1, 0.15);
    let tc = TrainConfig::fast();
    FixtureSpec::new(
        "determinism-badnet",
        spec,
        FIXTURE_DATA_SEED,
        FIXTURE_TRAIN_SEED,
    )
    .with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ])
}

/// The fixture victim and the dataset it was trained on, through the disk
/// cache (trained on the first-ever run, loaded bit-exactly afterwards).
pub fn small_victim() -> (Dataset, Victim) {
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = BadNet::new(2, 1, 0.15);
    let tc = TrainConfig::fast();
    cached_victim(&fixture_spec(), |data| attack.execute(data, arch, tc, 9))
}

/// Serialises the fixture victim as USBV bundle bytes carrying the given
/// data-regeneration seed. `FIXTURE_DATA_SEED` reproduces the training
/// dataset (what the determinism suite wants); any other value still
/// parses and inspects fine but yields distinct bundle bytes — the memory
/// suite uses that to stream "different" models at the resident cache
/// without training more than one victim.
pub fn bundle_bytes(data_seed: u64) -> Vec<u8> {
    let fixture = fixture_spec();
    let config_hash = fixture.config_hash;
    let (_, victim) = small_victim();
    let mut bundle = VictimBundle {
        victim,
        train_seed: FIXTURE_TRAIN_SEED,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed,
    };
    let mut out = Vec::new();
    write_victim(&mut out, &mut bundle).expect("serialising the fixture bundle cannot fail");
    out
}

/// Like [`bundle_bytes`], but stores the weight bank at `dtype` — the
/// low-precision twin of the f32 fixture bundle.
pub fn bundle_bytes_dtype(data_seed: u64, dtype: Dtype) -> Vec<u8> {
    let fixture = fixture_spec();
    let config_hash = fixture.config_hash;
    let (_, victim) = small_victim();
    let mut bundle = VictimBundle {
        victim,
        train_seed: FIXTURE_TRAIN_SEED,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed,
    };
    let mut out = Vec::new();
    write_victim_dtype(&mut out, &mut bundle, dtype)
        .expect("serialising the quantized fixture bundle cannot fail");
    out
}
