//! The contract of the read-only gradient engine: `Network::input_grad_in`
//! (recorded inference + tape backward, `&self`) returns **bit-identical**
//! logits and `dL/dx` to the legacy `&mut` `Network::input_grad` (layer
//! caches), for every victim architecture, with any tape/workspace
//! history, from any number of threads sharing one `&Network`.
//!
//! Bit-exactness is what lets the whole detection pipeline — DeepFool,
//! UAP refinement, NC, TABOR — switch to the shared-model route without
//! retuning a single seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::nn::layer::Layer;
use universal_soldier::nn::models::{Architecture, ModelKind, Network};
use universal_soldier::tensor::{Tape, Tensor, Workspace};

/// One small instance of each of the paper's four architectures, hitting
/// every layer kind: conv, depthwise conv, linear, flatten, batch-norm,
/// ReLU/SiLU/sigmoid, avg/max/global pooling, residual blocks with and
/// without projection shortcuts, and squeeze-excite gating.
fn zoo() -> Vec<(ModelKind, Network)> {
    let kinds = [
        (ModelKind::BasicCnn, (1, 12, 12), 4, 4),
        (ModelKind::ResNet18, (3, 8, 8), 4, 2),
        (ModelKind::Vgg16, (3, 8, 8), 4, 2),
        (ModelKind::EfficientNetB0, (3, 8, 8), 4, 2),
    ];
    kinds
        .iter()
        .map(|&(kind, input, classes, width)| {
            let mut rng = StdRng::seed_from_u64(0x7A9E_5EED ^ kind as u64);
            (
                kind,
                Architecture::new(kind, input, classes)
                    .with_width(width)
                    .build(&mut rng),
            )
        })
        .collect()
}

fn batch_for(net: &Network, n: usize, vals: &[f32]) -> Tensor {
    let (c, h, w) = net.input_shape();
    Tensor::from_fn(&[n, c, h, w], |i| vals[i % vals.len()])
}

/// The logit-space seed used everywhere below: deterministic, dense, and
/// sign-varying so every backward path is exercised.
fn grad_seed(logits: &Tensor) -> Tensor {
    Tensor::from_fn(logits.shape(), |i| ((i as f32) * 0.37).sin())
}

/// [`grad_seed`] in the workspace-aware shape `input_grad_in` takes.
fn grad_seed_ws(logits: &Tensor, _ws: &mut Workspace) -> Tensor {
    grad_seed(logits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `input_grad_in` == `input_grad` bit for bit — logits and input
    /// gradient — on all four victim architectures, for a cold tape and a
    /// warm (reused) one alike.
    #[test]
    fn input_grad_in_matches_legacy_input_grad_bitwise(
        vals in proptest::collection::vec(0.0f32..1.0, 32),
        n in 1usize..3,
    ) {
        for (kind, mut net) in zoo() {
            let x = batch_for(&net, n, &vals);
            let (logits_ref, grad_ref) = net.input_grad(&x, grad_seed);
            let mut tape = Tape::new();
            let mut ws = Workspace::new();
            let (logits_cold, grad_cold) = net.input_grad_in(&x, grad_seed_ws, &mut tape, &mut ws);
            prop_assert!(
                logits_cold.data() == logits_ref.data(),
                "{:?}: cold tape logits deviate from input_grad", kind
            );
            prop_assert!(
                grad_cold.data() == grad_ref.data(),
                "{:?}: cold tape dL/dx deviates from input_grad", kind
            );
            prop_assert_eq!(grad_cold.shape(), x.shape());
            // Warm pass: same tape, same workspace — must reproduce exactly.
            ws.recycle(logits_cold);
            ws.recycle(grad_cold);
            let (logits_warm, grad_warm) = net.input_grad_in(&x, grad_seed_ws, &mut tape, &mut ws);
            prop_assert!(
                logits_warm.data() == logits_ref.data()
                    && grad_warm.data() == grad_ref.data(),
                "{:?}: warm tape deviates from input_grad", kind
            );
        }
    }

    /// A tape (and workspace) reused across *mismatched* recordings — a
    /// different architecture, a different batch size, frames of entirely
    /// different shapes — must never leak one model's state into another's
    /// gradient.
    #[test]
    fn dirty_tape_reuse_across_mismatched_shapes_leaks_nothing(
        vals in proptest::collection::vec(0.0f32..1.0, 32),
        order in proptest::collection::vec(0usize..4, 2..8),
    ) {
        let zoo = zoo();
        let mut tape = Tape::new();
        let mut ws = Workspace::new();
        for (step, &zi) in order.iter().enumerate() {
            let (kind, net) = &zoo[zi];
            // Vary the batch size too, so even same-model revisits record
            // differently-shaped frames.
            let n = 1 + (step % 2);
            let x = batch_for(net, n, &vals);
            // Reference from a pristine tape/workspace.
            let (_, grad_ref) =
                net.input_grad_in(&x, grad_seed_ws, &mut Tape::new(), &mut Workspace::new());
            let (logits, grad) = net.input_grad_in(&x, grad_seed_ws, &mut tape, &mut ws);
            prop_assert!(
                grad.data() == grad_ref.data(),
                "{:?} (step {}): dirty tape changed the gradient", kind, step
            );
            ws.recycle(logits);
            ws.recycle(grad);
        }
    }
}

/// Concurrent gradient computations sharing one `&Network` must each be
/// bit-identical to the sequential result — 1, 2, and 4 threads, one tape
/// and workspace per thread, zero model clones.
#[test]
fn shared_network_gradients_are_thread_count_invariant() {
    for (kind, net) in zoo() {
        let x = batch_for(&net, 2, &[0.15, 0.45, 0.85, 0.35]);
        let (logits_ref, grad_ref) =
            net.input_grad_in(&x, grad_seed_ws, &mut Tape::new(), &mut Workspace::new());
        for threads in [1usize, 2, 4] {
            let shared: &Network = &net;
            let results: Vec<(Tensor, Tensor)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let x = &x;
                        scope.spawn(move || {
                            let mut tape = Tape::new();
                            let mut ws = Workspace::new();
                            // Two rounds per thread so each also hits its
                            // own warm-tape path under contention.
                            let first = shared.input_grad_in(x, grad_seed_ws, &mut tape, &mut ws);
                            drop(first);
                            shared.input_grad_in(x, grad_seed_ws, &mut tape, &mut ws)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (logits, grad) in results {
                assert_eq!(
                    logits.data(),
                    logits_ref.data(),
                    "{kind:?}: logits deviated at {threads} threads"
                );
                assert_eq!(
                    grad.data(),
                    grad_ref.data(),
                    "{kind:?}: dL/dx deviated at {threads} threads"
                );
            }
        }
    }
}

/// The tape route never touches parameter gradients (it has no mutable
/// access to touch them with) — and the legacy contract that `input_grad`
/// leaves them zeroed still holds afterwards.
#[test]
fn tape_gradients_leave_parameter_gradients_untouched() {
    for (kind, mut net) in zoo() {
        let x = batch_for(&net, 1, &[0.3, 0.6, 0.9]);
        let _ = net.input_grad_in(&x, grad_seed_ws, &mut Tape::new(), &mut Workspace::new());
        let mut max_param_grad = 0.0f32;
        net.visit_params(&mut |s| max_param_grad = max_param_grad.max(s.grad.linf_norm()));
        assert_eq!(
            max_param_grad, 0.0,
            "{kind:?}: tape route touched parameter gradients"
        );
    }
}

/// `param_count` is `&self` and must agree with an explicit
/// `visit_params` sweep on every architecture (guards the per-layer
/// overrides the `&self` signature requires).
#[test]
fn param_count_matches_visit_params_sweep() {
    for (kind, mut net) in zoo() {
        let counted = net.param_count();
        let mut swept = 0usize;
        net.visit_params(&mut |s| swept += s.value.len());
        assert_eq!(counted, swept, "{kind:?}: param_count deviates");
        assert!(counted > 0, "{kind:?}: no parameters counted");
    }
}
