//! Verdict equivalence across storage precisions: every fixture recipe,
//! serialized at f16 and Q8, must flag **exactly the same class set** as
//! its f32 twin, with per-class reversed-trigger L1 norms within the
//! documented log-space tolerance (`LOG_NORM_TOL`, see ARCHITECTURE.md's
//! precision → verdict-tolerance contract) — both offline and through
//! the inspection daemon.
//!
//! The f32 route is pinned bit-identical elsewhere (tests/determinism.rs);
//! quantized routes are *tolerance*-based: quantization perturbs every
//! logit, so the reversed triggers drift, but the MAD outlier statistic
//! is scale-robust and the flagged set must not move.
//!
//! Inspection seeds are part of each recipe's contract. They are chosen
//! where the f32 detector verdict is decisive (the implanted set exactly,
//! or nothing on clean/undersized fixtures) — on a *marginal* seed, where
//! a class sits within quantization noise of the MAD threshold, no
//! storage precision can promise a stable set, which is precisely why
//! the tolerance contract is stated in norm space.

mod serve_util;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use universal_soldier::attacks::persist::{read_victim_bytes, write_victim, write_victim_dtype};
use universal_soldier::eval::serve::{Client, ServeConfig, Server, SubmitOptions};
use universal_soldier::prelude::*;
use universal_soldier::tensor::Dtype;

/// Maximum |ln(L1_quantized) − ln(L1_f32)| per class. Empirically the
/// fixture recipes drift under 0.25 in log space at both f16 and Q8;
/// 0.5 (a 1.65× ratio) leaves slack for rng-level sensitivity while
/// staying far under the flagged-vs-clean separation (≈ 0.9+ in log
/// space on every decisively backdoored fixture).
const LOG_NORM_TOL: f64 = 0.5;

/// Inspects USBV bytes offline exactly like `usb-repro inspect`:
/// regenerate clean data from the stored recipe, seed the rng, run the
/// fast detector. Returns the flagged set and the per-class L1 norms.
fn inspect_bytes(bytes: &[u8], seed: u64, subset: usize) -> (Vec<usize>, Vec<f64>) {
    let bundle = read_victim_bytes(bytes).expect("parsing a fixture bundle");
    let data = bundle.data_spec.generate(bundle.data_seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let (clean_x, _) = data.clean_subset(subset, &mut rng);
    let outcome = UsbDetector::fast().inspect(&bundle.victim.model, &clean_x, &mut rng);
    let norms = outcome.per_class.iter().map(|c| c.l1_norm).collect();
    (outcome.flagged, norms)
}

/// Serializes `bundle` at f32, f16, and Q8, inspects each offline, and
/// asserts the equivalence contract. Returns the f32 flagged set so the
/// caller can check it against ground truth.
fn assert_precision_equivalence(
    name: &str,
    bundle: &mut VictimBundle,
    seed: u64,
    subset: usize,
) -> Vec<usize> {
    let mut f32_bytes = Vec::new();
    write_victim(&mut f32_bytes, bundle).expect("serialising the f32 twin");
    let (f32_flagged, f32_norms) = inspect_bytes(&f32_bytes, seed, subset);
    for dtype in [Dtype::F16, Dtype::Q8] {
        let mut bytes = Vec::new();
        write_victim_dtype(&mut bytes, bundle, dtype).expect("serialising the quantized twin");
        assert!(
            bytes.len() < f32_bytes.len(),
            "{name}: the {dtype} twin is not smaller than f32"
        );
        let (flagged, norms) = inspect_bytes(&bytes, seed, subset);
        assert_eq!(
            flagged, f32_flagged,
            "{name}: the {dtype} twin flagged a different class set than f32"
        );
        assert_eq!(norms.len(), f32_norms.len());
        for (class, (&nq, &nf)) in norms.iter().zip(&f32_norms).enumerate() {
            let drift = (nq.ln() - nf.ln()).abs();
            assert!(
                drift <= LOG_NORM_TOL,
                "{name} {dtype} class {class}: log-norm drift {drift:.3} \
                 past the contract ({nq:.2} vs f32 {nf:.2})"
            );
        }
    }
    f32_flagged
}

/// The 2-target MultiBadNet recipe shared with tests/multi_backdoor.rs
/// (6-class ResNet-18, implants at classes 1 and 4), through the
/// `target/fixtures/` disk cache.
fn multi_target_bundle() -> VictimBundle {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(240)
        .with_test_size(60)
        .with_classes(6);
    let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
    let attack = MultiBadNet::new(2, vec![1, 4], 0.15);
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new("multi-badnet-2target", spec, 71, 7).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| attack.execute(data, arch, tc, 7));
    VictimBundle {
        victim,
        train_seed: 7,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: fixture.data_seed,
    }
}

/// The inspection seed at which the multi fixture's f32 verdict is
/// decisive (both implants, nothing else) under the fast detector.
const MULTI_SEED: u64 = 43;

#[test]
fn single_target_fixture_flags_the_same_set_at_every_precision() {
    // The `usb-repro save --fast` recipe: 10-class mnist ResNet-18 with a
    // BadNet implant at class 4, inspected at the seed the save/inspect
    // round-trip contract uses (`usb-repro inspect` defaults to seed 3).
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(80);
    let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
    let attack = BadNet::new(2, 4, 0.15);
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new("repro-save-fast", spec, 111, 7).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| attack.execute(data, arch, tc, 7));
    let mut bundle = VictimBundle {
        victim,
        train_seed: 7,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: fixture.data_seed,
    };
    let flagged = assert_precision_equivalence("repro-save-fast", &mut bundle, 3, 48);
    assert_eq!(flagged, vec![4], "the f32 baseline must flag the implant");
}

#[test]
fn small_cnn_fixture_drifts_within_tolerance_at_every_precision() {
    // The determinism-badnet recipe (4-class BasicCnn): too few classes
    // for the MAD statistic to flag anything under the fast detector, at
    // any precision — which is itself the equivalence contract here
    // (quantization must not conjure a flag), and the conv-path norm
    // drift stays within tolerance.
    let fixture_bytes = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    let mut bundle = read_victim_bytes(&fixture_bytes).expect("parsing the fixture bundle");
    let flagged = assert_precision_equivalence("determinism-badnet", &mut bundle, 17, 32);
    assert!(
        flagged.is_empty(),
        "4-class MAD should stay quiet, got {flagged:?}"
    );
}

#[test]
fn multi_target_fixture_flags_the_same_set_at_every_precision() {
    // Both implants must survive quantization, and no clean class may
    // join them.
    let mut bundle = multi_target_bundle();
    let flagged = assert_precision_equivalence("multi-badnet-2target", &mut bundle, MULTI_SEED, 48);
    assert_eq!(flagged, vec![1, 4]);
}

#[test]
fn clean_fixture_flags_nothing_at_every_precision() {
    // Quantization noise must not conjure a backdoor out of a clean
    // model: the clean twin of the multi fixture stays unflagged at f16
    // and Q8 too.
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(240)
        .with_test_size(60)
        .with_classes(6);
    let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new("multi-badnet-clean", spec, 71, 13).with_config(&[
        &format!("{arch:?}"),
        "clean",
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| train_clean_victim(data, arch, tc, 13));
    let mut bundle = VictimBundle {
        victim,
        train_seed: 13,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: fixture.data_seed,
    };
    let flagged = assert_precision_equivalence("multi-badnet-clean", &mut bundle, 23, 48);
    assert!(
        flagged.is_empty(),
        "f32 baseline flagged {flagged:?} on a clean model"
    );
}

#[test]
fn e2e_badnet_fixture_flags_the_same_set_at_every_precision() {
    // The 10-class CIFAR-shaped ResNet-18 recipe of the end-to-end suite.
    let spec = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(80);
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
    let attack = BadNet::new(2, 3, 0.15);
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new("e2e-badnet", spec, 201, 13).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| attack.execute(data, arch, tc, 13));
    let mut bundle = VictimBundle {
        victim,
        train_seed: 13,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: fixture.data_seed,
    };
    let flagged = assert_precision_equivalence("e2e-badnet", &mut bundle, 0, 48);
    assert!(
        flagged.contains(&3),
        "f32 baseline missed target 3 (flagged {flagged:?})"
    );
}

#[test]
fn daemon_flags_the_same_set_for_quantized_bundles() {
    // The same contract through the wire: the daemon auto-detects each
    // twin's dtype, keeps all three resident side by side, and returns
    // the same (correct) flagged set for every precision.
    let mut bundle = multi_target_bundle();
    let mut twins = Vec::new();
    let mut f32_bytes = Vec::new();
    write_victim(&mut f32_bytes, &mut bundle).expect("serialising the f32 twin");
    twins.push((1u64, f32_bytes));
    for (tag, dtype) in [(2u64, Dtype::F16), (3, Dtype::Q8)] {
        let mut bytes = Vec::new();
        write_victim_dtype(&mut bytes, &mut bundle, dtype).expect("serialising a quantized twin");
        twins.push((tag, bytes));
    }

    let server =
        Server::start(("127.0.0.1", 0), ServeConfig::default()).expect("binding a loopback daemon");
    let mut client = Client::connect(server.local_addr()).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");

    for (tag, bytes) in &twins {
        let opts = SubmitOptions {
            tag: *tag,
            seed: MULTI_SEED,
            subset: 48,
            workers: 2,
            fast: true,
        };
        let verdict = client
            .inspect(bytes, &opts, |_| {})
            .expect("daemon inspection");
        assert_eq!(
            verdict.flagged,
            vec![1, 4],
            "tag {tag}: flagged set diverged from the f32 twin over the wire"
        );
        assert!(
            verdict.agrees,
            "tag {tag}: daemon verdict disagrees with ground truth \
             (flagged {:?}, truth {:?})",
            verdict.flagged, verdict.truth_targets
        );
    }
    let stats = server.stop();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cache_misses, 3, "three twins, three distinct parses");
    assert_eq!(stats.failed, 0);
}
