//! Cross-defense integration: NC, TABOR, and USB inspect the same victim;
//! all three must rank the implanted target class lowest on a classic
//! BadNet victim (Table 1's qualitative content), and the latent backdoor
//! must still be visible to USB (Table 3).

use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::prelude::*;

fn six_class_spec() -> SyntheticSpec {
    SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(300)
        .with_test_size(60)
        .with_classes(6)
}

/// Memoized under `target/fixtures/` — trained once, loaded bit-exactly on
/// every later run of this suite.
fn fixture_victim(
    key: &str,
    data_seed: u64,
    train_seed: u64,
    arch: Architecture,
    attack: impl Attack + std::fmt::Debug,
) -> (Dataset, Victim) {
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new(key, six_class_spec(), data_seed, train_seed).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    cached_victim(&fixture, |data| attack.execute(data, arch, tc, train_seed))
}

#[test]
fn all_defenses_rank_badnet_target_lowest() {
    // Victim seed chosen for a well-separated norm profile: on some seeds
    // the synthetic class overlap makes a *clean* class's trigger nearly as
    // small as the implanted one, which tests class ranking noise rather
    // than the defenses.
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 6).with_width(4);
    let (data, victim) =
        fixture_victim("cmp-badnet-resnet", 211, 22, arch, BadNet::new(2, 2, 0.15));
    assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());

    let mut rng = StdRng::seed_from_u64(3);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let nc = NeuralCleanse::fast();
    let tabor = Tabor::fast();
    let usb = UsbDetector::fast();
    let defenses: [(&str, &dyn Defense); 3] = [("NC", &nc), ("TABOR", &tabor), ("USB", &usb)];
    for (name, defense) in defenses {
        let outcome = defense.inspect(&victim.model, &clean_x, &mut rng);
        let norms: Vec<f64> = outcome.per_class.iter().map(|c| c.l1_norm).collect();
        let min_idx = norms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(
            min_idx, 2,
            "{name} did not rank the target lowest: {norms:?}"
        );
    }
}

#[test]
fn latent_backdoor_is_visible_to_usb() {
    let arch = Architecture::new(ModelKind::Vgg16, (3, 12, 12), 6).with_width(6);
    let (data, victim) = fixture_victim(
        "cmp-latent-vgg",
        212,
        22,
        arch,
        LatentBackdoor::new(2, 4, 0.15),
    );
    assert!(victim.asr() > 0.7, "latent attack failed: {}", victim.asr());

    let mut rng = StdRng::seed_from_u64(4);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
    let norms: Vec<f64> = outcome.per_class.iter().map(|c| c.l1_norm).collect();
    let min_idx = norms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(
        min_idx, 4,
        "USB did not rank latent target lowest: {norms:?}"
    );
}

#[test]
fn usb_is_faster_than_nc_per_class() {
    // Table 7's qualitative claim at unit scale: USB's UAP-seeded search
    // needs less wall-clock than NC's random-start optimisation, using the
    // standard (non-fast) configurations of both.
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 6).with_width(4);
    let (data, victim) =
        fixture_victim("cmp-timing-resnet", 213, 23, arch, BadNet::new(2, 0, 0.15));
    let mut rng = StdRng::seed_from_u64(5);
    let (clean_x, _) = data.clean_subset(48, &mut rng);

    let nc = NeuralCleanse::new(NcConfig::standard());
    let usb = UsbDetector::new(UsbConfig::standard());
    let t0 = std::time::Instant::now();
    let _ = nc.reverse_class(&victim.model, &clean_x, 0, &mut rng);
    let t_nc = t0.elapsed();
    let t0 = std::time::Instant::now();
    let _ = usb.reverse_class(&victim.model, &clean_x, 0, &mut rng);
    let t_usb = t0.elapsed();
    assert!(
        t_usb < t_nc,
        "USB ({t_usb:?}) should be faster than NC ({t_nc:?})"
    );
}
