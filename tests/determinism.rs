//! Deterministic-seeding regression: the whole pipeline — dataset
//! generation, victim training, and USB inspection — must be a pure
//! function of its seeds. Two runs with the same `StdRng` seed on the same
//! victim must produce bit-identical per-class L1 norms, or experiment
//! tables and CI both stop being reproducible.

mod serve_util;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use universal_soldier::eval::serve::proto::verdict_from_outcome;
use universal_soldier::eval::serve::{Client, ServeConfig, Server, SubmitOptions};
use universal_soldier::nn::models::network_clone_count;
use universal_soldier::prelude::*;

fn small_arch() -> Architecture {
    Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6)
}

fn small_attack() -> BadNet {
    BadNet::new(2, 1, 0.15)
}

/// The shared victim comes through the `target/fixtures/` disk cache:
/// trained on the first-ever run, loaded bit-exactly afterwards (and
/// `victim_training_is_deterministic_for_equal_seeds` below proves the
/// two are indistinguishable).
fn small_victim() -> (Dataset, Victim) {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let (arch, attack, tc) = (small_arch(), small_attack(), TrainConfig::fast());
    let fixture = FixtureSpec::new("determinism-badnet", spec, 55, 9).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    cached_victim(&fixture, |data| attack.execute(data, arch, tc, 9))
}

#[test]
fn usb_inspect_is_deterministic_for_equal_seeds() {
    let (data, victim) = small_victim();

    let run = || {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
        outcome
            .per_class
            .iter()
            .map(|c| c.l1_norm)
            .collect::<Vec<f64>>()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same seed must reproduce identical per-class norms"
    );

    // A different seed draws different clean data, so norms should move —
    // guarding against the opposite failure (rng silently unused).
    let mut rng = StdRng::seed_from_u64(18);
    let (clean_x, _) = data.clean_subset(32, &mut rng);
    let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
    let third: Vec<f64> = outcome.per_class.iter().map(|c| c.l1_norm).collect();
    assert_ne!(first, third, "a different seed should perturb the norms");
}

#[test]
fn victim_training_is_deterministic_for_equal_seeds() {
    // `small_victim` may come from the fixture cache, so train the same
    // configuration from scratch and require the two to be bit-identical —
    // this simultaneously checks training determinism and that a cached
    // (saved + loaded) victim is indistinguishable from a fresh one.
    let (data, a) = small_victim();
    let b = small_attack().execute(&data, small_arch(), TrainConfig::fast(), 9);
    assert_eq!(a.clean_accuracy, b.clean_accuracy);
    assert_eq!(a.asr(), b.asr());
    let x = data.test_images.clone();
    assert_eq!(
        a.model.predict(&x),
        b.model.predict(&x),
        "cached and freshly trained victims must predict identically"
    );
}

#[test]
fn multi_target_and_blended_fixtures_match_fresh_retraining() {
    // The new recipe shapes — multi-target and blended-trigger — must be
    // just as cache-transparent as BadNet: a victim loaded from its USBV
    // fixture file is bit-indistinguishable from one trained from scratch
    // with the same seeds.
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let arch = small_arch();
    let tc = TrainConfig::fast();
    let recipes: [(&str, MultiBadNet); 2] = [
        ("determinism-multi", MultiBadNet::new(2, vec![0, 2], 0.2)),
        (
            "determinism-blended",
            MultiBadNet::new(2, vec![1], 0.2).with_blend(0.2),
        ),
    ];
    for (key, attack) in recipes {
        let fixture = FixtureSpec::new(key, spec.clone(), 55, 9).with_config(&[
            &format!("{arch:?}"),
            &format!("{attack:?}"),
            &format!("{tc:?}"),
        ]);
        let (data, cached) =
            cached_victim(&fixture, |data| attack.clone().execute(data, arch, tc, 9));
        let fresh = attack.execute(&data, arch, tc, 9);
        assert_eq!(cached.targets(), fresh.targets(), "{key}: targets");
        assert_eq!(cached.asr(), fresh.asr(), "{key}: asr");
        let x = data.test_images.clone();
        assert_eq!(
            cached.model.predict(&x),
            fresh.model.predict(&x),
            "{key}: cached and freshly trained victims must predict identically"
        );
    }
}

#[test]
fn usb_inspect_is_invariant_to_worker_thread_count() {
    // The parallel per-class engine derives one rng stream per class from
    // the inspection seed *before* fanning out, so the verdict must be a
    // pure function of the seed — never of how classes land on threads.
    // Every field of every ClassResult has to match bit-for-bit at 1, 2,
    // and 4 workers.
    let (data, victim) = small_victim();

    let run = |workers: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        UsbDetector::fast_with_workers(workers).inspect(&victim.model, &clean_x, &mut rng)
    };
    let base = run(1);
    for workers in [2usize, 4] {
        let outcome = run(workers);
        assert_eq!(
            outcome.flagged, base.flagged,
            "flagged classes changed at {workers} workers"
        );
        assert_eq!(
            outcome.anomaly_indices, base.anomaly_indices,
            "anomaly indices changed at {workers} workers"
        );
        for (a, b) in outcome.per_class.iter().zip(&base.per_class) {
            assert_eq!(a.class, b.class);
            assert_eq!(
                a.l1_norm, b.l1_norm,
                "class {} norm changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.attack_success, b.attack_success,
                "class {} success changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.pattern.data(),
                b.pattern.data(),
                "class {} pattern changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.mask.data(),
                b.mask.data(),
                "class {} mask changed at {workers} workers",
                a.class
            );
        }
    }
}

#[test]
fn usb_inspect_spawns_zero_network_clones() {
    // The shared-nothing scaling contract: the per-class fan-out shares
    // one `&Network` (forward passes through the cache-free inference
    // path, gradients through the per-worker tape), so a full parallel
    // inspection must not clone the victim even once.
    //
    // The counter is process-wide and this binary's tests run
    // concurrently, so the assertion depends on NO other test in
    // tests/determinism.rs exercising `Network::clone` — keep
    // clone-semantics tests in tests/infer_equivalence.rs (a separate
    // process), or this test turns flaky.
    let (data, victim) = small_victim();
    let mut rng = StdRng::seed_from_u64(17);
    let (clean_x, _) = data.clean_subset(32, &mut rng);
    // Warm-up run so any lazy one-time setup is out of the measured span.
    let _ = UsbDetector::fast_with_workers(2).inspect(&victim.model, &clean_x, &mut rng);
    let before = network_clone_count();
    let outcome = UsbDetector::fast_with_workers(4).inspect(&victim.model, &clean_x, &mut rng);
    let after = network_clone_count();
    assert!(!outcome.per_class.is_empty());
    assert_eq!(
        after - before,
        0,
        "inspect cloned the victim {} times; the fan-out must share one &Network",
        after - before
    );
}

#[test]
fn daemon_verdicts_are_bit_identical_to_offline_inspection() {
    // The serve layer's reproducibility contract: submitting a bundle to
    // a warm daemon — any number of times, at any worker count — must
    // yield the exact verdict `usb-repro inspect` computes offline. The
    // daemon replays the offline pipeline (seeded rng → clean subset →
    // per-class rng streams) against its resident copy of the model, so
    // every float and every trigger CRC has to match bit-for-bit.
    let (data, victim) = small_victim();
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    let truth: Vec<u32> = victim.targets().into_iter().map(|t| t as u32).collect();

    let config = ServeConfig {
        workers: 1,
        max_pending: 8,
        cache_bytes: 64 << 20,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon");
    let mut client = Client::connect(server.local_addr()).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");

    for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
        // The offline reference: exactly what `usb-repro inspect` runs.
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        let outcome =
            UsbDetector::fast_with_workers(workers).inspect(&victim.model, &clean_x, &mut rng);
        let offline = verdict_from_outcome(0, &outcome, &truth, false, 0.0);

        // The same request twice: the first of the whole test misses the
        // resident cache, everything after hits it — and neither state is
        // allowed to perturb a single bit of the verdict.
        for round in 0..2u64 {
            let opts = SubmitOptions {
                tag: i as u64 * 10 + round + 1,
                seed: 17,
                subset: 32,
                workers: workers as u32,
                fast: true,
            };
            let wire = client
                .inspect(&bundle, &opts, |_| {})
                .expect("daemon inspection");
            assert_eq!(
                wire.per_class, offline.per_class,
                "per-class results diverged from offline at {workers} workers (round {round})"
            );
            assert_eq!(
                wire.flagged, offline.flagged,
                "flagged classes diverged at {workers} workers (round {round})"
            );
            assert_eq!(
                wire.median_l1.to_bits(),
                offline.median_l1.to_bits(),
                "median L1 diverged at {workers} workers (round {round})"
            );
            assert_eq!(wire.truth_targets, truth);
            assert_eq!(
                wire.confidences, offline.confidences,
                "per-class confidences diverged at {workers} workers (round {round})"
            );
            assert_eq!(wire.agrees, offline.agrees);
        }
    }
    let stats = server.stop();
    assert_eq!(
        stats.cache_misses, 1,
        "only the very first request may parse the bundle"
    );
    assert_eq!(stats.cache_hits, 5, "every later request must stay warm");
}
