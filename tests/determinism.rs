//! Deterministic-seeding regression: the whole pipeline — dataset
//! generation, victim training, and USB inspection — must be a pure
//! function of its seeds. Two runs with the same `StdRng` seed on the same
//! victim must produce bit-identical per-class L1 norms, or experiment
//! tables and CI both stop being reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::nn::models::network_clone_count;
use universal_soldier::prelude::*;

fn small_arch() -> Architecture {
    Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6)
}

fn small_attack() -> BadNet {
    BadNet::new(2, 1, 0.15)
}

/// The shared victim comes through the `target/fixtures/` disk cache:
/// trained on the first-ever run, loaded bit-exactly afterwards (and
/// `victim_training_is_deterministic_for_equal_seeds` below proves the
/// two are indistinguishable).
fn small_victim() -> (Dataset, Victim) {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let (arch, attack, tc) = (small_arch(), small_attack(), TrainConfig::fast());
    let fixture = FixtureSpec::new("determinism-badnet", spec, 55, 9).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    cached_victim(&fixture, |data| attack.execute(data, arch, tc, 9))
}

#[test]
fn usb_inspect_is_deterministic_for_equal_seeds() {
    let (data, victim) = small_victim();

    let run = || {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
        outcome
            .per_class
            .iter()
            .map(|c| c.l1_norm)
            .collect::<Vec<f64>>()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same seed must reproduce identical per-class norms"
    );

    // A different seed draws different clean data, so norms should move —
    // guarding against the opposite failure (rng silently unused).
    let mut rng = StdRng::seed_from_u64(18);
    let (clean_x, _) = data.clean_subset(32, &mut rng);
    let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
    let third: Vec<f64> = outcome.per_class.iter().map(|c| c.l1_norm).collect();
    assert_ne!(first, third, "a different seed should perturb the norms");
}

#[test]
fn victim_training_is_deterministic_for_equal_seeds() {
    // `small_victim` may come from the fixture cache, so train the same
    // configuration from scratch and require the two to be bit-identical —
    // this simultaneously checks training determinism and that a cached
    // (saved + loaded) victim is indistinguishable from a fresh one.
    let (data, a) = small_victim();
    let b = small_attack().execute(&data, small_arch(), TrainConfig::fast(), 9);
    assert_eq!(a.clean_accuracy, b.clean_accuracy);
    assert_eq!(a.asr(), b.asr());
    let x = data.test_images.clone();
    assert_eq!(
        a.model.predict(&x),
        b.model.predict(&x),
        "cached and freshly trained victims must predict identically"
    );
}

#[test]
fn usb_inspect_is_invariant_to_worker_thread_count() {
    // The parallel per-class engine derives one rng stream per class from
    // the inspection seed *before* fanning out, so the verdict must be a
    // pure function of the seed — never of how classes land on threads.
    // Every field of every ClassResult has to match bit-for-bit at 1, 2,
    // and 4 workers.
    let (data, victim) = small_victim();

    let run = |workers: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        UsbDetector::fast_with_workers(workers).inspect(&victim.model, &clean_x, &mut rng)
    };
    let base = run(1);
    for workers in [2usize, 4] {
        let outcome = run(workers);
        assert_eq!(
            outcome.flagged, base.flagged,
            "flagged classes changed at {workers} workers"
        );
        assert_eq!(
            outcome.anomaly_indices, base.anomaly_indices,
            "anomaly indices changed at {workers} workers"
        );
        for (a, b) in outcome.per_class.iter().zip(&base.per_class) {
            assert_eq!(a.class, b.class);
            assert_eq!(
                a.l1_norm, b.l1_norm,
                "class {} norm changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.attack_success, b.attack_success,
                "class {} success changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.pattern.data(),
                b.pattern.data(),
                "class {} pattern changed at {workers} workers",
                a.class
            );
            assert_eq!(
                a.mask.data(),
                b.mask.data(),
                "class {} mask changed at {workers} workers",
                a.class
            );
        }
    }
}

#[test]
fn usb_inspect_spawns_zero_network_clones() {
    // The shared-nothing scaling contract: the per-class fan-out shares
    // one `&Network` (forward passes through the cache-free inference
    // path, gradients through the per-worker tape), so a full parallel
    // inspection must not clone the victim even once.
    //
    // The counter is process-wide and this binary's tests run
    // concurrently, so the assertion depends on NO other test in
    // tests/determinism.rs exercising `Network::clone` — keep
    // clone-semantics tests in tests/infer_equivalence.rs (a separate
    // process), or this test turns flaky.
    let (data, victim) = small_victim();
    let mut rng = StdRng::seed_from_u64(17);
    let (clean_x, _) = data.clean_subset(32, &mut rng);
    // Warm-up run so any lazy one-time setup is out of the measured span.
    let _ = UsbDetector::fast_with_workers(2).inspect(&victim.model, &clean_x, &mut rng);
    let before = network_clone_count();
    let outcome = UsbDetector::fast_with_workers(4).inspect(&victim.model, &clean_x, &mut rng);
    let after = network_clone_count();
    assert!(!outcome.per_class.is_empty());
    assert_eq!(
        after - before,
        0,
        "inspect cloned the victim {} times; the fan-out must share one &Network",
        after - before
    );
}
