//! Persistence round-trip guarantees, end to end across the workspace:
//!
//! * tensors and networks survive save → load **bit-exactly** (property
//!   tests over random payloads, including non-finite values);
//! * corrupted or truncated files fail with a clean [`IoError`], never a
//!   panic;
//! * a victim saved to disk, reloaded, and inspected produces verdicts and
//!   USB norms **bit-identical** to the in-memory victim — the contract
//!   that makes the `target/fixtures/` cache transparent to every test
//!   that uses it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::nn::layer::Mode;
use universal_soldier::nn::serde::{read_network, write_network};
use universal_soldier::prelude::*;
use universal_soldier::tensor::io::{self, IoError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_roundtrip_is_bit_exact(
        vals in proptest::collection::vec(-1e6f32..1e6, 1..97),
        rows in 1usize..5,
    ) {
        // Reshape into [rows, rest] when divisible, else stay rank-1.
        let t = if vals.len() % rows == 0 {
            let cols = vals.len() / rows;
            Tensor::from_vec(vals, &[rows, cols])
        } else {
            let n = vals.len();
            Tensor::from_vec(vals, &[n])
        };
        let mut buf = Vec::new();
        io::write_tensor(&mut buf, &t).unwrap();
        let back = io::read_tensor(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupted_tensor_bytes_never_panic(
        vals in proptest::collection::vec(-10.0f32..10.0, 8..33),
        flip in 0usize..1000,
        cut in 0usize..1000,
    ) {
        let n = vals.len();
        let t = Tensor::from_vec(vals, &[n]);
        let mut buf = Vec::new();
        io::write_tensor(&mut buf, &t).unwrap();
        // Bit flip somewhere: read must either error cleanly or (for the
        // few uncovered preamble bytes) still return *some* tensor.
        let mut bad = buf.clone();
        let pos = flip % bad.len();
        bad[pos] ^= 0x20;
        let _ = io::read_tensor(&mut bad.as_slice());
        // Truncation must always be a clean Format error.
        let len = cut % buf.len();
        match io::read_tensor(&mut &buf[..len]) {
            Err(IoError::Format(_)) => {}
            Err(e) => {
                prop_assert!(false, "unexpected error kind: {}", e);
            }
            Ok(_) => {
                prop_assert!(false, "truncated at {} decoded", len);
            }
        }
    }
}

fn forward_probe(net: &mut Network) -> Vec<u32> {
    let (c, h, w) = net.input_shape();
    let x = Tensor::from_fn(&[2, c, h, w], |i| ((i as f32) * 0.17).sin() * 0.5 + 0.5);
    net.forward(&x, Mode::Eval)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn network_roundtrip_forward_pass_is_bitwise_equal() {
    for kind in [ModelKind::BasicCnn, ModelKind::ResNet18] {
        let arch = Architecture::new(kind, (1, 12, 12), 4).with_width(4);
        let mut net = arch.build(&mut StdRng::seed_from_u64(31));
        // A few train-mode forwards give batch-norm layers non-trivial
        // running statistics — the state a parameters-only format would lose.
        let x = Tensor::from_fn(&[4, 1, 12, 12], |i| ((i as f32) * 0.09).cos() * 0.5 + 0.5);
        for _ in 0..3 {
            let _ = net.forward(&x, Mode::Train);
        }
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        let mut back = read_network(&mut buf.as_slice()).unwrap();
        assert_eq!(
            forward_probe(&mut net),
            forward_probe(&mut back),
            "{kind:?}: loaded forward pass must be bit-identical"
        );
    }
}

#[test]
fn truncated_network_blob_is_a_clean_error() {
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
    let mut net = arch.build(&mut StdRng::seed_from_u64(1));
    let mut buf = Vec::new();
    write_network(&mut buf, &mut net).unwrap();
    for len in (0..buf.len()).step_by((buf.len() / 41).max(1)) {
        match read_network(&mut &buf[..len]) {
            Err(IoError::Format(_)) => {}
            Err(e) => panic!("unexpected error kind at {len}: {e}"),
            Ok(_) => panic!("truncated network blob of {len} bytes decoded"),
        }
    }
}

/// The PR's headline acceptance criterion: a victim saved to disk,
/// reloaded, and inspected produces bit-identical verdicts and USB norms
/// to the in-memory victim.
#[test]
fn loaded_victim_inspection_is_bit_identical_to_in_memory() {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let data = spec.generate(77);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = BadNet::new(2, 1, 0.15);
    let victim = attack.execute(&data, arch, TrainConfig::fast(), 19);

    let dir = std::env::temp_dir().join(format!("usb_roundtrip_{}", std::process::id()));
    let path = dir.join("victim.usbv");
    let mut bundle = VictimBundle {
        victim: victim.clone(),
        train_seed: 19,
        config_hash: 0,
        data_spec: spec,
        data_seed: 77,
    };
    save_victim(&path, &mut bundle).unwrap();
    let loaded = load_victim(&path).unwrap();

    let inspect = |model: &Network| {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        UsbDetector::fast().inspect(model, &clean_x, &mut rng)
    };
    let mem = inspect(&victim.model);
    let disk = inspect(&loaded.victim.model);

    assert_eq!(mem.flagged, disk.flagged, "flagged classes diverged");
    assert_eq!(mem.anomaly_indices, disk.anomaly_indices);
    assert_eq!(mem.is_backdoored(), disk.is_backdoored());
    for (a, b) in mem.per_class.iter().zip(&disk.per_class) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.l1_norm, b.l1_norm, "class {} norm diverged", a.class);
        assert_eq!(a.attack_success, b.attack_success);
        assert_eq!(a.pattern.data(), b.pattern.data());
        assert_eq!(a.mask.data(), b.mask.data());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The multi-target extension of the criterion above: a 2-target
/// `MultiBadNet` victim survives USBV v2 save → load with its full
/// implant set, and inspecting the loaded model is bit-identical.
#[test]
fn loaded_multi_target_victim_inspection_is_bit_identical() {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let data = spec.generate(78);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = MultiBadNet::new(2, vec![0, 2], 0.2);
    let victim = attack.execute(&data, arch, TrainConfig::fast(), 21);
    assert_eq!(victim.targets(), vec![0, 2]);

    let dir = std::env::temp_dir().join(format!("usb_multi_roundtrip_{}", std::process::id()));
    let path = dir.join("victim.usbv");
    let mut bundle = VictimBundle {
        victim: victim.clone(),
        train_seed: 21,
        config_hash: 0,
        data_spec: spec,
        data_seed: 78,
    };
    save_victim(&path, &mut bundle).unwrap();
    let loaded = load_victim(&path).unwrap();
    assert_eq!(loaded.victim.targets(), vec![0, 2]);
    assert_eq!(loaded.victim.asr(), victim.asr());

    let inspect = |model: &Network| {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        UsbDetector::fast().inspect(model, &clean_x, &mut rng)
    };
    let mem = inspect(&victim.model);
    let disk = inspect(&loaded.victim.model);
    assert_eq!(mem.flagged, disk.flagged, "flagged classes diverged");
    assert_eq!(mem.anomaly_indices, disk.anomaly_indices);
    assert_eq!(mem.confidences, disk.confidences);
    for (a, b) in mem.per_class.iter().zip(&disk.per_class) {
        assert_eq!(a.l1_norm, b.l1_norm, "class {} norm diverged", a.class);
        assert_eq!(a.pattern.data(), b.pattern.data());
        assert_eq!(a.mask.data(), b.mask.data());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Blended-trigger recipe: the fractional alpha mask survives save → load
/// and the loaded model inspects bit-identically.
#[test]
fn loaded_blended_victim_inspection_is_bit_identical() {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let data = spec.generate(79);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = MultiBadNet::new(2, vec![1], 0.2).with_blend(0.2);
    let victim = attack.execute(&data, arch, TrainConfig::fast(), 22);
    assert_eq!(victim.targets(), vec![1]);

    let dir = std::env::temp_dir().join(format!("usb_blend_roundtrip_{}", std::process::id()));
    let path = dir.join("victim.usbv");
    let mut bundle = VictimBundle {
        victim: victim.clone(),
        train_seed: 22,
        config_hash: 0,
        data_spec: spec,
        data_seed: 79,
    };
    save_victim(&path, &mut bundle).unwrap();
    let loaded = load_victim(&path).unwrap();
    // The full-image alpha mask is fractional everywhere — exactly the
    // payload a binary-mask assumption would corrupt.
    if let GroundTruth::Backdoored {
        trigger: InjectedTrigger::Static(t),
        ..
    } = &loaded.victim.ground_truth
    {
        assert!(t.mask().data().iter().all(|&m| m == 0.2));
    } else {
        panic!("blended single-target victim lost its static ground truth");
    }

    let inspect = |model: &Network| {
        let mut rng = StdRng::seed_from_u64(17);
        let (clean_x, _) = data.clean_subset(32, &mut rng);
        UsbDetector::fast().inspect(model, &clean_x, &mut rng)
    };
    let mem = inspect(&victim.model);
    let disk = inspect(&loaded.victim.model);
    assert_eq!(mem.flagged, disk.flagged);
    assert_eq!(mem.anomaly_indices, disk.anomaly_indices);
    std::fs::remove_dir_all(&dir).ok();
}

/// Warm-cache contract: the second request for the same fixture must not
/// invoke the trainer, and must hand back a bit-identical victim.
#[test]
fn fixture_cache_is_warm_on_second_request() {
    let dir = std::env::temp_dir().join(format!("usb_warm_cache_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(60)
        .with_test_size(20)
        .with_classes(4);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
    let fixture = FixtureSpec::new("warm-cache", spec, 5, 6).with_config(&[&format!("{arch:?}")]);
    let train = |data: &Dataset| train_clean_victim(data, arch, TrainConfig::fast(), 6);
    let (_, mut first) =
        universal_soldier::attacks::fixtures::cached_victim_in(&dir, &fixture, train);
    let (_, mut second) =
        universal_soldier::attacks::fixtures::cached_victim_in(&dir, &fixture, |_| {
            panic!("fixture cache was warm — the trainer must not run")
        });
    assert_eq!(
        forward_probe(&mut first.model),
        forward_probe(&mut second.model)
    );
    std::fs::remove_dir_all(&dir).ok();
}
