//! The contract of the allocation-free inference path: `Network::infer`
//! (and everything built on it — `predict`, `predict_one`, `evaluate`)
//! returns **bit-identical** results to an eval-mode `forward`, for every
//! victim architecture, with any workspace history.
//!
//! Bit-exactness is what lets the detection pipeline route all its
//! forward-only passes through `infer` without retuning a single seed:
//! same bits in, same verdicts out.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::nn::layer::{Layer, Mode};
use universal_soldier::nn::models::{Architecture, ModelKind, Network};
use universal_soldier::nn::train::{evaluate, evaluate_with_workers};
use universal_soldier::tensor::{Tensor, Workspace};

/// One small instance of each of the paper's four architectures, hitting
/// every layer kind: conv, depthwise conv, linear, flatten, batch-norm,
/// ReLU/SiLU/sigmoid, avg/max/global pooling, residual blocks with and
/// without projection shortcuts, and squeeze-excite gating.
fn zoo() -> Vec<(ModelKind, Network)> {
    let kinds = [
        (ModelKind::BasicCnn, (1, 12, 12), 4, 4),
        (ModelKind::ResNet18, (3, 8, 8), 4, 2),
        (ModelKind::Vgg16, (3, 8, 8), 4, 2),
        (ModelKind::EfficientNetB0, (3, 8, 8), 4, 2),
    ];
    kinds
        .iter()
        .map(|&(kind, input, classes, width)| {
            let mut rng = StdRng::seed_from_u64(0xB17_E8AC7 ^ kind as u64);
            (
                kind,
                Architecture::new(kind, input, classes)
                    .with_width(width)
                    .build(&mut rng),
            )
        })
        .collect()
}

fn batch_for(net: &Network, n: usize, vals: &[f32]) -> Tensor {
    let (c, h, w) = net.input_shape();
    Tensor::from_fn(&[n, c, h, w], |i| vals[i % vals.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `infer` == `forward(Mode::Eval)` bit for bit, on all four victim
    /// architectures, for cold and warm workspaces alike — and a second
    /// warm-workspace call reproduces the first exactly (no state bleeds
    /// from one inference into the next).
    #[test]
    fn infer_matches_eval_forward_bitwise(
        vals in proptest::collection::vec(0.0f32..1.0, 32),
        n in 1usize..3,
    ) {
        for (kind, mut net) in zoo() {
            let x = batch_for(&net, n, &vals);
            let reference = net.forward(&x, Mode::Eval);
            let mut ws = Workspace::new();
            let cold = net.infer(&x, &mut ws);
            prop_assert!(
                cold.data() == reference.data(),
                "{:?}: cold infer deviates from forward(Eval)", kind
            );
            prop_assert_eq!(cold.shape(), reference.shape());
            let warm = net.infer(&x, &mut ws);
            prop_assert!(
                warm.data() == reference.data(),
                "{:?}: warm-workspace infer deviates", kind
            );
        }
    }

    /// The workspace handed to `infer` may carry buffers of arbitrary
    /// earlier shapes filled with arbitrary garbage — results must not
    /// change (the zero-fill contract of `Workspace::take`).
    #[test]
    fn dirty_foreign_workspace_never_leaks_into_results(
        vals in proptest::collection::vec(0.0f32..1.0, 32),
        junk_shapes in proptest::collection::vec(1usize..2000, 0..6),
        junk_fill in -1.0e6f32..1.0e6,
    ) {
        for (kind, mut net) in zoo() {
            let x = batch_for(&net, 1, &vals);
            let reference = net.forward(&x, Mode::Eval);
            let mut ws = Workspace::new();
            for &len in &junk_shapes {
                let mut t = ws.take_tensor(&[len]);
                t.fill(junk_fill);
                ws.recycle(t);
            }
            let got = net.infer(&x, &mut ws);
            prop_assert!(
                got.data() == reference.data(),
                "{:?}: dirty workspace changed the logits", kind
            );
        }
    }

    /// A `Workspace` reused across differently-shaped checkouts always
    /// hands out fully zero-filled buffers, regardless of request order,
    /// sizes, or what callers wrote into previous checkouts.
    #[test]
    fn workspace_reuse_across_shapes_is_always_zeroed(
        lens in proptest::collection::vec(0usize..512, 1..20),
        fill in -1.0e9f32..1.0e9,
    ) {
        let mut ws = Workspace::new();
        for &len in &lens {
            let buf = ws.take(len);
            prop_assert_eq!(buf.len(), len);
            prop_assert!(
                buf.iter().all(|&v| v == 0.0),
                "stale data survived a checkout of {} elements", len
            );
            let mut t = Tensor::from_vec(buf, &[len]);
            t.fill(fill); // dirty it before returning
            ws.recycle(t);
        }
    }
}

#[test]
fn predict_one_matches_batched_predict() {
    for (kind, net) in zoo() {
        let x = batch_for(&net, 3, &[0.3, 0.8, 0.1, 0.6, 0.9]);
        let batched = net.predict(&x);
        let mut ws = Workspace::new();
        for (i, &expected) in batched.iter().enumerate() {
            let one = x.index_axis0(i);
            assert_eq!(
                net.predict_one(&one),
                expected,
                "{kind:?}: predict_one deviates from predict row {i}"
            );
            assert_eq!(
                net.predict_one_in(&one, &mut ws),
                expected,
                "{kind:?}: predict_one_in deviates from predict row {i}"
            );
        }
    }
}

/// `evaluate` shares one network across worker threads through the infer
/// path; its accuracy must be a pure function of the model and data — the
/// same at any thread count, and equal to a manual sequential count.
#[test]
fn shared_model_evaluate_is_thread_count_invariant() {
    for (kind, mut net) in zoo() {
        let x = batch_for(&net, 150, &[0.2, 0.7, 0.4, 0.95, 0.05, 0.5]);
        let labels: Vec<usize> = (0..150).map(|i| i % net.num_classes()).collect();
        let manual = {
            let logits = net.forward(&x, Mode::Eval);
            let preds = universal_soldier::tensor::ops::argmax_rows(&logits);
            preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / 150.0
        };
        let ambient = evaluate(&net, &x, &labels);
        assert_eq!(
            ambient, manual,
            "{kind:?}: evaluate at the ambient worker count deviates from the sequential count"
        );
        for workers in [1, 2, 4] {
            let acc = evaluate_with_workers(&net, &x, &labels, workers);
            assert_eq!(
                acc, manual,
                "{kind:?}: evaluate at {workers} workers deviates from the sequential count"
            );
        }
    }
}

/// `input_backward` — the parameter-gradient-free backward the
/// input-space defenses run on — must return the same `dL/dx` as the full
/// `backward`, bit for bit, in both modes, while leaving parameter
/// gradients untouched.
#[test]
fn input_backward_matches_backward_bitwise() {
    for mode in [Mode::Eval, Mode::Train] {
        for (kind, mut net) in zoo() {
            let x = batch_for(&net, 2, &[0.15, 0.45, 0.85, 0.35]);
            let logits = net.forward(&x, mode);
            let g = Tensor::from_fn(logits.shape(), |i| ((i as f32) * 0.37).sin());
            let reference = net.backward(&g);
            net.zero_grad();
            // Fresh forward so both backwards run off identical caches.
            let _ = net.forward(&x, mode);
            let gi = net.input_backward(&g);
            assert_eq!(
                gi.data(),
                reference.data(),
                "{kind:?} ({mode:?}): input_backward deviates from backward"
            );
            let mut max_param_grad = 0.0f32;
            net.visit_params(&mut |s| max_param_grad = max_param_grad.max(s.grad.linf_norm()));
            assert_eq!(
                max_param_grad, 0.0,
                "{kind:?} ({mode:?}): input_backward touched parameter gradients"
            );
        }
    }
}

/// Cloning a network drops transient forward caches (cheap per-worker
/// clones) but must preserve the mathematical function exactly.
#[test]
fn clones_drop_caches_but_preserve_the_function() {
    for (kind, mut net) in zoo() {
        let x = batch_for(&net, 2, &[0.25, 0.5, 0.75]);
        // Populate forward caches, then clone.
        let reference = net.forward(&x, Mode::Eval);
        let clone = net.clone();
        let mut ws = Workspace::new();
        assert_eq!(
            clone.infer(&x, &mut ws).data(),
            reference.data(),
            "{kind:?}: clone computes a different function"
        );
    }
}
