//! Protocol fault injection against a live daemon: every malformed input
//! the wire can carry — bit flips, truncation at every prefix length,
//! oversized length headers, mid-message disconnects — must produce a
//! clean per-connection error (an error frame when the socket is still
//! writable, a plain close otherwise) and must never panic a worker or
//! wedge the daemon. After every barrage the daemon still answers a
//! well-formed submission on a fresh connection.
//!
//! The codec-level versions of these properties live in
//! `usb_eval::serve::proto`'s unit tests; this suite drives the real
//! accept/reader/scheduler threads through real sockets.

mod serve_util;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;
use universal_soldier::eval::serve::proto::{
    frame_to_bytes, read_frame, Frame, SubmitRequest, WireClass, WireVerdict, MAX_PAYLOAD,
};
use universal_soldier::eval::serve::{Client, ClientError, ServeConfig, Server, SubmitOptions};
use universal_soldier::tensor::io::Crc32;

/// Generous bound on how long the daemon may take to drop a poisoned
/// connection; hitting it means the daemon wedged, which is the failure
/// this suite exists to catch.
const DEADLINE: Duration = Duration::from_secs(30);

fn start_server() -> Server {
    let config = ServeConfig {
        workers: 2,
        max_pending: 8,
        cache_bytes: 64 << 20,
    };
    Server::start(("127.0.0.1", 0), config).expect("binding a loopback daemon")
}

/// A submit frame whose *framing* is valid but whose bundle payload is
/// junk — the right raw material for corruption tests (small, and even
/// delivered intact it only ever produces a polite error frame).
fn junk_submit_frame() -> Vec<u8> {
    frame_to_bytes(&Frame::Submit(SubmitRequest {
        tag: 7,
        seed: 3,
        subset: 8,
        workers: 1,
        fast: true,
        bundle: b"not a victim bundle".to_vec(),
    }))
    .expect("encoding a submit frame")
}

/// Reads until the server closes the connection, panicking if it takes
/// longer than [`DEADLINE`] — a wedged daemon turns into a test failure,
/// not a hang.
fn drain_until_close(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(DEADLINE))
        .expect("setting a read timeout");
    let mut drained = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return drained,
            Ok(n) => drained.extend_from_slice(&buf[..n]),
            // A reset is a close too: the server tore the connection down
            // with bytes of ours still unread (it rejected the frame
            // before consuming all of it), so the kernel answers RST
            // instead of FIN. What this helper guards against is a
            // *wedge*, which surfaces as the read timing out.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                return drained;
            }
            Err(e) => panic!("daemon neither answered nor closed the connection: {e}"),
        }
    }
}

/// A full, well-formed request must still round-trip — the daemon
/// survived whatever the test threw at it.
fn assert_daemon_still_serves(addr: SocketAddr, bundle: &[u8]) {
    let mut client = Client::connect(addr).expect("connecting after the fault barrage");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");
    client.ping().expect("daemon must still answer pings");
    let opts = SubmitOptions {
        tag: 99,
        seed: 17,
        subset: 32,
        workers: 2,
        fast: true,
    };
    let verdict = client
        .inspect(bundle, &opts, |_| {})
        .expect("daemon must still inspect after surviving malformed input");
    assert_eq!(
        verdict.per_class.len(),
        4,
        "the fixture victim has 4 classes"
    );
}

#[test]
fn single_byte_corruption_at_every_position_is_survived() {
    let server = start_server();
    let addr = server.local_addr();
    let frame = junk_submit_frame();

    for i in 0..frame.len() {
        let mut corrupt = frame.clone();
        corrupt[i] ^= 0x40;
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&corrupt).expect("write corrupted frame");
        let _ = stream.shutdown(Shutdown::Write);
        // Clean outcome: maybe an error frame, then a close. Never a hang.
        drain_until_close(&mut stream);
    }

    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    assert_daemon_still_serves(addr, &bundle);
    let stats = server.stop();
    assert!(
        stats.protocol_errors >= frame.len() as u64,
        "every corrupted frame must be counted as a protocol error \
         (got {} for {} frames)",
        stats.protocol_errors,
        frame.len()
    );
}

#[test]
fn truncation_at_every_prefix_length_is_survived() {
    let server = start_server();
    let addr = server.local_addr();
    let frame = junk_submit_frame();

    for len in 0..frame.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&frame[..len]).expect("write prefix");
        let _ = stream.shutdown(Shutdown::Write);
        drain_until_close(&mut stream);
    }

    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    assert_daemon_still_serves(addr, &bundle);
    drop(server);
}

#[test]
fn oversized_length_header_is_rejected() {
    let server = start_server();
    let addr = server.local_addr();

    // A header promising MAX_PAYLOAD + 1 bytes: must be rejected from the
    // 12-byte header alone (no 64 MiB allocation, no waiting for a
    // payload that will never come).
    let mut header = Vec::new();
    header.extend_from_slice(b"USBP");
    header.extend_from_slice(&1u16.to_le_bytes());
    header.push(0x02);
    header.push(0);
    header.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&header).expect("write oversized header");
    // Note: the write half stays open — rejection must come from the
    // header itself, not from our EOF.
    drain_until_close(&mut stream);

    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    assert_daemon_still_serves(addr, &bundle);
    drop(server);
}

#[test]
fn mid_message_disconnects_do_not_disturb_other_clients() {
    let server = start_server();
    let addr = server.local_addr();
    let frame = junk_submit_frame();

    // Several clients vanish mid-frame without so much as a FIN handshake
    // courtesy; each costs the daemon one reader thread, nothing more.
    for cut in [3usize, 11, 13, frame.len() / 2, frame.len() - 1] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&frame[..cut])
            .expect("write partial frame");
        drop(stream);
    }

    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);
    assert_daemon_still_serves(addr, &bundle);
    drop(server);
}

/// A v2 verdict carrying the full multi-target extension: two flagged
/// classes, a two-element truth set, and per-class confidences.
fn extended_verdict() -> WireVerdict {
    let class = |c: u32, l1: f64, anomaly: f64| WireClass {
        class: c,
        l1_norm: l1,
        anomaly,
        attack_success: 0.95,
        pattern_crc: 0x1000 + c,
        mask_crc: 0x2000 + c,
    };
    WireVerdict {
        job: 7,
        method: "USB".to_owned(),
        per_class: vec![
            class(0, 3.5, 3.4),
            class(1, 13.0, 0.1),
            class(2, 3.7, 3.3),
            class(3, 14.2, 0.4),
        ],
        flagged: vec![0, 2],
        median_l1: 13.6,
        truth_targets: vec![0, 2],
        confidences: vec![3.4, 0.1, 3.3, 0.0],
        agrees: true,
        cache_hit: true,
        seconds: 0.25,
    }
}

/// Recomputes a frame's trailing CRC after an in-place mutation, so the
/// payload bytes — not the checksum — are what the parser judges.
fn fix_crc(bytes: &mut [u8]) {
    let end = bytes.len() - 4;
    let mut crc = Crc32::new();
    crc.update(&bytes[6..end]);
    let digest = crc.finish().to_le_bytes();
    bytes[end..].copy_from_slice(&digest);
}

#[test]
fn extended_verdict_frame_roundtrips_bit_exactly() {
    let frame = Frame::Verdict(extended_verdict());
    let bytes = frame_to_bytes(&frame).expect("encoding the extended verdict");
    let back = read_frame(&mut bytes.as_slice()).expect("decoding the extended verdict");
    assert_eq!(back, frame);
    assert_eq!(
        frame_to_bytes(&back).expect("re-encoding"),
        bytes,
        "the v2 encoding must be canonical"
    );
}

#[test]
fn corruption_over_the_v2_extension_fields_never_panics() {
    // The appended truth set + confidences are the last bytes of the
    // payload. Flip each one — with the CRC patched up so the corruption
    // reaches the parser — and require a clean decode or a clean error,
    // never a panic or a hang.
    let bytes = frame_to_bytes(&Frame::Verdict(extended_verdict())).unwrap();
    // extension = u32 count + 2×u32 targets + u32 count + 4×f64 = 48 bytes,
    // immediately before the 4-byte CRC.
    let ext_start = bytes.len() - 4 - 48;
    for pos in ext_start..bytes.len() - 4 {
        for bit in [0x01u8, 0x40, 0x80] {
            let mut bad = bytes.clone();
            bad[pos] ^= bit;
            fix_crc(&mut bad);
            match read_frame(&mut bad.as_slice()) {
                // Flips in the float payload may still decode (different
                // confidences); structural flips must error cleanly.
                Ok(Frame::Verdict(_)) | Err(_) => {}
                Ok(other) => panic!("flip at {pos} changed the frame kind: {other:?}"),
            }
        }
    }
    // Without the CRC fix-up every flip must die at the checksum.
    let mut bad = bytes.clone();
    bad[ext_start] ^= 0x40;
    assert!(read_frame(&mut bad.as_slice()).is_err());
}

#[test]
fn live_daemon_accepts_v1_frames() {
    // A client speaking protocol v1 (no extension fields) pings the
    // daemon: the hand-built v1 frame must be accepted and answered.
    let server = start_server();
    let addr = server.local_addr();

    let mut v1_ping = Vec::new();
    v1_ping.extend_from_slice(b"USBP");
    v1_ping.extend_from_slice(&1u16.to_le_bytes());
    v1_ping.push(0x01); // Ping
    v1_ping.push(0);
    v1_ping.extend_from_slice(&0u32.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&v1_ping[6..]);
    v1_ping.extend_from_slice(&crc.finish().to_le_bytes());

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(DEADLINE))
        .expect("setting a read timeout");
    stream.write_all(&v1_ping).expect("write v1 ping");
    let reply = read_frame(&mut stream).expect("daemon must answer a v1 ping");
    assert_eq!(reply, Frame::Pong);
    drop(stream);
    drop(server);
}

#[test]
fn garbage_bundle_payload_gets_an_error_frame_and_the_connection_survives() {
    let server = start_server();
    let addr = server.local_addr();
    let bundle = serve_util::bundle_bytes(serve_util::FIXTURE_DATA_SEED);

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");

    // A perfectly framed submission carrying garbage where the USBV
    // bundle should be: admission accepts it (framing is fine), the
    // scheduler rejects it with an error frame, and — crucially — the
    // connection stays usable.
    let opts = SubmitOptions {
        tag: 1,
        seed: 17,
        subset: 32,
        workers: 1,
        fast: true,
    };
    match client.inspect(b"USBV but not really", &opts, |_| {}) {
        Err(ClientError::Server { tag, message, .. }) => {
            assert_eq!(tag, 1, "the error frame must echo the request tag");
            assert!(
                message.contains("bundle rejected"),
                "unexpected error message: {message}"
            );
        }
        Err(other) => panic!("expected a server error frame, got {other}"),
        Ok(_) => panic!("a garbage bundle cannot produce a verdict"),
    }

    // Same connection, real bundle: the worker did not wedge.
    let opts = SubmitOptions { tag: 2, ..opts };
    let verdict = client
        .inspect(&bundle, &opts, |_| {})
        .expect("the connection must survive a rejected bundle");
    assert_eq!(verdict.per_class.len(), 4);
    let stats = server.stop();
    assert_eq!(stats.failed, 1, "exactly one job failed (the garbage one)");
    assert_eq!(stats.completed, 1, "the real job completed");
}
