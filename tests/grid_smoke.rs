//! Smoke test of the `usb-eval` grid: a miniature table runs end to end and
//! produces a structurally correct report plus CSV.

use universal_soldier::data::SyntheticSpec;
use universal_soldier::eval::grid::{
    run_table, table5, AttackChoice, CaseSpec, DefenseSuite, TableSpec,
};
use universal_soldier::eval::{format_table, write_csv};
use universal_soldier::nn::models::ModelKind;
use universal_soldier::nn::train::TrainConfig;

fn tiny_spec() -> TableSpec {
    TableSpec {
        dataset: SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(240)
            .with_test_size(60)
            .with_classes(6),
        model: ModelKind::ResNet18,
        width: 4,
        train: TrainConfig::new(20),
        cases: vec![CaseSpec {
            attack: AttackChoice::BadNet { trigger: 2 },
            poison_rate: 0.15,
        }],
        defense_samples: 40,
        ..table5()
    }
}

#[test]
fn mini_table_runs_and_reports() {
    let spec = tiny_spec();
    let suite = DefenseSuite::fast();
    // The grid may call `progress` from worker threads.
    let lines = std::sync::atomic::AtomicUsize::new(0);
    let report = run_table(&spec, 1, &suite, |_| {
        lines.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert!(
        lines.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "progress callback never fired"
    );
    assert_eq!(report.cases.len(), 1);
    let case = &report.cases[0];
    assert_eq!(case.cells.len(), 4, "NC, TABOR, USB, ULP");
    assert!(case.mean_accuracy > 0.7, "victim under-trained");
    assert!(case.mean_asr > 0.7, "attack failed");
    for cell in &case.cells {
        assert_eq!(cell.called_clean + cell.called_backdoored, 1);
        assert!(cell.mean_l1.is_finite() && cell.mean_l1 >= 0.0);
        assert!(cell.seconds > 0.0);
    }
    // USB must beat the reverse-engineering baselines (Table 7's
    // ordering). ULP is excluded from the race: its first inspection of a
    // new input signature pays one-off litmus-bank training.
    let seconds: Vec<f64> = case.cells.iter().map(|c| c.seconds).collect();
    assert!(
        seconds[2] < seconds[0] && seconds[2] < seconds[1],
        "USB should beat NC and TABOR: NC {:.1}s TABOR {:.1}s USB {:.1}s",
        seconds[0],
        seconds[1],
        seconds[2]
    );

    // Formatting and CSV round-trip.
    let text = format_table(&report);
    assert!(text.contains("Backdoored (2x2 trigger)"));
    assert!(text.contains("USB"));
    assert!(text.contains("ULP"));
    let path = std::env::temp_dir().join("usb_grid_smoke").join("t.csv");
    write_csv(&report, &path).unwrap();
    let csv = std::fs::read_to_string(&path).unwrap();
    assert_eq!(csv.lines().count(), 5, "header + 4 method rows");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn mini_multi_target_row_runs_and_reports() {
    // One multi-target row through the full grid harness: two implanted
    // classes, all four defenses, aggregates structurally sound.
    let spec = TableSpec {
        cases: vec![CaseSpec {
            attack: AttackChoice::MultiBadNet {
                trigger: 2,
                targets: 2,
            },
            poison_rate: 0.15,
        }],
        ..tiny_spec()
    };
    let suite = DefenseSuite::fast();
    let report = run_table(&spec, 1, &suite, |_| {});
    assert_eq!(report.cases.len(), 1);
    let case = &report.cases[0];
    assert_eq!(case.cells.len(), 4, "NC, TABOR, USB, ULP");
    assert!(case.mean_accuracy > 0.6, "victim under-trained");
    assert!(case.mean_asr > 0.6, "mean ASR over both implants too low");
    for cell in &case.cells {
        assert_eq!(cell.called_clean + cell.called_backdoored, 1);
        assert!(cell.mean_l1.is_finite() && cell.mean_l1 >= 0.0);
        // Set semantics: the verdict tallies land in exactly one bucket
        // (or none, when the defense calls the model clean).
        assert!(cell.correct + cell.correct_set + cell.wrong <= 1);
    }
    let text = format_table(&report);
    assert!(text.contains("Multi-target Backdoored (2 targets, 2x2 trigger)"));
}
