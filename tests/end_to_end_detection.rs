//! End-to-end integration: synthetic data → poisoned training → USB
//! detection → paper-style scoring. This is the full pipeline a user of the
//! library would run, crossing every workspace crate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::prelude::*;

// Ten classes, like every setting in the paper: the MAD outlier test needs
// enough classes for a stable median.
fn spec() -> SyntheticSpec {
    SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(80)
}

fn arch() -> Architecture {
    Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4)
}

/// Victims memoize under `target/fixtures/` (trained once, loaded
/// bit-exactly afterwards); the config fingerprint retrains them whenever
/// the attack, architecture, or train config changes.
fn badnet_victim(key: &str, target: usize, data_seed: u64, train_seed: u64) -> (Dataset, Victim) {
    let attack = BadNet::new(2, target, 0.15);
    let (arch, tc) = (arch(), TrainConfig::new(20));
    let fixture = FixtureSpec::new(key, spec(), data_seed, train_seed).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    cached_victim(&fixture, |data| attack.execute(data, arch, tc, train_seed))
}

#[test]
fn usb_detects_badnet_end_to_end() {
    let (data, victim) = badnet_victim("e2e-badnet", 3, 201, 13);
    assert!(
        victim.clean_accuracy > 0.8,
        "victim under-trained: {}",
        victim.clean_accuracy
    );
    assert!(victim.asr() > 0.8, "backdoor failed: {}", victim.asr());

    let mut rng = StdRng::seed_from_u64(0);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let usb = UsbDetector::fast();
    let outcome = usb.inspect(&victim.model, &clean_x, &mut rng);

    assert!(outcome.is_backdoored(), "USB missed the backdoor");
    assert!(
        outcome.flagged.contains(&3),
        "USB flagged {:?}, expected target 3",
        outcome.flagged
    );
    let verdict = score_outcome(&outcome, &victim.targets());
    assert!(verdict.model_detection_correct);
    assert!(matches!(
        verdict.target_call,
        TargetClassCall::Correct | TargetClassCall::CorrectSet
    ));
}

#[test]
fn usb_does_not_flag_clean_model_end_to_end() {
    let (arch, tc) = (arch(), TrainConfig::new(20));
    let fixture = FixtureSpec::new("e2e-clean", spec(), 202, 14).with_config(&[
        &format!("{arch:?}"),
        "clean",
        &format!("{tc:?}"),
    ]);
    let (data, victim) = cached_victim(&fixture, |data| train_clean_victim(data, arch, tc, 14));
    assert!(victim.clean_accuracy > 0.8);

    let mut rng = StdRng::seed_from_u64(1);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let usb = UsbDetector::fast();
    let outcome = usb.inspect(&victim.model, &clean_x, &mut rng);
    let verdict = score_outcome(&outcome, &[]);
    assert!(
        verdict.model_detection_correct,
        "false positive: flagged {:?} with norms {:?}",
        outcome.flagged,
        outcome
            .per_class
            .iter()
            .map(|c| c.l1_norm)
            .collect::<Vec<_>>()
    );
}

#[test]
fn backdoored_class_has_smallest_usb_norm() {
    // The §4.2 headline property (2x2 BadNet, ResNet-18).
    let (data, victim) = badnet_victim("e2e-headline", 1, 203, 15);
    assert!(victim.asr() > 0.8);
    // Seed 5: this victim's clean class 7 reverses to a smallish trigger
    // (norm ~8-9) whatever the rng; inspection seeds whose class-1 trigger
    // lands near 9 (e.g. 2, 23, 42) make the argmin a coin flip, while 5
    // separates them 4.6 vs 9.3.
    let mut rng = StdRng::seed_from_u64(5);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
    let norms: Vec<f64> = outcome.per_class.iter().map(|c| c.l1_norm).collect();
    let min_idx = norms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(
        min_idx, 1,
        "backdoored class should have the smallest norm: {norms:?}"
    );
}
