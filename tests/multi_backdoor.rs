//! End-to-end detection of *multiple simultaneous backdoors*: a 2-target
//! `MultiBadNet` victim must have **both** implanted classes flagged (and
//! no clean class), bit-identically at any worker count, while a clean
//! victim of the same shape flags nothing. This is the PR's acceptance
//! scenario for the generalized multi-outlier MAD verdict.

mod serve_util;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use universal_soldier::attacks::persist::write_victim;
use universal_soldier::eval::serve::proto::verdict_from_outcome;
use universal_soldier::eval::serve::{Client, ServeConfig, Server, SubmitOptions};
use universal_soldier::prelude::*;

/// The two implanted target classes, ascending (the order `targets()` and
/// `flagged` both report).
const TARGETS: [usize; 2] = [1, 4];

const DATA_SEED: u64 = 71;
const TRAIN_SEED: u64 = 7;

fn spec() -> SyntheticSpec {
    SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(240)
        .with_test_size(60)
        .with_classes(6)
}

fn arch() -> Architecture {
    Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4)
}

fn multi_fixture() -> FixtureSpec {
    let arch = arch();
    let attack = MultiBadNet::new(2, TARGETS.to_vec(), 0.15);
    let tc = TrainConfig::new(20);
    FixtureSpec::new("multi-badnet-2target", spec(), DATA_SEED, TRAIN_SEED).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ])
}

/// The 2-target victim, through the `target/fixtures/` disk cache.
fn multi_victim() -> (Dataset, Victim) {
    cached_victim(&multi_fixture(), |data| {
        MultiBadNet::new(2, TARGETS.to_vec(), 0.15).execute(
            data,
            arch(),
            TrainConfig::new(20),
            TRAIN_SEED,
        )
    })
}

fn clean_victim() -> (Dataset, Victim) {
    let arch = arch();
    let tc = TrainConfig::new(20);
    let fixture = FixtureSpec::new("multi-badnet-clean", spec(), DATA_SEED, 13).with_config(&[
        &format!("{arch:?}"),
        "clean",
        &format!("{tc:?}"),
    ]);
    cached_victim(&fixture, |data| train_clean_victim(data, arch, tc, 13))
}

#[test]
fn two_target_victim_flags_exactly_both_implanted_classes() {
    let (data, victim) = multi_victim();
    assert!(victim.clean_accuracy > 0.7, "victim under-trained");
    assert!(victim.asr() > 0.7, "mean ASR over both implants too low");
    assert_eq!(victim.targets(), TARGETS.to_vec());

    // Bit-identity across worker counts: the per-class scan partitions
    // differently at 1/2/4 workers, yet every float of the outcome — and
    // therefore the flagged set and confidences — must match.
    let mut reference = None;
    for workers in [1usize, 2, 4] {
        let mut rng = StdRng::seed_from_u64(23);
        let (clean_x, _) = data.clean_subset(48, &mut rng);
        let outcome =
            UsbDetector::fast_with_workers(workers).inspect(&victim.model, &clean_x, &mut rng);
        assert_eq!(
            outcome.flagged,
            TARGETS.to_vec(),
            "flagged set at {workers} workers"
        );
        // Flagged classes clear the MAD anomaly threshold; clean classes
        // sit well under it (sub-median jitter yields small positive
        // confidences, never a threshold-crossing one).
        for (class, &conf) in outcome.confidences.iter().enumerate() {
            if TARGETS.contains(&class) {
                assert!(conf > 2.0, "class {class} flagged at confidence {conf}");
            } else {
                assert!(conf < 2.0, "clean class {class} has confidence {conf}");
            }
        }
        let verdict = score_outcome(&outcome, &victim.targets());
        assert!(verdict.called_backdoored);
        assert!(matches!(verdict.target_call, TargetClassCall::Correct));
        // CRC-digested wire form pins bit-identity of every tensor.
        let wire = verdict_from_outcome(0, &outcome, &[1, 4], false, 0.0);
        match &reference {
            None => reference = Some(wire),
            Some(r) => assert_eq!(&wire, r, "outcome diverged at {workers} workers"),
        }
    }
}

#[test]
fn clean_model_of_the_same_shape_flags_nothing() {
    let (data, victim) = clean_victim();
    assert!(victim.clean_accuracy > 0.7, "victim under-trained");
    let mut rng = StdRng::seed_from_u64(23);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let outcome = UsbDetector::fast().inspect(&victim.model, &clean_x, &mut rng);
    assert!(
        outcome.flagged.is_empty(),
        "false positives on a clean model: {:?}",
        outcome.flagged
    );
    let verdict = score_outcome(&outcome, &[]);
    assert!(verdict.model_detection_correct);
}

#[test]
fn daemon_reports_the_multi_target_truth_set_over_the_wire() {
    // The serve layer end to end on a multi-backdoored bundle: the v2
    // Verdict frame must carry both ground-truth targets, per-class
    // confidences, and the same agreement rule as offline inspection.
    let fixture = multi_fixture();
    let config_hash = fixture.config_hash;
    let (_, victim) = multi_victim();
    let mut bundle = VictimBundle {
        victim,
        train_seed: TRAIN_SEED,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: DATA_SEED,
    };
    let mut bytes = Vec::new();
    write_victim(&mut bytes, &mut bundle).expect("serialising the multi-target bundle");

    let server =
        Server::start(("127.0.0.1", 0), ServeConfig::default()).expect("binding a loopback daemon");
    let mut client = Client::connect(server.local_addr()).expect("connecting to the daemon");
    client
        .set_read_timeout(Some(Duration::from_secs(600)))
        .expect("setting a read timeout");
    let opts = SubmitOptions {
        tag: 1,
        seed: 23,
        subset: 48,
        workers: 0,
        fast: true,
    };
    let wire = client
        .inspect(&bytes, &opts, |_| {})
        .expect("daemon inspection");
    assert_eq!(wire.truth_targets, vec![1, 4]);
    assert_eq!(wire.flagged, vec![1, 4]);
    assert_eq!(wire.confidences.len(), 6, "one confidence per class");
    assert!(wire.agrees);
    client.shutdown_server().expect("daemon shutdown");
    server.stop();
}
