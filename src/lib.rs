//! # universal-soldier
//!
//! Facade crate for the reproduction of *"Universal Soldier: Using Universal
//! Adversarial Perturbations for Detecting Backdoor Attacks"* (Xu, Ersoy,
//! Tajalli, Picek — DSN 2024).
//!
//! This crate re-exports every workspace member under one roof so examples
//! and downstream users can depend on a single package:
//!
//! * [`tensor`] — CPU tensor substrate (conv kernels, SSIM, statistics).
//! * [`nn`] — layer-based neural networks with full backpropagation.
//! * [`data`] — synthetic image-classification datasets.
//! * [`attacks`] — BadNet, latent backdoor, and IAD backdoor attacks.
//! * [`defenses`] — Neural Cleanse and TABOR baselines plus shared verdict
//!   types.
//! * [`usb`] — the paper's contribution: targeted-UAP backdoor detection.
//! * [`eval`] — the experiment grid regenerating every table and figure.
//!
//! # Quickstart
//!
//! Train a backdoored victim, then let USB find the implanted target class
//! (see `examples/quickstart.rs` for the commented version):
//!
//! ```rust,no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use universal_soldier::prelude::*;
//!
//! let data = SyntheticSpec::cifar10().with_size(12).generate(7);
//! let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
//! let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 7);
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let (clean_x, _) = data.clean_subset(48, &mut rng);
//! let outcome = UsbDetector::new(UsbConfig::standard())
//!     .inspect(&victim.model, &clean_x, &mut rng);
//! assert!(outcome.is_backdoored());
//! println!("flagged target classes: {:?}", outcome.flagged);
//! ```
//!
//! # Save → load → inspect
//!
//! Victims persist as self-contained bundles (model + trigger + ground
//! truth + dataset recipe; byte layout in `PERSISTENCE.md`), so a model
//! zoo is trained once and re-inspected from disk forever after. A loaded
//! victim's forwards are bit-exact, so the verdict below is bit-identical
//! to inspecting the in-memory `victim` (`usb-repro save` / `usb-repro
//! inspect <path>` is the CLI version of this loop):
//!
//! ```rust,no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::path::Path;
//! use universal_soldier::prelude::*;
//!
//! let spec = SyntheticSpec::cifar10().with_size(12);
//! let data = spec.generate(7);
//! let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
//! let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 7);
//!
//! // Save: one checksummed file carries everything an inspection needs.
//! let mut bundle = VictimBundle {
//!     victim,
//!     train_seed: 7,
//!     config_hash: 0,
//!     data_spec: spec,
//!     data_seed: 7,
//! };
//! save_victim(Path::new("target/zoo/badnet.usbv"), &mut bundle).unwrap();
//!
//! // Load (possibly in another process, days later) and inspect — no
//! // retraining: clean data regenerates from the stored recipe.
//! let loaded = load_victim(Path::new("target/zoo/badnet.usbv")).unwrap();
//! let data = loaded.data_spec.generate(loaded.data_seed);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (clean_x, _) = data.clean_subset(48, &mut rng);
//! let outcome = UsbDetector::new(UsbConfig::standard())
//!     .inspect(&loaded.victim.model, &clean_x, &mut rng);
//! assert_eq!(outcome.flagged, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use usb_attacks as attacks;
pub use usb_core as usb;
pub use usb_data as data;
pub use usb_defenses as defenses;
pub use usb_eval as eval;
pub use usb_nn as nn;
pub use usb_tensor as tensor;

/// Convenience re-exports of the types used by virtually every program.
pub mod prelude {
    pub use usb_attacks::fixtures::{cached_victim, FixtureSpec};
    pub use usb_attacks::persist::{load_victim, save_victim, VictimBundle};
    pub use usb_attacks::{
        train_clean_victim, Attack, BackdoorImplant, BadNet, GroundTruth, IadAttack,
        InjectedTrigger, LatentBackdoor, MultiBadNet, Trigger, TriggerSpec, Victim,
    };
    pub use usb_core::{
        deepfool, refine_uap, targeted_uap, transfer_uap, DeepfoolConfig, RefineConfig, UapConfig,
        UsbConfig, UsbDetector,
    };
    pub use usb_data::{Dataset, SyntheticSpec};
    pub use usb_defenses::{
        score_outcome, Defense, DetectionOutcome, ModelVerdict, NcConfig, NeuralCleanse, Tabor,
        TaborConfig, TargetClassCall, Ulp, UlpConfig,
    };
    pub use usb_nn::models::{Architecture, ModelKind, Network};
    pub use usb_nn::train::TrainConfig;
    pub use usb_tensor::Tensor;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let spec = SyntheticSpec::mnist();
        assert_eq!(spec.num_classes, 10);
        let _ = ModelKind::ResNet18.paper_name();
        let _ = TrainConfig::fast();
    }
}
