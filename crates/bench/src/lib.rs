//! # usb-bench
//!
//! Shared fixtures for the Criterion benchmarks in `benches/`: pre-trained
//! victims for each table's (dataset, architecture, attack) setting, built
//! once per process so each benchmark measures the *detection* algorithm
//! rather than victim training.
//!
//! Benchmarks (one group per paper table/figure):
//!
//! * `benches/substrate.rs` — conv / matmul / SSIM / DeepFool kernels.
//! * `benches/tables.rs` — per-class detection cost for every table
//!   setting (Tables 1–7).
//! * `benches/figures.rs` — UAP generation, refinement, and transfer
//!   (Figs. 1–6, headline, §4.4 transfer).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};
use usb_attacks::{Attack, BadNet, IadAttack, Victim};
use usb_data::{Dataset, SyntheticSpec};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;
use usb_tensor::Tensor;

/// A victim plus the clean data handed to defenses — everything a
/// detection benchmark needs.
pub struct Fixture {
    /// The trained victim.
    pub victim: Mutex<Victim>,
    /// Clean defense data `[N, C, H, W]`.
    pub clean_x: Tensor,
    /// The generating dataset (for extra sampling).
    pub dataset: Dataset,
}

impl Fixture {
    fn build(
        spec: SyntheticSpec,
        kind: ModelKind,
        width: usize,
        attack: Option<&dyn Attack>,
        seed: u64,
    ) -> Self {
        let data = spec.generate(seed);
        let arch = Architecture::new(
            kind,
            (spec.channels, spec.height, spec.width),
            spec.num_classes,
        )
        .with_width(width);
        let victim = match attack {
            Some(a) => a.execute(&data, arch, TrainConfig::new(20), seed),
            None => usb_attacks::train_clean_victim(&data, arch, TrainConfig::new(20), seed),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbe9c);
        let (clean_x, _) = data.clean_subset(48, &mut rng);
        Fixture {
            victim: Mutex::new(victim),
            clean_x,
            dataset: data,
        }
    }
}

fn cifar_spec() -> SyntheticSpec {
    SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(300)
        .with_test_size(60)
}

/// Table 1 / Figs. 1, 3, 4, 6 setting: ResNet-18 on CIFAR-10-like data with
/// a 2×2 BadNet backdoor (target class 0).
pub fn cifar_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            cifar_spec(),
            ModelKind::ResNet18,
            4,
            Some(&BadNet::new(2, 0, 0.15)),
            301,
        )
    })
}

/// Clean counterpart of [`cifar_resnet_badnet`] (headline comparison).
pub fn cifar_resnet_clean() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| Fixture::build(cifar_spec(), ModelKind::ResNet18, 4, None, 302))
}

/// Table 2 / Table 7 setting: EfficientNet-B0 on ImageNet-subset-like data.
pub fn imagenet_efficientnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            SyntheticSpec::imagenet_subset()
                .with_size(20)
                .with_train_size(300)
                .with_test_size(60),
            ModelKind::EfficientNetB0,
            6,
            Some(&BadNet::new(3, 0, 0.15)),
            303,
        )
    })
}

/// Table 3 setting: VGG-16 with an input-aware dynamic backdoor.
pub fn cifar_vgg_iad() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            cifar_spec(),
            ModelKind::Vgg16,
            6,
            Some(&IadAttack::new(0)),
            304,
        )
    })
}

/// Table 4 setting: VGG-16 with a BadNet backdoor.
pub fn cifar_vgg_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            cifar_spec(),
            ModelKind::Vgg16,
            6,
            Some(&BadNet::new(2, 0, 0.15)),
            305,
        )
    })
}

/// Table 5 / Fig. 5 setting: MNIST-like data (ResNet-18 victim).
pub fn mnist_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            SyntheticSpec::mnist()
                .with_size(12)
                .with_train_size(300)
                .with_test_size(60),
            ModelKind::ResNet18,
            4,
            Some(&BadNet::new(2, 0, 0.15)),
            306,
        )
    })
}

/// Table 6 setting: GTSRB-like (16-class reduction) ResNet-18.
pub fn gtsrb_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            SyntheticSpec::gtsrb()
                .with_size(12)
                .with_classes(16)
                .with_train_size(320)
                .with_test_size(64),
            ModelKind::ResNet18,
            4,
            Some(&BadNet::new(2, 0, 0.15)),
            307,
        )
    })
}
