//! # usb-bench
//!
//! Shared fixtures for the Criterion benchmarks in `benches/`: pre-trained
//! victims for each table's (dataset, architecture, attack) setting, built
//! once per process so each benchmark measures the *detection* algorithm
//! rather than victim training. Victims come through the
//! [`usb_attacks::fixtures`] disk cache (`target/fixtures/`), so across
//! bench invocations each setting trains exactly once and loads bit-exact
//! thereafter.
//!
//! Benchmarks (one group per paper table/figure):
//!
//! * `benches/substrate.rs` — conv / matmul / SSIM / DeepFool kernels.
//! * `benches/tables.rs` — per-class detection cost for every table
//!   setting (Tables 1–7).
//! * `benches/figures.rs` — UAP generation, refinement, and transfer
//!   (Figs. 1–6, headline, §4.4 transfer).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};
use usb_attacks::fixtures::{cached_victim, FixtureSpec};
use usb_attacks::{Attack, BadNet, IadAttack, Victim};
use usb_data::{Dataset, SyntheticSpec};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;
use usb_tensor::Tensor;

/// A victim plus the clean data handed to defenses — everything a
/// detection benchmark needs.
pub struct Fixture {
    /// The trained victim.
    pub victim: Mutex<Victim>,
    /// Clean defense data `[N, C, H, W]`.
    pub clean_x: Tensor,
    /// The generating dataset (for extra sampling).
    pub dataset: Dataset,
}

impl Fixture {
    fn build(
        key: &str,
        spec: SyntheticSpec,
        kind: ModelKind,
        width: usize,
        attack: Option<(&dyn Attack, String)>,
        seed: u64,
    ) -> Self {
        let arch = Architecture::new(
            kind,
            (spec.channels, spec.height, spec.width),
            spec.num_classes,
        )
        .with_width(width);
        let tc = TrainConfig::new(20);
        let fingerprint = attack
            .as_ref()
            .map(|(_, fp)| fp.clone())
            .unwrap_or_else(|| "clean".to_owned());
        let fixture = FixtureSpec::new(key, spec, seed, seed).with_config(&[
            &format!("{arch:?}"),
            &fingerprint,
            &format!("{tc:?}"),
        ]);
        let (data, victim) = cached_victim(&fixture, |data| match &attack {
            Some((a, _)) => a.execute(data, arch, tc, seed),
            None => usb_attacks::train_clean_victim(data, arch, tc, seed),
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbe9c);
        let (clean_x, _) = data.clean_subset(48, &mut rng);
        Fixture {
            victim: Mutex::new(victim),
            clean_x,
            dataset: data,
        }
    }
}

fn cifar_spec() -> SyntheticSpec {
    SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(300)
        .with_test_size(60)
}

/// Table 1 / Figs. 1, 3, 4, 6 setting: ResNet-18 on CIFAR-10-like data with
/// a 2×2 BadNet backdoor (target class 0).
pub fn cifar_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = BadNet::new(2, 0, 0.15);
        Fixture::build(
            "bench-cifar-resnet-badnet",
            cifar_spec(),
            ModelKind::ResNet18,
            4,
            Some((&attack, format!("{attack:?}"))),
            301,
        )
    })
}

/// Clean counterpart of [`cifar_resnet_badnet`] (headline comparison).
pub fn cifar_resnet_clean() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        Fixture::build(
            "bench-cifar-resnet-clean",
            cifar_spec(),
            ModelKind::ResNet18,
            4,
            None,
            302,
        )
    })
}

/// Table 2 / Table 7 setting: EfficientNet-B0 on ImageNet-subset-like data.
pub fn imagenet_efficientnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = BadNet::new(3, 0, 0.15);
        Fixture::build(
            "bench-imagenet-effnet-badnet",
            SyntheticSpec::imagenet_subset()
                .with_size(20)
                .with_train_size(300)
                .with_test_size(60),
            ModelKind::EfficientNetB0,
            6,
            Some((&attack, format!("{attack:?}"))),
            303,
        )
    })
}

/// Table 3 setting: VGG-16 with an input-aware dynamic backdoor.
pub fn cifar_vgg_iad() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = IadAttack::new(0);
        Fixture::build(
            "bench-cifar-vgg-iad",
            cifar_spec(),
            ModelKind::Vgg16,
            6,
            Some((&attack, format!("{attack:?}"))),
            304,
        )
    })
}

/// Table 4 setting: VGG-16 with a BadNet backdoor.
pub fn cifar_vgg_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = BadNet::new(2, 0, 0.15);
        Fixture::build(
            "bench-cifar-vgg-badnet",
            cifar_spec(),
            ModelKind::Vgg16,
            6,
            Some((&attack, format!("{attack:?}"))),
            305,
        )
    })
}

/// Table 5 / Fig. 5 setting: MNIST-like data (ResNet-18 victim).
pub fn mnist_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = BadNet::new(2, 0, 0.15);
        Fixture::build(
            "bench-mnist-resnet-badnet",
            SyntheticSpec::mnist()
                .with_size(12)
                .with_train_size(300)
                .with_test_size(60),
            ModelKind::ResNet18,
            4,
            Some((&attack, format!("{attack:?}"))),
            306,
        )
    })
}

/// Table 6 setting: GTSRB-like (16-class reduction) ResNet-18.
pub fn gtsrb_resnet_badnet() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let attack = BadNet::new(2, 0, 0.15);
        Fixture::build(
            "bench-gtsrb-resnet-badnet",
            SyntheticSpec::gtsrb()
                .with_size(12)
                .with_classes(16)
                .with_train_size(320)
                .with_test_size(64),
            ModelKind::ResNet18,
            4,
            Some((&attack, format!("{attack:?}"))),
            307,
        )
    })
}
