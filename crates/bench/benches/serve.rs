//! Serve-layer benchmarks: USBP codec throughput and end-to-end daemon
//! round trips over a real loopback socket — the warm-path number here is
//! what `BENCH_serve.json`'s p50 should look like on this hardware, and
//! the evicting pair shows what the resident cache saves per request.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usb_attacks::fixtures::{cached_victim, FixtureSpec};
use usb_attacks::persist::{write_victim, VictimBundle};
use usb_attacks::{Attack, BadNet};
use usb_data::SyntheticSpec;
use usb_eval::serve::proto::{frame_to_bytes, read_frame, Frame, SubmitRequest};
use usb_eval::serve::{Client, ServeConfig, Server, SubmitOptions};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;

/// The `determinism-badnet` fixture (shared with the serve test suites)
/// serialised as USBV bundle bytes; `data_seed` varies the bytes without
/// retraining, which is how the eviction bench gets distinct bundles.
fn fixture_bundle(data_seed: u64) -> Vec<u8> {
    let spec = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(160)
        .with_test_size(40)
        .with_classes(4);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
    let attack = BadNet::new(2, 1, 0.15);
    let tc = TrainConfig::fast();
    let fixture = FixtureSpec::new("determinism-badnet", spec, 55, 9).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| attack.execute(data, arch, tc, 9));
    let mut bundle = VictimBundle {
        victim,
        train_seed: 9,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed,
    };
    let mut out = Vec::new();
    write_victim(&mut out, &mut bundle).expect("serialising the fixture bundle");
    out
}

fn opts(workers: u32) -> SubmitOptions {
    SubmitOptions {
        tag: 1,
        seed: 17,
        subset: 32,
        workers,
        fast: true,
    }
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.local_addr()).expect("connecting to the bench daemon");
    let _ = client.set_read_timeout(Some(Duration::from_secs(600)));
    client
}

/// USBP codec alone: encode and decode a submit frame carrying a
/// realistic bundle payload (everything the reader thread does per
/// request except the socket).
fn proto_codec(c: &mut Criterion) {
    let bundle = fixture_bundle(55);
    let frame = Frame::Submit(SubmitRequest {
        tag: 1,
        seed: 17,
        subset: 32,
        workers: 2,
        fast: true,
        bundle: bundle.clone(),
    });
    c.bench_function("serve/proto_encode_submit", |bench| {
        bench.iter(|| black_box(frame_to_bytes(black_box(&frame)).unwrap()))
    });
    let bytes = frame_to_bytes(&frame).unwrap();
    c.bench_function("serve/proto_decode_submit", |bench| {
        bench.iter(|| black_box(read_frame(&mut bytes.as_slice()).unwrap()))
    });
}

/// One warm verdict round trip: submit → progress stream → verdict, all
/// over loopback TCP against a resident model.
fn warm_request(c: &mut Criterion) {
    let bundle = fixture_bundle(55);
    let config = ServeConfig {
        workers: 2,
        max_pending: 16,
        cache_bytes: 64 << 20,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding the bench daemon");
    let mut client = connect(&server);
    client
        .inspect(&bundle, &opts(2), |_| {})
        .expect("cache-warming request");
    c.bench_function("serve/warm_request", |bench| {
        bench.iter(|| black_box(client.inspect(&bundle, &opts(2), |_| {}).unwrap()))
    });
}

/// Two requests that evict each other out of a zero-byte-budget cache
/// (the newest entry is always admitted, everything else evicts): every
/// verdict pays bundle parse + dataset regeneration on top of the
/// inspection. Compare with `serve/warm_request` (halved — this bench
/// does two round trips per iteration) to see what residency saves.
fn evicting_request_pair(c: &mut Criterion) {
    let a = fixture_bundle(55);
    let b = fixture_bundle(56);
    let config = ServeConfig {
        workers: 2,
        max_pending: 16,
        cache_bytes: 0,
    };
    let server = Server::start(("127.0.0.1", 0), config).expect("binding the bench daemon");
    let mut client = connect(&server);
    c.bench_function("serve/evicting_request_pair", |bench| {
        bench.iter(|| {
            black_box(client.inspect(&a, &opts(2), |_| {}).unwrap());
            black_box(client.inspect(&b, &opts(2), |_| {}).unwrap());
        })
    });
}

criterion_group! {
    name = serve;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    targets = proto_codec, warm_request, evicting_request_pair
}
criterion_main!(serve);
