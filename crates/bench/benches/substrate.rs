//! Micro-benchmarks of the numerical substrate: the kernels every defense
//! iterates over (convolution, matmul, SSIM, DeepFool step), plus the
//! thread-scaling of the parallel per-class detector
//! (`substrate/usb_inspect_workers{1,4}` — compare the two to see the
//! speedup the worker pool buys on your hardware).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use usb_core::{deepfool, DeepfoolConfig, UsbDetector};
use usb_defenses::Defense;
use usb_nn::layer::Mode;
use usb_nn::optim::TensorAdam;
use usb_tensor::conv::{conv2d_backward, conv2d_forward, conv2d_forward_ws, ConvSpec};
use usb_tensor::ssim::{ssim, ssim_with_grad, ssim_with_grad_ws};
use usb_tensor::{init, ops, par, Dtype, QTensor, Tensor, Workspace};

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::uniform(&[64, 128], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[128, 64], -1.0, 1.0, &mut rng);
    c.bench_function("substrate/matmul_64x128x64", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)))
    });
    // The packed-panel route against the strided B^T kernel on the same
    // x·Wᵀ product a `Linear::infer` performs: packing pays once per
    // weight (cached on the tensor's content id), so the steady state is
    // a pure unit-stride GEMM.
    let w = init::uniform(&[64, 128], -0.2, 0.2, &mut rng);
    let mut y = vec![0.0f32; 64 * 64];
    c.bench_function("substrate/gemm_xwt_unpacked_64x128x64", |bench| {
        bench.iter(|| {
            ops::matmul_transb_into(a.data(), w.data(), 64, 128, 64, &mut y);
            black_box(y[0]);
        })
    });
    c.bench_function("substrate/gemm_xwt_packed_64x128x64", |bench| {
        let mut ws = Workspace::new();
        bench.iter(|| {
            let wt = ws.packed_transpose(&w, 64, 128);
            ops::matmul_into(a.data(), wt, 64, 128, 64, &mut y);
            black_box(y[0]);
        })
    });
    // Same product with the weight stored as Q8 blocks: the panel is
    // dequantized once on the first touch and served from the content-id
    // cache afterwards, so the steady state should sit on top of the
    // packed f32 case — the dequant cost is amortized to zero.
    let q = QTensor::quantize(&w, Dtype::Q8);
    c.bench_function("substrate/gemm_xwt_packed_q8_64x128x64", |bench| {
        let mut ws = Workspace::new();
        bench.iter(|| {
            let wt = ws.packed_dequant(&q, 64, 128);
            ops::matmul_into(a.data(), wt, 64, 128, 64, &mut y);
            black_box(y[0]);
        })
    });
}

/// The refine-loop elementwise ops the SIMD tier covers beyond the GEMMs:
/// the UAP-update axpy, one Adam step, and the Q8 block decoder feeding
/// the dequant panel cache — measured so the non-GEMM wins are numbers,
/// not assertions.
fn bench_elementwise(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 16 * 1024;
    let x = init::uniform(&[n], -1.0, 1.0, &mut rng);
    let mut y = init::uniform(&[n], -1.0, 1.0, &mut rng);
    c.bench_function("substrate/axpy_16k", |bench| {
        bench.iter(|| {
            y.axpy(black_box(0.25), &x);
            black_box(y.data()[0]);
        })
    });
    let grad = init::uniform(&[n], -0.5, 0.5, &mut rng);
    let mut param = init::uniform(&[n], -1.0, 1.0, &mut rng);
    let mut adam = TensorAdam::new(0.05).with_betas(0.5, 0.9);
    c.bench_function("substrate/adam_step_16k", |bench| {
        bench.iter(|| {
            adam.step(&mut [&mut param], &[&grad]);
            black_box(param.data()[0]);
        })
    });
    let q = QTensor::quantize(&x, Dtype::Q8);
    let mut out = vec![0.0f32; n];
    c.bench_function("substrate/q8_decode_16k", |bench| {
        bench.iter(|| {
            q.dequantize_into(&mut out);
            black_box(out[0]);
        })
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::uniform(&[8, 16, 12, 12], 0.0, 1.0, &mut rng);
    let w = init::uniform(&[16, 16, 3, 3], -0.2, 0.2, &mut rng);
    let spec = ConvSpec::new(1, 1);
    c.bench_function("substrate/conv2d_forward_b8c16", |bench| {
        bench.iter(|| black_box(conv2d_forward(&x, &w, None, spec)))
    });
    let out = conv2d_forward(&x, &w, None, spec);
    let go = Tensor::ones(out.shape());
    c.bench_function("substrate/conv2d_backward_b8c16", |bench| {
        bench.iter(|| black_box(conv2d_backward(&x, &w, &go, spec)))
    });
}

fn bench_ssim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(&[16, 3, 12, 12], 0.0, 1.0, &mut rng);
    let y = init::uniform(&[16, 3, 12, 12], 0.0, 1.0, &mut rng);
    c.bench_function("substrate/ssim_b16", |bench| {
        bench.iter(|| black_box(ssim(&x, &y)))
    });
    c.bench_function("substrate/ssim_with_grad_b16", |bench| {
        bench.iter(|| black_box(ssim_with_grad(&x, &y)))
    });
    c.bench_function("substrate/ssim_with_grad_warm_ws_b16", |bench| {
        let mut ws = Workspace::new();
        bench.iter(|| {
            let (val, grad) = ssim_with_grad_ws(&x, &y, &mut ws);
            black_box(val);
            ws.recycle(grad);
        })
    });
}

/// The allocation win of the inference path, measured instead of
/// asserted: the caching `forward(Mode::Eval)` against `infer` on the
/// same trained victim, and `infer` with a workspace kept warm across
/// calls against one recreated cold every call (isolating how much of the
/// win comes from buffer reuse rather than skipped cache writes).
fn bench_infer_vs_forward(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    let batch: Vec<Tensor> = (0..16).map(|i| fixture.clean_x.index_axis0(i)).collect();
    let batch = Tensor::stack(&batch);
    c.bench_function("substrate/forward_eval_b16", |bench| {
        bench.iter(|| {
            let mut victim = fixture.victim.lock().unwrap();
            black_box(victim.model.forward(&batch, Mode::Eval))
        })
    });
    c.bench_function("substrate/infer_warm_ws_b16", |bench| {
        let mut ws = Workspace::new();
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            let logits = victim.model.infer(&batch, &mut ws);
            let class = black_box(ops::argmax_rows(&logits));
            ws.recycle(logits); // keep the steady state allocation-free
            class
        })
    });
    // The quantized twin of the warm case: weights stored as Q8 blocks,
    // dequantized into the panel cache on the first batch — compare with
    // `infer_warm_ws_b16` to see the steady-state cost of low-precision
    // storage (it should be within noise of the f32 route).
    c.bench_function("substrate/infer_warm_q8_b16", |bench| {
        let mut qmodel = fixture.victim.lock().unwrap().model.clone();
        qmodel.quantize_weights(Dtype::Q8);
        let mut ws = Workspace::new();
        bench.iter(|| {
            let logits = qmodel.infer(&batch, &mut ws);
            let class = black_box(ops::argmax_rows(&logits));
            ws.recycle(logits);
            class
        })
    });
    c.bench_function("substrate/infer_cold_ws_b16", |bench| {
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            let mut ws = Workspace::new();
            black_box(victim.model.infer(&batch, &mut ws))
        })
    });
    // The same warm/cold comparison on the raw conv kernel, without the
    // network plumbing on top.
    let mut rng = StdRng::seed_from_u64(3);
    let x = init::uniform(&[8, 16, 12, 12], 0.0, 1.0, &mut rng);
    let w = init::uniform(&[16, 16, 3, 3], -0.2, 0.2, &mut rng);
    let spec = ConvSpec::new(1, 1);
    c.bench_function("substrate/conv2d_forward_warm_ws", |bench| {
        let mut ws = Workspace::new();
        bench.iter(|| {
            let out = conv2d_forward_ws(&x, &w, None, spec, &mut ws);
            black_box(out.data()[0]);
            ws.recycle(out);
        })
    });
}

fn bench_deepfool(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    let x = fixture.clean_x.index_axis0(0);
    c.bench_function("substrate/deepfool_single_image", |bench| {
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            black_box(deepfool(&victim.model, &x, 1, DeepfoolConfig::default()))
        })
    });
}

fn bench_par_map(c: &mut Criterion) {
    // Fan-out overhead of the worker pool on a CPU-bound item, relative to
    // the inline (1-worker) path.
    let items: Vec<u64> = (0..64).collect();
    let work = |_: usize, &x: &u64| -> u64 {
        let mut acc = x;
        for i in 0..20_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    c.bench_function("substrate/par_map_64items_1worker", |bench| {
        bench.iter(|| black_box(par::par_map(1, &items, work)))
    });
    let n = par::worker_threads();
    c.bench_function("substrate/par_map_64items_nworkers", |bench| {
        bench.iter(|| black_box(par::par_map(n, &items, work)))
    });
}

/// Whole-detector throughput at a pinned worker count: the per-class scan
/// (10 classes, Alg. 1 + Alg. 2 each) on the Table 1 fixture. The
/// acceptance number for the parallel engine is the ratio of the `workers1`
/// and `workers4` runs — on a ≥ 4-core machine the 4-worker case should be
/// at least 2× faster, while verdicts stay bit-identical (enforced by
/// `tests/determinism.rs`).
fn bench_detector_scaling(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    for workers in [1usize, 4] {
        c.bench_function(
            &format!("substrate/usb_inspect_workers{workers}"),
            |bench| {
                bench.iter(|| {
                    let victim = fixture.victim.lock().unwrap();
                    let mut rng = StdRng::seed_from_u64(7);
                    black_box(UsbDetector::fast_with_workers(workers).inspect(
                        &victim.model,
                        &fixture.clean_x,
                        &mut rng,
                    ))
                })
            },
        );
    }
}

fn benches(c: &mut Criterion) {
    let c = configure(c);
    bench_matmul(c);
    bench_elementwise(c);
    bench_conv(c);
    bench_ssim(c);
    bench_par_map(c);
    bench_infer_vs_forward(c);
    bench_deepfool(c);
}

fn detector_benches(c: &mut Criterion) {
    bench_detector_scaling(c);
}

criterion_group! {
    name = substrate;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
// One inspection is seconds of work: keep the sample count low so the
// scaling comparison stays runnable as part of a normal bench sweep.
criterion_group! {
    name = detector;
    config = Criterion::default()
        .sample_size(3)
        .warm_up_time(Duration::from_millis(1))
        .measurement_time(Duration::from_secs(3));
    targets = detector_benches
}
criterion_main!(substrate, detector);
