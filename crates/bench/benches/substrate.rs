//! Micro-benchmarks of the numerical substrate: the kernels every defense
//! iterates over (convolution, matmul, SSIM, DeepFool step).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use usb_core::{deepfool, DeepfoolConfig};
use usb_tensor::conv::{conv2d_backward, conv2d_forward, ConvSpec};
use usb_tensor::ssim::{ssim, ssim_with_grad};
use usb_tensor::{init, ops, Tensor};

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::uniform(&[64, 128], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[128, 64], -1.0, 1.0, &mut rng);
    c.bench_function("substrate/matmul_64x128x64", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::uniform(&[8, 16, 12, 12], 0.0, 1.0, &mut rng);
    let w = init::uniform(&[16, 16, 3, 3], -0.2, 0.2, &mut rng);
    let spec = ConvSpec::new(1, 1);
    c.bench_function("substrate/conv2d_forward_b8c16", |bench| {
        bench.iter(|| black_box(conv2d_forward(&x, &w, None, spec)))
    });
    let out = conv2d_forward(&x, &w, None, spec);
    let go = Tensor::ones(out.shape());
    c.bench_function("substrate/conv2d_backward_b8c16", |bench| {
        bench.iter(|| black_box(conv2d_backward(&x, &w, &go, spec)))
    });
}

fn bench_ssim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(&[16, 3, 12, 12], 0.0, 1.0, &mut rng);
    let y = init::uniform(&[16, 3, 12, 12], 0.0, 1.0, &mut rng);
    c.bench_function("substrate/ssim_b16", |bench| {
        bench.iter(|| black_box(ssim(&x, &y)))
    });
    c.bench_function("substrate/ssim_with_grad_b16", |bench| {
        bench.iter(|| black_box(ssim_with_grad(&x, &y)))
    });
}

fn bench_deepfool(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    let x = fixture.clean_x.index_axis0(0);
    c.bench_function("substrate/deepfool_single_image", |bench| {
        bench.iter(|| {
            let mut victim = fixture.victim.lock().unwrap();
            black_box(deepfool(
                &mut victim.model,
                &x,
                1,
                DeepfoolConfig::default(),
            ))
        })
    });
}

fn benches(c: &mut Criterion) {
    let c = configure(c);
    bench_matmul(c);
    bench_conv(c);
    bench_ssim(c);
    bench_deepfool(c);
}

criterion_group! {
    name = substrate;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(substrate);
