//! One benchmark per paper figure: the computational kernel behind each
//! visualisation, plus the §4.2 headline statistic and the §4.4 UAP
//! transfer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use usb_core::{refine_uap, targeted_uap, transfer_uap, RefineConfig, UapConfig};

/// Fig. 1: targeted-UAP generation on backdoored vs clean models (the
/// backdoored one should be markedly cheaper — fewer DeepFool calls).
fn fig1(c: &mut Criterion) {
    let backdoored = usb_bench::cifar_resnet_badnet();
    let clean = usb_bench::cifar_resnet_clean();
    c.bench_function("fig1/uap_backdoored_target", |bench| {
        bench.iter(|| {
            let victim = backdoored.victim.lock().unwrap();
            black_box(targeted_uap(
                &victim.model,
                &backdoored.clean_x,
                0,
                UapConfig::fast(),
            ))
        })
    });
    c.bench_function("fig1/uap_clean_model", |bench| {
        bench.iter(|| {
            let victim = clean.victim.lock().unwrap();
            black_box(targeted_uap(
                &victim.model,
                &clean.clean_x,
                0,
                UapConfig::fast(),
            ))
        })
    });
}

/// Figs. 2–4 and 6: Alg. 2 refinement (the reconstruction the figures
/// visualise).
fn fig_reconstruction(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    let uap = {
        let victim = fixture.victim.lock().unwrap();
        targeted_uap(&victim.model, &fixture.clean_x, 0, UapConfig::fast())
    };
    c.bench_function("fig2_3_4_6/refine_uap", |bench| {
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            black_box(refine_uap(
                &victim.model,
                &fixture.clean_x,
                0,
                &uap.perturbation,
                RefineConfig::fast(),
            ))
        })
    });
}

/// Fig. 5: refinement without the mask constraint (`L = CE − SSIM`).
fn fig5(c: &mut Criterion) {
    let fixture = usb_bench::mnist_resnet_badnet();
    let uap = {
        let victim = fixture.victim.lock().unwrap();
        targeted_uap(&victim.model, &fixture.clean_x, 0, UapConfig::fast())
    };
    c.bench_function("fig5/refine_unconstrained", |bench| {
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            black_box(refine_uap(
                &victim.model,
                &fixture.clean_x,
                0,
                &uap.perturbation,
                RefineConfig::fast().without_mask_constraint(),
            ))
        })
    });
}

/// §4.2 headline: backdoored-class UAP vs clean-class UAP on the same
/// victim (size difference is the detection signal).
fn headline(c: &mut Criterion) {
    let fixture = usb_bench::cifar_resnet_badnet();
    c.bench_function("headline/uap_nontarget_class", |bench| {
        bench.iter(|| {
            let victim = fixture.victim.lock().unwrap();
            black_box(targeted_uap(
                &victim.model,
                &fixture.clean_x,
                5,
                UapConfig::fast(),
            ))
        })
    });
}

/// §4.4: Alg. 2 on a transferred UAP (skipping Alg. 1 on the new model).
fn transfer(c: &mut Criterion) {
    let source = usb_bench::cifar_resnet_badnet();
    let dest = usb_bench::cifar_resnet_clean();
    let uap = {
        let victim = source.victim.lock().unwrap();
        targeted_uap(&victim.model, &source.clean_x, 0, UapConfig::fast())
    };
    c.bench_function("transfer/refine_on_other_model", |bench| {
        bench.iter(|| {
            let victim = dest.victim.lock().unwrap();
            black_box(transfer_uap(
                &victim.model,
                &dest.clean_x,
                0,
                &uap.perturbation,
                RefineConfig::fast(),
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = fig1, fig_reconstruction, fig5, headline, transfer
}
criterion_main!(figures);
