//! One benchmark group per paper table: the per-class detection cost of
//! NC, TABOR, and USB in each table's (dataset, architecture, attack)
//! setting. These regenerate the *computational* content of Tables 1–6 and
//! directly measure Table 7 (per-class wall-clock, where the paper reports
//! NC ≈ 23 min, TABOR ≈ 35–48 min, USB ≈ 4.5 min per class on GPU — the
//! ordering and ~5–8× gap are the reproduced claims).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use usb_bench::Fixture;
use usb_core::UsbDetector;
use usb_defenses::{Defense, NeuralCleanse, Tabor};

/// Benches all three defenses reverse-engineering class 0 on `fixture`.
fn bench_suite(c: &mut Criterion, group: &str, fixture: &'static Fixture) {
    let nc = NeuralCleanse::fast();
    let tabor = Tabor::fast();
    let usb = UsbDetector::fast();
    let defenses: Vec<(&str, Box<dyn Defense>)> = vec![
        ("nc", Box::new(nc)),
        ("tabor", Box::new(tabor)),
        ("usb", Box::new(usb)),
    ];
    for (name, defense) in defenses {
        c.bench_function(&format!("{group}/reverse_class_{name}"), |bench| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                let victim = fixture.victim.lock().unwrap();
                black_box(defense.reverse_class(&victim.model, &fixture.clean_x, 0, &mut rng))
            })
        });
    }
}

fn table1(c: &mut Criterion) {
    bench_suite(c, "table1_cifar_resnet", usb_bench::cifar_resnet_badnet());
}

fn table2(c: &mut Criterion) {
    bench_suite(
        c,
        "table2_imagenet_efficientnet",
        usb_bench::imagenet_efficientnet_badnet(),
    );
}

fn table3(c: &mut Criterion) {
    bench_suite(c, "table3_vgg_iad", usb_bench::cifar_vgg_iad());
}

fn table4(c: &mut Criterion) {
    bench_suite(c, "table4_vgg_badnet", usb_bench::cifar_vgg_badnet());
}

fn table5(c: &mut Criterion) {
    bench_suite(c, "table5_mnist_resnet", usb_bench::mnist_resnet_badnet());
}

fn table6(c: &mut Criterion) {
    bench_suite(c, "table6_gtsrb_resnet", usb_bench::gtsrb_resnet_badnet());
}

/// Table 7 is exactly the per-class timing of the table 2 setting; bench
/// the USB pipeline separately from its two phases for the breakdown.
fn table7(c: &mut Criterion) {
    let fixture = usb_bench::imagenet_efficientnet_badnet();
    c.bench_function("table7_timing/usb_full_class", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let usb = UsbDetector::fast();
            let victim = fixture.victim.lock().unwrap();
            black_box(usb.reverse_class(&victim.model, &fixture.clean_x, 1, &mut rng))
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = table1, table2, table3, table4, table5, table6, table7
}
criterion_main!(tables);
