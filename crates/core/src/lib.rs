//! # usb-core
//!
//! **Universal Soldier for Backdoor detection (USB)** — the paper's
//! contribution. USB detects all-to-one backdoors in a pre-trained
//! classifier in two phases:
//!
//! 1. **Targeted UAP (Alg. 1)** — [`targeted_uap`] builds a universal
//!    adversarial perturbation `v` that sends *most* clean inputs to a
//!    candidate target class, by repeatedly applying a targeted
//!    [`deepfool`] step to every not-yet-fooled sample and projecting onto
//!    an L∞ ball. A backdoored class has a poisoning-built shortcut from
//!    every class, so its UAP needs far less perturbation.
//! 2. **UAP refinement (Alg. 2)** — [`refine_uap`] decomposes `v` into a
//!    `trigger × mask` pair and optimises
//!    `L = CE(f(x'), t) − SSIM(x, x') + λ‖mask‖₁` with Adam, focusing the
//!    perturbation on the pixels that actually carry the shortcut.
//!
//! The [`UsbDetector`] packages both phases as a
//! [`usb_defenses::Defense`], so it plugs into the same MAD outlier test
//! and scoring as NC and TABOR. [`transfer`](transfer_uap) reuses a UAP
//! generated on one model to seed detection on another (paper §4.4: "we
//! only need to generate it once").
//!
//! Inspection runs the per-class scans **in parallel** on the
//! [`usb_tensor::par`] worker pool ([`UsbConfig::workers`], or the
//! `USB_THREADS` environment variable), every worker sharing **one
//! `&Network`** — the model is only ever read (forward passes through the
//! cache-free inference path, gradients through the caller-owned
//! `usb_tensor::tape::Tape`), so inspection spawns zero model clones.
//! Each class draws from its own rng stream derived from the inspection
//! seed, so verdicts are bit-identical at any thread count.
//!
//! # Example
//!
//! ```rust,no_run
//! use usb_core::{UsbConfig, UsbDetector};
//! use usb_defenses::Defense;
//! use usb_data::SyntheticSpec;
//! # use usb_attacks::{Attack, BadNet};
//! # use usb_nn::models::{Architecture, ModelKind};
//! # use usb_nn::train::TrainConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = SyntheticSpec::cifar10().with_size(16).generate(3);
//! # let arch = Architecture::new(ModelKind::ResNet18, (3, 16, 16), 10).with_width(4);
//! # let victim = BadNet::new(2, 0, 0.1).execute(&data, arch, TrainConfig::fast(), 3);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (clean_x, _) = data.clean_subset(48, &mut rng);
//! let usb = UsbDetector::new(UsbConfig::fast());
//! let outcome = usb.inspect(&victim.model, &clean_x, &mut rng);
//! println!("backdoored: {}, classes {:?}", outcome.is_backdoored(), outcome.flagged);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod deepfool;
mod detector;
mod refine;
mod transfer;
mod uap;
pub mod viz;

pub use deepfool::{deepfool, deepfool_in, DeepfoolConfig};
pub use detector::{StageSeconds, UsbConfig, UsbDetector};
pub use refine::{refine_uap, RefineConfig, RefinedTrigger};
pub use transfer::{transfer_uap, TransferOutcome};
pub use uap::{targeted_uap, UapConfig, UapResult};
