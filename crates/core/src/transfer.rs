//! UAP transfer across models (paper §4.4).
//!
//! "Although USB needs to generate targeted UAP, the UAP can be used for
//! different models with similar architecture. We only need to generate it
//! once." — this module reuses a UAP generated on a *source* model to seed
//! Alg. 2 on a *different* model, skipping Alg. 1 entirely.

use crate::refine::{refine_uap, RefineConfig, RefinedTrigger};
use usb_nn::models::Network;
use usb_tensor::Tensor;

/// Result of running refinement on a transferred UAP.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// The refined trigger on the destination model.
    pub refined: RefinedTrigger,
    /// Targeted success of the *raw* (un-refined) UAP on the destination
    /// model, measuring how well the perturbation transfers by itself.
    pub raw_transfer_success: f64,
}

/// Refines a UAP generated elsewhere against `dest` (Alg. 2 only — no new
/// Alg. 1 run). The destination model is only read.
///
/// # Panics
///
/// Panics if shapes disagree or `images` is empty.
pub fn transfer_uap(
    dest: &Network,
    images: &Tensor,
    target: usize,
    uap: &Tensor,
    config: RefineConfig,
) -> TransferOutcome {
    let raw = crate::uap::targeted_success_rate(dest, images, uap, target);
    let refined = refine_uap(dest, images, target, uap, config);
    TransferOutcome {
        refined,
        raw_transfer_success: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uap::{targeted_uap, UapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::{Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn uap_transfers_between_models_with_same_backdoor() {
        // Two models trained on the same poisoned distribution (different
        // seeds): the UAP from model A still exposes the shortcut on B.
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(300)
            .with_test_size(60)
            .with_classes(6)
            .generate(121);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
        let attack = BadNet::new(2, 2, 0.15);
        let a = attack.execute(&data, arch, TrainConfig::new(20), 11);
        let b = attack.execute(&data, arch, TrainConfig::new(20), 12);
        assert!(a.asr() > 0.8 && b.asr() > 0.8, "attacks failed");
        let mut rng = StdRng::seed_from_u64(5);
        let (x, _) = data.clean_subset(32, &mut rng);
        let uap = targeted_uap(&a.model, &x, 2, UapConfig::fast());
        let out = transfer_uap(&b.model, &x, 2, &uap.perturbation, RefineConfig::fast());
        assert!(
            out.refined.success_rate > 0.6,
            "transferred refinement failed: {}",
            out.refined.success_rate
        );
    }
}
