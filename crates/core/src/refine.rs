//! Alg. 2: refining the targeted UAP into a `trigger × mask` pair.
//!
//! ```text
//! Input:  data points X, target class t, victim model f, UAP v,
//!         max iterations m, learning rate lr
//! Output: updated UAP v' = trigger × mask
//!
//! initialise trigger and mask from v
//! for i in 0..m:
//!     x  ← next batch from X (in order)
//!     x' ← x·(1−mask) + trigger·mask
//!     L  ← CE(f(x'), t) − SSIM(x, x') + ‖mask‖₁
//!     backprop L, Adam-update mask and trigger
//! ```
//!
//! Unlike NC, the optimisation starts from the UAP — which already carries
//! the model's shortcut features — instead of a random point, so it needs
//! far fewer iterations (paper §4.4 and Fig. 1).

use usb_defenses::TriggerVar;
use usb_nn::loss::softmax_cross_entropy_uniform_target_ws;
use usb_nn::models::Network;
use usb_nn::optim::TensorAdam;
use usb_tensor::ssim::ssim_with_grad_ws;
use usb_tensor::{Tape, Tensor, Workspace};

/// Hyperparameters of the Alg. 2 optimisation.
///
/// Defaults (via [`RefineConfig::standard`]): `steps: 80`, `lr: 0.1`
/// (Adam, betas `(0.5, 0.9)` as in the paper), `ssim_weight: 1.0`,
/// `mask_l1_weight: 0.05` (dimensionless loss weights), `batch_size: 16`
/// images per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Maximum iterations `m` (the paper uses 500 at full scale; the
    /// synthetic substrate converges far sooner because the UAP seed is
    /// already informative).
    pub steps: usize,
    /// Adam learning rate (paper: 0.1 with betas (0.5, 0.9)).
    pub lr: f32,
    /// Weight of the SSIM similarity reward.
    pub ssim_weight: f32,
    /// Weight of the `‖mask‖₁` penalty (set to 0 to reproduce the paper's
    /// §A.6 unconstrained-mask study, Fig. 5).
    pub mask_l1_weight: f32,
    /// Per-step batch size drawn in order from `X`.
    pub batch_size: usize,
}

impl RefineConfig {
    /// Full-strength configuration.
    pub fn standard() -> Self {
        RefineConfig {
            steps: 80,
            lr: 0.1,
            ssim_weight: 1.0,
            mask_l1_weight: 0.05,
            batch_size: 16,
        }
    }

    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        RefineConfig {
            steps: 40,
            ..Self::standard()
        }
    }

    /// The paper's §A.6 variant: no mask-size constraint
    /// (`L = CE − SSIM`), used to visualise what the optimisation learns
    /// per class (Fig. 5).
    #[must_use]
    pub fn without_mask_constraint(mut self) -> Self {
        self.mask_l1_weight = 0.0;
        self
    }
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The refined trigger: `v' = trigger × mask` plus statistics.
#[derive(Debug, Clone)]
pub struct RefinedTrigger {
    /// Refined pattern `[C, H, W]` in `[0, 1]`.
    pub pattern: Tensor,
    /// Refined mask `[H, W]` in `[0, 1]`.
    pub mask: Tensor,
    /// Success rate of the refined trigger over all of `X`.
    pub success_rate: f64,
    /// Mean SSIM between clean and triggered inputs at the last step.
    pub final_ssim: f32,
}

impl RefinedTrigger {
    /// L1 norm of the mask — the statistic reported in the paper's tables.
    pub fn mask_l1(&self) -> f64 {
        self.mask.l1_norm() as f64
    }

    /// The effective perturbation `v' = trigger × mask` (`[C, H, W]`).
    pub fn effective_perturbation(&self) -> Tensor {
        let (c, h, w) = (
            self.pattern.shape()[0],
            self.pattern.shape()[1],
            self.pattern.shape()[2],
        );
        let mut out = Tensor::zeros(&[c, h, w]);
        for ch in 0..c {
            for j in 0..h * w {
                out.data_mut()[ch * h * w + j] =
                    self.pattern.data()[ch * h * w + j] * self.mask.data()[j];
            }
        }
        out
    }
}

/// Builds the Alg. 2 initialisation from a UAP: the mask is the
/// channel-averaged magnitude of `v` (normalised), the trigger is `v`
/// re-centred into pixel space.
pub fn init_from_uap(v: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(v.ndim(), 3, "init_from_uap: v must be [C,H,W]");
    let (c, h, w) = (v.shape()[0], v.shape()[1], v.shape()[2]);
    let mut mag = Tensor::zeros(&[h, w]);
    for ch in 0..c {
        for j in 0..h * w {
            mag.data_mut()[j] += v.data()[ch * h * w + j].abs() / c as f32;
        }
    }
    let max = mag.max().max(1e-6);
    let mask = mag.map(|m| (0.9 * m / max).clamp(0.0, 0.95));
    // Trigger: v scaled into [0,1] around 0.5 — where the mask is strong,
    // x' ≈ trigger, so the trigger must encode v's direction in pixel space.
    let vmax = v.linf_norm().max(1e-6);
    let pattern = v.map(|p| (0.5 + 0.5 * p / vmax).clamp(0.0, 1.0));
    (mask, pattern)
}

/// Runs Alg. 2: refine the UAP `v` into a `trigger × mask` pair for
/// `target` using the clean data `images`.
///
/// The model is only **read**: the per-step CE gradient goes through the
/// tape-backed [`Network::input_grad_in`] route and the final scoring
/// through the cache-free inference path, so concurrent per-class
/// refinements can share one `&Network`.
///
/// # Panics
///
/// Panics if `images` is empty or shapes disagree.
pub fn refine_uap(
    model: &Network,
    images: &Tensor,
    target: usize,
    v: &Tensor,
    config: RefineConfig,
) -> RefinedTrigger {
    let n = images.shape()[0];
    assert!(n > 0, "refine_uap: no data points");
    let (mask0, pattern0) = init_from_uap(v);
    let mut var = TriggerVar::from_values(&mask0, &pattern0);
    let mut adam = TensorAdam::new(config.lr).with_betas(0.5, 0.9);
    let bs = config.batch_size.min(n);
    assert_eq!(images.ndim(), 4, "refine_uap: images must be [N,C,H,W]");
    let row = images.len() / n;
    let batch_shape = [bs, images.shape()[1], images.shape()[2], images.shape()[3]];
    let mut cursor = 0usize;
    let mut final_ssim = 0.0f32;
    // One tape and workspace reused across all optimisation steps: every
    // per-step tensor below is either drawn from the workspace pool or
    // recycled back into it, so the steady-state step allocates nothing
    // (pinned by the `refine_alloc` test).
    let mut tape = Tape::new();
    let mut ws = Workspace::new();
    for _ in 0..config.steps {
        // Take a batch of data from X in order (Alg. 2 line 3): rows copied
        // straight into one pooled buffer — same bytes the old
        // `index_axis0` + `stack` pair produced per step.
        let mut bdata = ws.take_dirty(bs * row);
        for i in 0..bs {
            let src = (cursor + i) % n;
            bdata[i * row..(i + 1) * row]
                .copy_from_slice(&images.data()[src * row..(src + 1) * row]);
        }
        cursor = (cursor + bs) % n;
        let batch = Tensor::from_vec(bdata, &batch_shape);
        let stamped = var.apply_ws(&batch, &mut ws);
        // CE term.
        let (logits, d_ce) = model.input_grad_in(
            &stamped,
            |logits, ws| {
                let (_, dlogits) = softmax_cross_entropy_uniform_target_ws(logits, target, ws);
                dlogits
            },
            &mut tape,
            &mut ws,
        );
        ws.recycle(logits);
        // −SSIM term (reward similarity): gradient of −w·SSIM(x', x) wrt x'.
        let (ssim_val, d_ssim) = ssim_with_grad_ws(&stamped, &batch, &mut ws);
        final_ssim = ssim_val;
        // d_ce + (−w)·d_ssim in place — bit-identical to the old
        // `d_ce.add(&d_ssim.scale(-w))` (f32 multiplication commutes).
        let mut d_stamped = d_ce;
        d_stamped.axpy(-config.ssim_weight, &d_ssim);
        ws.recycle(d_ssim);
        ws.recycle(stamped);
        let (mut d_tm, d_tp) = var.backward_ws(&batch, &d_stamped, &mut ws);
        ws.recycle(d_stamped);
        ws.recycle(batch);
        if config.mask_l1_weight > 0.0 {
            let l1 = var.mask_l1_grad_ws(config.mask_l1_weight, &mut ws);
            d_tm.add_assign(&l1);
            ws.recycle(l1);
        }
        {
            let (tm, tp) = var.params_mut();
            adam.step(&mut [tm, tp], &[&d_tm, &d_tp]);
        }
        ws.recycle(d_tm);
        ws.recycle(d_tp);
    }
    // Final success over all data points: a pure read of the model, so it
    // goes through the cache-free inference path.
    let stamped = var.apply(images);
    let hits = model
        .predict(&stamped)
        .iter()
        .filter(|&&p| p == target)
        .count();
    RefinedTrigger {
        pattern: var.pattern(),
        mask: var.mask(),
        success_rate: hits as f64 / n as f64,
        final_ssim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uap::{targeted_uap, UapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::{Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn init_from_uap_is_valid_range() {
        let v = Tensor::from_fn(&[3, 6, 6], |i| ((i as f32) * 0.37).sin() * 0.4);
        let (mask, pattern) = init_from_uap(&v);
        assert_eq!(mask.shape(), &[6, 6]);
        assert_eq!(pattern.shape(), &[3, 6, 6]);
        assert!(mask.min() >= 0.0 && mask.max() <= 0.95);
        assert!(pattern.min() >= 0.0 && pattern.max() <= 1.0);
    }

    #[test]
    fn init_mask_follows_uap_magnitude() {
        let mut v = Tensor::zeros(&[1, 4, 4]);
        *v.at_mut(&[0, 1, 1]) = 0.5; // single strong pixel
        let (mask, _) = init_from_uap(&v);
        assert_eq!(mask.argmax(), 5); // row 1, col 1 of the 4x4 mask
        assert!(mask.at(&[0, 0]) < 0.01);
    }

    #[test]
    fn refinement_shrinks_backdoored_mask_and_keeps_success() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(300)
            .with_test_size(60)
            .with_classes(6)
            .generate(101);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
        let victim = BadNet::new(2, 1, 0.15).execute(&data, arch, TrainConfig::new(20), 5);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(2);
        let (x, _) = data.clean_subset(32, &mut rng);
        let uap = targeted_uap(&victim.model, &x, 1, UapConfig::fast());
        let refined = refine_uap(
            &victim.model,
            &x,
            1,
            &uap.perturbation,
            RefineConfig::fast(),
        );
        assert!(
            refined.success_rate > 0.6,
            "refined trigger lost the shortcut: {}",
            refined.success_rate
        );
        // The refined mask concentrates: far smaller than an all-ones mask.
        let full = (12 * 12) as f64;
        assert!(
            refined.mask_l1() < 0.5 * full,
            "mask did not concentrate: {}",
            refined.mask_l1()
        );
        assert!(
            refined.final_ssim > 0.2,
            "ssim collapsed: {}",
            refined.final_ssim
        );
    }

    #[test]
    fn effective_perturbation_is_product() {
        let r = RefinedTrigger {
            pattern: Tensor::full(&[1, 2, 2], 0.5),
            mask: Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.0], &[2, 2]),
            success_rate: 1.0,
            final_ssim: 1.0,
        };
        let v = r.effective_perturbation();
        assert_eq!(v.data(), &[0.5, 0.0, 0.25, 0.0]);
    }
}
