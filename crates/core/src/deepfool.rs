//! Targeted DeepFool (Moosavi-Dezfooli et al., CVPR 2016), the inner solver
//! of Alg. 1.
//!
//! The original DeepFool finds the *nearest* decision boundary; the targeted
//! variant used by the paper's Alg. 1 line 6 solves
//!
//! ```text
//! Δv ← argmin_r ‖r‖₂   s.t.  f(x + v + r) = t
//! ```
//!
//! by iterating the linearised step `r = (z_c − z_t) / ‖w‖² · w` with
//! `w = ∇(z_t − z_c)`, where `c` is the currently predicted class.

use usb_nn::models::Network;
use usb_tensor::{ops, Tape, Tensor, Workspace};

/// Hyperparameters of the targeted DeepFool inner loop.
///
/// Defaults: `max_iters: 12`, `overshoot: 0.02` (the original DeepFool
/// constant), `clamp_pixels: true` (inputs live in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepfoolConfig {
    /// Maximum linearised steps per call.
    pub max_iters: usize,
    /// Overshoot factor pushing past the boundary (DeepFool uses 0.02).
    pub overshoot: f32,
    /// Keep `x + v` inside the valid pixel range `[0, 1]`.
    pub clamp_pixels: bool,
}

impl Default for DeepfoolConfig {
    fn default() -> Self {
        DeepfoolConfig {
            max_iters: 12,
            overshoot: 0.02,
            clamp_pixels: true,
        }
    }
}

/// Minimal perturbation sending a single image `x` (`[C, H, W]`) to class
/// `target` under `model`.
///
/// Returns the perturbation `r` (same shape as `x`); `x + r` classifies as
/// `target` unless the iteration budget ran out (callers check). The
/// perturbation is `0` when `x` already classifies as `target`.
///
/// The model is only **read**: gradients go through the tape-backed
/// [`Network::input_grad_in`] route, so one `&Network` serves every
/// caller. Convenience wrapper over [`deepfool_in`] with a throwaway
/// [`Tape`]/[`Workspace`]; hot loops (the Alg. 1 sweep) hold both and call
/// the `_in` variant so buffers are reused across iterations.
///
/// # Panics
///
/// Panics if `x` is not rank-3 or `target` is out of range.
pub fn deepfool(model: &Network, x: &Tensor, target: usize, config: DeepfoolConfig) -> Tensor {
    deepfool_in(
        model,
        x,
        target,
        config,
        &mut Tape::new(),
        &mut Workspace::new(),
    )
}

/// [`deepfool`] drawing all gradient state from `tape` and all arithmetic
/// scratch from `ws`, both reused across the iteration loop (and across
/// calls — after one warm-up step the loop allocates only the tiny
/// logit-seed tensors).
///
/// # Panics
///
/// Panics if `x` is not rank-3 or `target` is out of range.
pub fn deepfool_in(
    model: &Network,
    x: &Tensor,
    target: usize,
    config: DeepfoolConfig,
    tape: &mut Tape,
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(x.ndim(), 3, "deepfool: x must be [C,H,W]");
    assert!(
        target < model.num_classes(),
        "deepfool: target {target} out of range"
    );
    let shape4: Vec<usize> = std::iter::once(1)
        .chain(x.shape().iter().copied())
        .collect();
    let mut xi = x.reshape(&shape4);
    let orig = xi.clone();
    for _ in 0..config.max_iters {
        // One backward pass for the logit difference z_t − z_c; the
        // predicted class `c` is the shared [`ops::argmax_row`] both here
        // and after the pass (first-maximum tie-breaking in both).
        let (logits, grad) = model.input_grad_in(
            &xi,
            |logits, ws| {
                // Zeroed seed from the pool; only two entries are written.
                let mut g = ws.take_tensor(logits.shape());
                let cur = ops::argmax_row(logits.data());
                if cur != target {
                    g.data_mut()[target] = 1.0;
                    g.data_mut()[cur] = -1.0;
                }
                g
            },
            tape,
            ws,
        );
        let cur = ops::argmax_row(logits.data());
        // > 0 while not yet at target.
        let f_diff = logits.data()[cur] - logits.data()[target];
        // Both tensors are workspace-backed; hand them back on *every*
        // exit from the iteration — the common `cur == target` break is
        // the hot path of the Alg. 1 sweep, and dropping the buffers
        // there would make each call re-allocate them.
        ws.recycle(logits);
        if cur == target {
            ws.recycle(grad);
            break;
        }
        let w_norm_sq = grad.data().iter().map(|g| g * g).sum::<f32>();
        if w_norm_sq <= 1e-12 {
            ws.recycle(grad);
            break; // flat landscape; nothing to exploit
        }
        let step = (f_diff + 1e-4) / w_norm_sq * (1.0 + config.overshoot);
        xi.axpy(step, &grad);
        ws.recycle(grad);
        if config.clamp_pixels {
            xi = xi.clamp(0.0, 1.0);
        }
    }
    xi.sub(&orig).reshape(x.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::train_clean_victim;
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    fn trained_victim() -> (usb_data::Dataset, Network) {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(160)
            .with_test_size(40)
            .with_classes(4)
            .generate(71);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 2);
        (data, victim.model)
    }

    #[test]
    fn deepfool_reaches_target_class() {
        let (data, model) = trained_victim();
        let mut reached = 0;
        let mut total = 0;
        for i in 0..8 {
            let x = data.test_images.index_axis0(i);
            let label = data.test_labels[i];
            let target = (label + 1) % 4;
            let r = deepfool(&model, &x, target, DeepfoolConfig::default());
            let adv = x.add(&r).clamp(0.0, 1.0);
            let pred = model.predict_one(&adv);
            total += 1;
            if pred == target {
                reached += 1;
            }
        }
        assert!(
            reached * 2 >= total,
            "deepfool reached target only {reached}/{total} times"
        );
    }

    #[test]
    fn zero_perturbation_when_already_target() {
        let (data, model) = trained_victim();
        // Find a test image the model classifies correctly.
        for i in 0..10 {
            let x = data.test_images.index_axis0(i);
            let pred = model.predict_one(&x);
            if pred == data.test_labels[i] {
                let r = deepfool(&model, &x, pred, DeepfoolConfig::default());
                assert_eq!(r.l1_norm(), 0.0, "no perturbation needed");
                return;
            }
        }
        panic!("model never classified correctly");
    }

    #[test]
    fn perturbation_is_small_relative_to_image() {
        let (data, model) = trained_victim();
        let x = data.test_images.index_axis0(0);
        let target = (data.test_labels[0] + 1) % 4;
        let r = deepfool(&model, &x, target, DeepfoolConfig::default());
        // An adversarial perturbation should be much smaller than the image.
        assert!(
            r.l2_norm() < x.l2_norm(),
            "perturbation {} vs image {}",
            r.l2_norm(),
            x.l2_norm()
        );
    }

    #[test]
    fn respects_pixel_clamp() {
        let (data, model) = trained_victim();
        let x = data.test_images.index_axis0(1);
        let target = (data.test_labels[1] + 2) % 4;
        let r = deepfool(&model, &x, target, DeepfoolConfig::default());
        let adv = x.add(&r);
        assert!(adv.min() >= -1e-5 && adv.max() <= 1.0 + 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let (_data, model) = trained_victim();
        let x = Tensor::zeros(&[1, 12, 12]);
        let _ = deepfool(&model, &x, 99, DeepfoolConfig::default());
    }

    #[test]
    fn deterministic() {
        let (data, model) = trained_victim();
        let x = data.test_images.index_axis0(2);
        let target = (data.test_labels[2] + 1) % 4;
        let a = deepfool(&model, &x, target, DeepfoolConfig::default());
        let b = deepfool(&model, &x, target, DeepfoolConfig::default());
        assert_eq!(a.data(), b.data());
        let _ = StdRng::seed_from_u64(0); // rng unused: API is deterministic
    }
}
