//! Alg. 1: computation of the targeted universal adversarial perturbation.
//!
//! ```text
//! Input:  data points X, target class t, victim model f,
//!         desired L∞ budget δ, desired error rate θ
//! Output: targeted UAP v
//!
//! v ← 0
//! while Err(X + v) ≤ θ:
//!     for xᵢ in X:
//!         if f(xᵢ + v) ≠ t:
//!             Δvᵢ ← argmin_r ‖r‖₂ s.t. f(xᵢ + v + r) = t     (DeepFool)
//!             v ← project(v + Δvᵢ)
//! ```
//!
//! The key observation of the paper: on a backdoored model the loop
//! converges with a much *smaller* `v` for the implanted target class,
//! because poisoning built a shortcut from every class region to the
//! target.

use crate::deepfool::{deepfool_in, DeepfoolConfig};
use usb_nn::models::Network;
use usb_tensor::{Tape, Tensor, Workspace};

/// Hyperparameters for targeted-UAP generation (paper Alg. 1).
///
/// Defaults: `error_rate: 0.6` (targeted success fraction θ in `[0, 1]`,
/// as in the paper), `max_passes: 3` data sweeps, `linf_budget: 0.5`
/// (pixels live in `[0, 1]`), and the stock DeepFool inner settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UapConfig {
    /// Desired targeted success rate θ (the paper uses 0.6).
    pub error_rate: f64,
    /// Maximum sweeps over the data.
    pub max_passes: usize,
    /// L∞ projection budget δ for the accumulated perturbation.
    pub linf_budget: f32,
    /// Inner DeepFool configuration.
    pub deepfool: DeepfoolConfig,
}

impl Default for UapConfig {
    fn default() -> Self {
        UapConfig {
            error_rate: 0.6,
            max_passes: 3,
            linf_budget: 0.5,
            deepfool: DeepfoolConfig::default(),
        }
    }
}

impl UapConfig {
    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        UapConfig {
            max_passes: 2,
            deepfool: DeepfoolConfig {
                max_iters: 8,
                ..DeepfoolConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The generated UAP and its convergence statistics.
#[derive(Debug, Clone)]
pub struct UapResult {
    /// The universal perturbation `[C, H, W]`.
    pub perturbation: Tensor,
    /// Fraction of `X + v` classified as the target after generation.
    pub success_rate: f64,
    /// Number of data sweeps used.
    pub passes: usize,
    /// Total DeepFool invocations.
    pub deepfool_calls: usize,
}

impl UapResult {
    /// L1 norm of the perturbation — the "UAPs from backdoored models need
    /// fewer perturbations" statistic (paper Fig. 1).
    pub fn l1_norm(&self) -> f64 {
        self.perturbation.l1_norm() as f64
    }
}

/// Fraction of `images + v` (clamped) classified as `target`.
///
/// Pure inference: the model is only read (shared `&Network`). Convenience
/// wrapper over [`targeted_success_rate_in`] with a throwaway
/// [`Workspace`]; hot loops (the Alg. 1 sweep) hold a workspace and call
/// the `_in` variant so scratch buffers are reused across calls.
pub fn targeted_success_rate(model: &Network, images: &Tensor, v: &Tensor, target: usize) -> f64 {
    targeted_success_rate_in(model, images, v, target, &mut Workspace::new())
}

/// [`targeted_success_rate`] drawing all model-pass scratch from `ws`,
/// reused across the evaluation batches.
///
/// The range `0..n` is chunked directly (no index vector) and each chunk
/// is stamped straight into one workspace-backed batch buffer — per
/// element `(x + v).clamp(0, 1)`, the same arithmetic the old
/// per-image `add`/`clamp` tensor chain performed, so predictions are
/// bit-identical while the loop re-stacks nothing.
pub fn targeted_success_rate_in(
    model: &Network,
    images: &Tensor,
    v: &Tensor,
    target: usize,
    ws: &mut Workspace,
) -> f64 {
    const CHUNK: usize = 64;
    let n = images.shape()[0];
    if n == 0 {
        return 0.0;
    }
    let item = images.len() / n;
    assert_eq!(v.len(), item, "targeted_success_rate: v shape mismatch");
    let vd = v.data();
    let mut hits = 0usize;
    let mut start = 0usize;
    while start < n {
        let len = CHUNK.min(n - start);
        let mut batch = ws.take_dirty(len * item);
        for bi in 0..len {
            let src = &images.data()[(start + bi) * item..(start + bi + 1) * item];
            let dst = &mut batch[bi * item..(bi + 1) * item];
            for ((o, &x), &p) in dst.iter_mut().zip(src).zip(vd) {
                *o = (x + p).clamp(0.0, 1.0);
            }
        }
        let mut shape = vec![len];
        shape.extend_from_slice(&images.shape()[1..]);
        let batch = Tensor::from_vec(batch, &shape);
        hits += model
            .predict_in(&batch, ws)
            .iter()
            .filter(|&&p| p == target)
            .count();
        ws.recycle(batch);
        start += len;
    }
    hits as f64 / n as f64
}

/// Generates a targeted UAP for `target` from the clean data points
/// `images` (`[N, C, H, W]`, the paper's `X` — a few hundred samples).
///
/// The model is only **read** — forward passes go through the cache-free
/// inference path and DeepFool gradients through the caller-invisible
/// gradient tape — so concurrent per-class UAP generations can share one
/// `&Network`.
///
/// # Panics
///
/// Panics if `images` is empty or `target` is out of range.
pub fn targeted_uap(
    model: &Network,
    images: &Tensor,
    target: usize,
    config: UapConfig,
) -> UapResult {
    assert!(images.shape()[0] > 0, "targeted_uap: no data points");
    assert!(
        target < model.num_classes(),
        "targeted_uap: target out of range"
    );
    let n = images.shape()[0];
    let mut v = Tensor::zeros(&images.shape()[1..]);
    let mut passes = 0usize;
    let mut deepfool_calls = 0usize;
    // One workspace and one gradient tape outlive the whole sweep: the
    // per-sample prediction below is the hottest forward-only loop of
    // Alg. 1, the DeepFool steps are its gradient loop, and both reuse
    // these buffers across every pass.
    let mut ws = Workspace::new();
    let mut tape = Tape::new();
    let mut success = targeted_success_rate_in(model, images, &v, target, &mut ws);
    while success < config.error_rate && passes < config.max_passes {
        for i in 0..n {
            let xi = images.index_axis0(i);
            let perturbed = xi.add(&v).clamp(0.0, 1.0);
            let pred = model.predict_one_in(&perturbed, &mut ws);
            if pred != target {
                let dv = deepfool_in(
                    model,
                    &perturbed,
                    target,
                    config.deepfool,
                    &mut tape,
                    &mut ws,
                );
                deepfool_calls += 1;
                v.add_assign(&dv);
                // Project onto the L∞ ball of radius δ (the "update under
                // limitation" of Alg. 1 line 7).
                v = v.clamp(-config.linf_budget, config.linf_budget);
            }
        }
        passes += 1;
        success = targeted_success_rate_in(model, images, &v, target, &mut ws);
    }
    UapResult {
        perturbation: v,
        success_rate: success,
        passes,
        deepfool_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::{train_clean_victim, Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn uap_reaches_requested_success_rate_on_clean_model() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(160)
            .with_test_size(40)
            .with_classes(4)
            .generate(81);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let (x, _) = data.clean_subset(24, &mut rng);
        let result = targeted_uap(&victim.model, &x, 1, UapConfig::default());
        assert!(
            result.success_rate >= 0.6,
            "UAP failed to reach θ: {}",
            result.success_rate
        );
        assert!(result.perturbation.linf_norm() <= 0.5 + 1e-5);
        assert!(result.deepfool_calls > 0);
    }

    #[test]
    fn backdoored_target_needs_smaller_uap() {
        // The paper's central observation (Fig. 1): UAPs toward the
        // backdoored class are smaller than toward clean classes.
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(300)
            .with_test_size(60)
            .with_classes(6)
            .generate(91);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
        let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 4);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(1);
        let (x, _) = data.clean_subset(24, &mut rng);
        let to_backdoor = targeted_uap(&victim.model, &x, 0, UapConfig::fast());
        let to_clean = targeted_uap(&victim.model, &x, 3, UapConfig::fast());
        assert!(
            to_backdoor.l1_norm() < to_clean.l1_norm(),
            "backdoor UAP {:.1} should be smaller than clean UAP {:.1}",
            to_backdoor.l1_norm(),
            to_clean.l1_norm()
        );
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn rejects_empty_data() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .with_test_size(4)
            .with_classes(4)
            .generate(1);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 1);
        let empty = Tensor::zeros(&[0, 1, 12, 12]);
        let _ = targeted_uap(&victim.model, &empty, 0, UapConfig::fast());
    }
}
