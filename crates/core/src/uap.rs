//! Alg. 1: computation of the targeted universal adversarial perturbation.
//!
//! ```text
//! Input:  data points X, target class t, victim model f,
//!         desired L∞ budget δ, desired error rate θ
//! Output: targeted UAP v
//!
//! v ← 0
//! while Err(X + v) ≤ θ:
//!     for xᵢ in X:
//!         if f(xᵢ + v) ≠ t:
//!             Δvᵢ ← argmin_r ‖r‖₂ s.t. f(xᵢ + v + r) = t     (DeepFool)
//!             v ← project(v + Δvᵢ)
//! ```
//!
//! The key observation of the paper: on a backdoored model the loop
//! converges with a much *smaller* `v` for the implanted target class,
//! because poisoning built a shortcut from every class region to the
//! target.

use crate::deepfool::{deepfool, DeepfoolConfig};
use usb_nn::models::Network;
use usb_tensor::{Tensor, Workspace};

/// Hyperparameters for targeted-UAP generation (paper Alg. 1).
///
/// Defaults: `error_rate: 0.6` (targeted success fraction θ in `[0, 1]`,
/// as in the paper), `max_passes: 3` data sweeps, `linf_budget: 0.5`
/// (pixels live in `[0, 1]`), and the stock DeepFool inner settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UapConfig {
    /// Desired targeted success rate θ (the paper uses 0.6).
    pub error_rate: f64,
    /// Maximum sweeps over the data.
    pub max_passes: usize,
    /// L∞ projection budget δ for the accumulated perturbation.
    pub linf_budget: f32,
    /// Inner DeepFool configuration.
    pub deepfool: DeepfoolConfig,
}

impl Default for UapConfig {
    fn default() -> Self {
        UapConfig {
            error_rate: 0.6,
            max_passes: 3,
            linf_budget: 0.5,
            deepfool: DeepfoolConfig::default(),
        }
    }
}

impl UapConfig {
    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        UapConfig {
            max_passes: 2,
            deepfool: DeepfoolConfig {
                max_iters: 8,
                ..DeepfoolConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The generated UAP and its convergence statistics.
#[derive(Debug, Clone)]
pub struct UapResult {
    /// The universal perturbation `[C, H, W]`.
    pub perturbation: Tensor,
    /// Fraction of `X + v` classified as the target after generation.
    pub success_rate: f64,
    /// Number of data sweeps used.
    pub passes: usize,
    /// Total DeepFool invocations.
    pub deepfool_calls: usize,
}

impl UapResult {
    /// L1 norm of the perturbation — the "UAPs from backdoored models need
    /// fewer perturbations" statistic (paper Fig. 1).
    pub fn l1_norm(&self) -> f64 {
        self.perturbation.l1_norm() as f64
    }
}

/// Fraction of `images + v` (clamped) classified as `target`.
///
/// Pure inference: the model is only read (shared `&Network`). Convenience
/// wrapper over [`targeted_success_rate_in`] with a throwaway
/// [`Workspace`]; hot loops (the Alg. 1 sweep) hold a workspace and call
/// the `_in` variant so scratch buffers are reused across calls.
pub fn targeted_success_rate(model: &Network, images: &Tensor, v: &Tensor, target: usize) -> f64 {
    targeted_success_rate_in(model, images, v, target, &mut Workspace::new())
}

/// [`targeted_success_rate`] drawing all model-pass scratch from `ws`,
/// reused across the evaluation batches.
pub fn targeted_success_rate_in(
    model: &Network,
    images: &Tensor,
    v: &Tensor,
    target: usize,
    ws: &mut Workspace,
) -> f64 {
    let n = images.shape()[0];
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(64) {
        let stamped: Vec<Tensor> = chunk
            .iter()
            .map(|&i| images.index_axis0(i).add(v).clamp(0.0, 1.0))
            .collect();
        hits += model
            .predict_in(&Tensor::stack(&stamped), ws)
            .iter()
            .filter(|&&p| p == target)
            .count();
    }
    hits as f64 / n as f64
}

/// Generates a targeted UAP for `target` from the clean data points
/// `images` (`[N, C, H, W]`, the paper's `X` — a few hundred samples).
///
/// # Panics
///
/// Panics if `images` is empty or `target` is out of range.
pub fn targeted_uap(
    model: &mut Network,
    images: &Tensor,
    target: usize,
    config: UapConfig,
) -> UapResult {
    assert!(images.shape()[0] > 0, "targeted_uap: no data points");
    assert!(
        target < model.num_classes(),
        "targeted_uap: target out of range"
    );
    let n = images.shape()[0];
    let mut v = Tensor::zeros(&images.shape()[1..]);
    let mut passes = 0usize;
    let mut deepfool_calls = 0usize;
    // One workspace outlives the whole sweep: the per-sample prediction
    // below is the hottest forward-only loop of Alg. 1 and shares its
    // scratch buffers with the success-rate checks across every pass.
    let mut ws = Workspace::new();
    let mut success = targeted_success_rate_in(model, images, &v, target, &mut ws);
    while success < config.error_rate && passes < config.max_passes {
        for i in 0..n {
            let xi = images.index_axis0(i);
            let perturbed = xi.add(&v).clamp(0.0, 1.0);
            let pred = model.predict_one_in(&perturbed, &mut ws);
            if pred != target {
                let dv = deepfool(model, &perturbed, target, config.deepfool);
                deepfool_calls += 1;
                v.add_assign(&dv);
                // Project onto the L∞ ball of radius δ (the "update under
                // limitation" of Alg. 1 line 7).
                v = v.clamp(-config.linf_budget, config.linf_budget);
            }
        }
        passes += 1;
        success = targeted_success_rate_in(model, images, &v, target, &mut ws);
    }
    UapResult {
        perturbation: v,
        success_rate: success,
        passes,
        deepfool_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::{train_clean_victim, Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn uap_reaches_requested_success_rate_on_clean_model() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(160)
            .with_test_size(40)
            .with_classes(4)
            .generate(81);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
        let mut victim = train_clean_victim(&data, arch, TrainConfig::fast(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let (x, _) = data.clean_subset(24, &mut rng);
        let result = targeted_uap(&mut victim.model, &x, 1, UapConfig::default());
        assert!(
            result.success_rate >= 0.6,
            "UAP failed to reach θ: {}",
            result.success_rate
        );
        assert!(result.perturbation.linf_norm() <= 0.5 + 1e-5);
        assert!(result.deepfool_calls > 0);
    }

    #[test]
    fn backdoored_target_needs_smaller_uap() {
        // The paper's central observation (Fig. 1): UAPs toward the
        // backdoored class are smaller than toward clean classes.
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(300)
            .with_test_size(60)
            .with_classes(6)
            .generate(91);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 6).with_width(4);
        let mut victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 4);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(1);
        let (x, _) = data.clean_subset(24, &mut rng);
        let to_backdoor = targeted_uap(&mut victim.model, &x, 0, UapConfig::fast());
        let to_clean = targeted_uap(&mut victim.model, &x, 3, UapConfig::fast());
        assert!(
            to_backdoor.l1_norm() < to_clean.l1_norm(),
            "backdoor UAP {:.1} should be smaller than clean UAP {:.1}",
            to_backdoor.l1_norm(),
            to_clean.l1_norm()
        );
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn rejects_empty_data() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .with_test_size(4)
            .with_classes(4)
            .generate(1);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let mut victim = train_clean_victim(&data, arch, TrainConfig::fast(), 1);
        let empty = Tensor::zeros(&[0, 1, 12, 12]);
        let _ = targeted_uap(&mut victim.model, &empty, 0, UapConfig::fast());
    }
}
