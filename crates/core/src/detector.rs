//! The USB detector: Alg. 1 + Alg. 2 per class, plugged into the shared
//! MAD outlier test.

use crate::refine::{refine_uap, RefineConfig};
use crate::uap::{targeted_uap, UapConfig};
use rand::rngs::StdRng;
use rand::Rng;
use usb_defenses::{ClassResult, Defense};
use usb_nn::models::Network;
use usb_tensor::Tensor;

/// Configuration of the full USB pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsbConfig {
    /// Alg. 1 (targeted UAP) parameters.
    pub uap: UapConfig,
    /// Alg. 2 (refinement) parameters.
    pub refine: RefineConfig,
    /// Number of data points used for UAP generation (the paper uses 300 of
    /// the full training set; this caps however many the caller passes).
    pub uap_samples: usize,
}

impl UsbConfig {
    /// Full-strength configuration.
    pub fn standard() -> Self {
        UsbConfig {
            uap: UapConfig::default(),
            refine: RefineConfig::standard(),
            uap_samples: 32,
        }
    }

    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        UsbConfig {
            uap: UapConfig::fast(),
            refine: RefineConfig::fast(),
            // High enough to cover the whole clean set in the test-scale
            // settings (n ≤ 64): sub-sampling the UAP data both overfits
            // the perturbation and makes the verdict hostage to which
            // subset the rng draws.
            uap_samples: 64,
        }
    }
}

impl Default for UsbConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Universal Soldier for Backdoor detection.
///
/// Implements [`Defense`], so [`Defense::inspect`] reverse-engineers a
/// trigger per class (UAP → refinement) and flags MAD-small outliers,
/// exactly like the baselines — the only difference is *how* the per-class
/// trigger is found, which is the paper's contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsbDetector {
    /// Pipeline configuration.
    pub config: UsbConfig,
}

impl UsbDetector {
    /// Creates a detector.
    pub fn new(config: UsbConfig) -> Self {
        UsbDetector { config }
    }

    /// Detector with the reduced test configuration.
    pub fn fast() -> Self {
        UsbDetector {
            config: UsbConfig::fast(),
        }
    }
}

impl Defense for UsbDetector {
    fn name(&self) -> &'static str {
        "USB"
    }

    fn static_name(&self) -> &'static str {
        "USB"
    }

    fn reverse_class(
        &self,
        model: &mut Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult {
        let n = images.shape()[0];
        // Alg. 1 uses a small sample of X; Alg. 2 then optimises over all
        // of it. Sample without replacement for determinism given the rng.
        let take = self.config.uap_samples.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        idx.truncate(take);
        let subset: Vec<Tensor> = idx.iter().map(|&i| images.index_axis0(i)).collect();
        let subset = Tensor::stack(&subset);
        let uap = targeted_uap(model, &subset, target, self.config.uap);
        let refined = refine_uap(model, images, target, &uap.perturbation, self.config.refine);
        ClassResult {
            class: target,
            l1_norm: refined.mask_l1(),
            attack_success: refined.success_rate,
            pattern: refined.pattern,
            mask: refined.mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use usb_attacks::{train_clean_victim, Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_defenses::score_outcome;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    fn dataset(seed: u64) -> usb_data::Dataset {
        SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(80)
            .generate(seed)
    }

    #[test]
    fn usb_detects_badnet_and_finds_target() {
        let data = dataset(111);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
        let mut victim = BadNet::new(2, 4, 0.15).execute(&data, arch, TrainConfig::new(20), 7);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(3);
        let (x, _) = data.clean_subset(48, &mut rng);
        let usb = UsbDetector::fast();
        let outcome = usb.inspect(&mut victim.model, &x, &mut rng);
        assert!(
            outcome.is_backdoored(),
            "USB missed the backdoor; norms {:?}",
            outcome
                .per_class
                .iter()
                .map(|c| c.l1_norm)
                .collect::<Vec<_>>()
        );
        let verdict = score_outcome(&outcome, Some(4));
        assert!(
            outcome.flagged.contains(&4),
            "wrong target: {:?}",
            outcome.flagged
        );
        assert!(verdict.model_detection_correct);
    }

    #[test]
    fn usb_passes_clean_model() {
        let data = dataset(112);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
        let mut victim = train_clean_victim(&data, arch, TrainConfig::new(20), 8);
        assert!(victim.clean_accuracy > 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let (x, _) = data.clean_subset(48, &mut rng);
        let usb = UsbDetector::fast();
        let outcome = usb.inspect(&mut victim.model, &x, &mut rng);
        assert!(
            !outcome.is_backdoored(),
            "false positive on clean model: {:?} (norms {:?})",
            outcome.flagged,
            outcome
                .per_class
                .iter()
                .map(|c| c.l1_norm)
                .collect::<Vec<_>>()
        );
    }
}
