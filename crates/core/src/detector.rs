//! The USB detector: Alg. 1 + Alg. 2 per class, plugged into the shared
//! MAD outlier test.
//!
//! The per-class scan is embarrassingly parallel, and the victim is only
//! ever **read** — forward passes go through the cache-free inference
//! path, gradients through the caller-owned tape — so [`UsbDetector`]
//! overrides [`Defense::inspect`] to fan the classes out over
//! [`usb_tensor::par`] worker threads **sharing one `&Network`**: zero
//! model clones, one tape and workspace per worker. Verdicts are
//! **bit-identical at any thread count**: each class receives its own
//! `StdRng` stream, derived from the caller's rng in class order before
//! any worker starts, so no class's randomness depends on scheduling.

use crate::refine::{refine_uap, RefineConfig};
use crate::uap::{targeted_uap, UapConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usb_defenses::{ClassResult, Defense, DetectionOutcome};
use usb_nn::models::Network;
use usb_tensor::{par, Tensor};

/// Configuration of the full USB pipeline.
///
/// Defaults (via [`UsbConfig::standard`]): paper-strength Alg. 1/2
/// settings, `uap_samples: 32`, `workers: 0` (auto).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsbConfig {
    /// Alg. 1 (targeted UAP) parameters.
    pub uap: UapConfig,
    /// Alg. 2 (refinement) parameters.
    pub refine: RefineConfig,
    /// Number of data points (images) used for UAP generation: Alg. 1 runs
    /// on this many samples drawn without replacement from the clean set
    /// the caller passes, Alg. 2 then optimises over all of it. The paper
    /// uses 300 of the full training set; [`UsbConfig::standard`] caps at
    /// 32. [`UsbConfig::fast`] deliberately uses **64** — high enough to
    /// cover the *whole* clean set at test scale (n ≤ 64), because
    /// sub-sampling there both overfits the perturbation and makes the
    /// verdict hostage to which subset the rng happens to draw.
    pub uap_samples: usize,
    /// Worker threads for the per-class scan. `0` (the default) resolves
    /// through the environment: the `USB_THREADS` variable when set,
    /// otherwise the machine's available parallelism. Any value yields
    /// identical verdicts; only wall-clock changes.
    pub workers: usize,
}

impl UsbConfig {
    /// Full-strength configuration.
    pub fn standard() -> Self {
        UsbConfig {
            uap: UapConfig::default(),
            refine: RefineConfig::standard(),
            uap_samples: 32,
            workers: 0,
        }
    }

    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        UsbConfig {
            uap: UapConfig::fast(),
            refine: RefineConfig::fast(),
            // High enough to cover the whole clean set in the test-scale
            // settings (n ≤ 64): sub-sampling the UAP data both overfits
            // the perturbation and makes the verdict hostage to which
            // subset the rng draws.
            uap_samples: 64,
            workers: 0,
        }
    }

    /// Overrides the worker-thread count (see [`UsbConfig::workers`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl Default for UsbConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Universal Soldier for Backdoor detection.
///
/// Implements [`Defense`], so [`Defense::inspect`] reverse-engineers a
/// trigger per class (UAP → refinement) and flags MAD-small outliers,
/// exactly like the baselines — the only difference is *how* the per-class
/// trigger is found, which is the paper's contribution.
///
/// Unlike the baselines, `inspect` runs the classes **in parallel** on
/// [`UsbConfig::workers`] threads, all sharing one `&Network`: forward
/// passes go through the cache-free `Network::infer` path, and the
/// DeepFool / refinement gradient steps through the tape-backed
/// `Network::input_grad_in` route, so no worker ever writes to the model
/// and **no victim clones are made** (each worker brings its own tape and
/// workspace instead — kilobytes, not a full parameter copy). Class `t`
/// always draws from its own rng stream, so the outcome is a pure
/// function of `(model, images, seed)` — never of the thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsbDetector {
    /// Pipeline configuration.
    pub config: UsbConfig,
}

impl UsbDetector {
    /// Creates a detector.
    pub fn new(config: UsbConfig) -> Self {
        UsbDetector { config }
    }

    /// Detector with the reduced test configuration.
    pub fn fast() -> Self {
        UsbDetector {
            config: UsbConfig::fast(),
        }
    }

    /// Detector with the reduced test configuration pinned to an explicit
    /// worker count (used by benches and the determinism suite).
    pub fn fast_with_workers(workers: usize) -> Self {
        UsbDetector {
            config: UsbConfig::fast().with_workers(workers),
        }
    }

    /// Timed variant of [`Defense::reverse_class`]: reverse-engineers one
    /// class and also reports how the wall time split across the two
    /// algorithm stages (used by the Table 7 timing harness).
    pub fn reverse_class_timed(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> (ClassResult, StageSeconds) {
        let n = images.shape()[0];
        let take = self.config.uap_samples.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        idx.truncate(take);
        let subset: Vec<Tensor> = idx.iter().map(|&i| images.index_axis0(i)).collect();
        let subset = Tensor::stack(&subset);
        let t0 = std::time::Instant::now();
        let uap = targeted_uap(model, &subset, target, self.config.uap);
        let uap_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let refined = refine_uap(model, images, target, &uap.perturbation, self.config.refine);
        let refine_seconds = t1.elapsed().as_secs_f64();
        (
            ClassResult {
                class: target,
                l1_norm: refined.mask_l1(),
                attack_success: refined.success_rate,
                pattern: refined.pattern,
                mask: refined.mask,
            },
            StageSeconds {
                uap: uap_seconds,
                refine: refine_seconds,
            },
        )
    }

    /// [`Defense::inspect`] with a per-class completion callback.
    ///
    /// This *is* the inspection implementation — [`Defense::inspect`]
    /// delegates here with a no-op callback — so any observer (the serve
    /// layer streams a progress frame per finished class) sees exactly the
    /// verdict-producing computation: same seed derivation, same fan-out,
    /// bit-identical outcome at any worker count. `on_class` runs on the
    /// worker thread that finished the class, concurrently with other
    /// workers, and classes complete in scheduling order — not class
    /// order — so it must be `Sync` and order-tolerant.
    pub fn inspect_with_progress(
        &self,
        model: &Network,
        images: &Tensor,
        rng: &mut StdRng,
        on_class: impl Fn(&ClassResult) + Sync,
    ) -> DetectionOutcome {
        let k = model.num_classes();
        let seeds: Vec<u64> = (0..k).map(|_| rng.gen()).collect();
        let per_class: Vec<ClassResult> = par::par_map(self.config.workers, &seeds, |t, &seed| {
            let mut class_rng = StdRng::seed_from_u64(seed);
            let result = self.reverse_class(model, images, t, &mut class_rng);
            on_class(&result);
            result
        });
        DetectionOutcome::from_class_results(self.static_name(), per_class, self.min_success())
    }
}

/// Wall time one class spent in each stage of the USB pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSeconds {
    /// Alg. 1: targeted UAP generation.
    pub uap: f64,
    /// Alg. 2: refinement into a `trigger × mask` pair.
    pub refine: f64,
}

impl Defense for UsbDetector {
    fn name(&self) -> &'static str {
        "USB"
    }

    fn static_name(&self) -> &'static str {
        "USB"
    }

    /// Alg. 1 on a small sample of X (drawn without replacement for
    /// determinism given the rng), then Alg. 2 over all of it.
    fn reverse_class(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult {
        self.reverse_class_timed(model, images, target, rng).0
    }

    /// Parallel per-class scan: fans the classes out over the configured
    /// worker pool, **sharing one `&Network`** — zero model clones — with
    /// one derived rng stream per class.
    ///
    /// The class seeds are drawn from `rng` in class order *before* any
    /// worker starts, and [`par::par_map`] returns results in class order,
    /// so the outcome is bit-identical to a sequential scan with the same
    /// derived streams — at 1 thread or 64.
    fn inspect(&self, model: &Network, images: &Tensor, rng: &mut StdRng) -> DetectionOutcome {
        self.inspect_with_progress(model, images, rng, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use usb_attacks::{train_clean_victim, Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_defenses::score_outcome;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    fn dataset(seed: u64) -> usb_data::Dataset {
        SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(80)
            .generate(seed)
    }

    #[test]
    fn usb_detects_badnet_and_finds_target() {
        let data = dataset(111);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
        let victim = BadNet::new(2, 4, 0.15).execute(&data, arch, TrainConfig::new(20), 7);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(3);
        let (x, _) = data.clean_subset(48, &mut rng);
        let usb = UsbDetector::fast();
        let outcome = usb.inspect(&victim.model, &x, &mut rng);
        assert!(
            outcome.is_backdoored(),
            "USB missed the backdoor; norms {:?}",
            outcome
                .per_class
                .iter()
                .map(|c| c.l1_norm)
                .collect::<Vec<_>>()
        );
        let verdict = score_outcome(&outcome, &[4]);
        assert!(
            outcome.flagged.contains(&4),
            "wrong target: {:?}",
            outcome.flagged
        );
        assert!(verdict.model_detection_correct);
    }

    #[test]
    fn usb_passes_clean_model() {
        let data = dataset(112);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
        let victim = train_clean_victim(&data, arch, TrainConfig::new(20), 8);
        assert!(victim.clean_accuracy > 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let (x, _) = data.clean_subset(48, &mut rng);
        let usb = UsbDetector::fast();
        let outcome = usb.inspect(&victim.model, &x, &mut rng);
        assert!(
            !outcome.is_backdoored(),
            "false positive on clean model: {:?} (norms {:?})",
            outcome.flagged,
            outcome
                .per_class
                .iter()
                .map(|c| c.l1_norm)
                .collect::<Vec<_>>()
        );
    }
}
