//! Trigger / perturbation visualisation: PGM/PPM dumps and ASCII art for
//! the paper's figures.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use usb_tensor::Tensor;

/// Writes a rank-2 `[H, W]` tensor as a binary PGM greyscale image, mapping
/// `[lo, hi]` linearly to `[0, 255]`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
///
/// # Panics
///
/// Panics if the tensor is not rank-2 or `lo >= hi`.
pub fn save_pgm(path: &Path, t: &Tensor, lo: f32, hi: f32) -> io::Result<()> {
    assert_eq!(t.ndim(), 2, "save_pgm: need [H,W]");
    assert!(lo < hi, "save_pgm: empty value range");
    let (h, w) = (t.shape()[0], t.shape()[1]);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "P5\n{w} {h}\n255")?;
    let bytes: Vec<u8> = t
        .data()
        .iter()
        .map(|&v| (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * 255.0) as u8)
        .collect();
    f.write_all(&bytes)?;
    Ok(())
}

/// Writes a rank-3 `[C, H, W]` tensor as a PPM (3 channels) or PGM (any
/// other channel count, channel-averaged).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
///
/// # Panics
///
/// Panics if the tensor is not rank-3 or `lo >= hi`.
pub fn save_image(path: &Path, t: &Tensor, lo: f32, hi: f32) -> io::Result<()> {
    assert_eq!(t.ndim(), 3, "save_image: need [C,H,W]");
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    if c == 3 {
        assert!(lo < hi, "save_image: empty value range");
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "P6\n{w} {h}\n255")?;
        let mut bytes = Vec::with_capacity(3 * h * w);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..3 {
                    let v = t.at(&[ch, y, x]);
                    bytes.push((((v - lo) / (hi - lo)).clamp(0.0, 1.0) * 255.0) as u8);
                }
            }
        }
        f.write_all(&bytes)?;
        Ok(())
    } else {
        // Channel-average to greyscale.
        let mut grey = Tensor::zeros(&[h, w]);
        for ch in 0..c {
            for j in 0..h * w {
                grey.data_mut()[j] += t.data()[ch * h * w + j] / c as f32;
            }
        }
        save_pgm(path, &grey, lo, hi)
    }
}

/// Renders a rank-2 tensor as ASCII art (dark → light ramp), for quick
/// terminal inspection of masks and triggers.
///
/// # Panics
///
/// Panics if the tensor is not rank-2.
pub fn ascii_art(t: &Tensor) -> String {
    assert_eq!(t.ndim(), 2, "ascii_art: need [H,W]");
    const RAMP: &[u8] = b" .:-=+*#%@";
    let (h, w) = (t.shape()[0], t.shape()[1]);
    let lo = t.min();
    let hi = t.max();
    let span = (hi - lo).max(1e-6);
    let mut out = String::with_capacity((w + 1) * h);
    for y in 0..h {
        for x in 0..w {
            let v = ((t.at(&[y, x]) - lo) / span).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round()) as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_header_and_size() {
        let t = Tensor::from_fn(&[4, 6], |i| (i as f32) / 23.0);
        let dir = std::env::temp_dir().join("usb_viz_test");
        let path = dir.join("x.pgm");
        save_pgm(&path, &t, 0.0, 1.0).unwrap();
        let bytes = fs::read(&path).unwrap();
        let header = String::from_utf8_lossy(&bytes[..11]).to_string();
        assert!(header.starts_with("P5"), "{header}");
        assert!(bytes.len() >= 24, "4x6 payload expected");
        // Max value maps to 255.
        assert_eq!(*bytes.last().unwrap(), 255);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ppm_for_three_channels() {
        let t = Tensor::from_fn(&[3, 2, 2], |i| (i as f32) / 11.0);
        let dir = std::env::temp_dir().join("usb_viz_test_rgb");
        let path = dir.join("x.ppm");
        save_image(&path, &t, 0.0, 1.0).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_art_shape() {
        let t = Tensor::from_fn(&[3, 5], |i| i as f32);
        let art = ascii_art(&t);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
        // Monotone ramp: first char is the darkest, last the brightest.
        assert!(art.starts_with(' '));
        assert!(art.trim_end().ends_with('@'));
    }
}
