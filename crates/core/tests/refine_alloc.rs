//! Pins the zero-allocation contract of the Alg. 2 hot loop: once the
//! workspace pool and the Adam state are warm, a `refine_uap` optimisation
//! step performs **no heap allocations at all** — every per-step tensor is
//! drawn from, and recycled back into, the reused `Workspace`.
//!
//! The proof is a counting global allocator: two refinement runs that
//! differ only in their step count must allocate exactly the same number
//! of times, because the extra steps are all steady-state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_core::{refine_uap, RefineConfig};
use usb_nn::models::{Architecture, ModelKind};
use usb_tensor::Tensor;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Forwards to the system allocator, counting every allocation made on
/// this thread (`try_with`: TLS may already be torn down during thread
/// exit, and those allocations are not ours to count).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_for(steps: usize, model: &usb_nn::models::Network, images: &Tensor, v: &Tensor) -> u64 {
    let config = RefineConfig {
        steps,
        ..RefineConfig::fast()
    };
    let before = ALLOCS.with(|c| c.get());
    let refined = refine_uap(model, images, 0, v, config);
    let after = ALLOCS.with(|c| c.get());
    // Keep the result alive past the measurement so its drops don't shift
    // between runs, and sanity-check it did real work.
    assert!(refined.final_ssim.is_finite());
    after - before
}

#[test]
fn steady_state_refine_step_allocates_nothing() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 6)
        .with_width(4)
        .build(&mut rng);
    let images = Tensor::from_fn(&[24, 3, 12, 12], |i| 0.5 + 0.4 * ((i as f32) * 0.13).sin());
    let v = Tensor::from_fn(&[3, 12, 12], |i| 0.3 * ((i as f32) * 0.37).cos());

    // Absorb process-wide one-time initialisation (the thread-local SSIM
    // window cache, lazy formatting machinery) so the two measured runs
    // see identical global state.
    let _ = allocs_for(2, &model, &images, &v);

    // Per-run warm-up (workspace pool growth, Adam state) is confined to
    // the first few steps and identical across runs; any steady-state
    // per-step allocation shows up as a nonzero difference.
    let base = allocs_for(6, &model, &images, &v);
    let longer = allocs_for(12, &model, &images, &v);
    assert_eq!(
        longer,
        base,
        "6 extra refine steps allocated {} times (steady-state step must \
         draw everything from the workspace)",
        longer.saturating_sub(base)
    );
}
