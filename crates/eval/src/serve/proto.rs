//! The USBP wire protocol: versioned, checksummed frames carrying
//! inspection requests and results between `usb-repro serve` and its
//! clients.
//!
//! # Frame layout (protocol version 2, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic b"USBP"
//! 4       2     u16 protocol version (1 or 2)
//! 6       1     u8 frame kind
//! 7       1     u8 reserved (must be 0)
//! 8       4     u32 payload length (at most MAX_PAYLOAD)
//! 12      N     payload (kind-specific, see below)
//! 12+N    4     u32 CRC-32 (IEEE) over bytes [6, 12+N)
//! ```
//!
//! Version 2 is a purely additive extension of version 1: the only frame
//! whose payload changed is [`Frame::Verdict`], which gains a multi-target
//! ground-truth set and per-class confidence scores *appended after* the
//! complete v1 layout. The legacy single-target slot is still written
//! (`Some(t)` exactly when the truth set has one element) so v1 readers
//! decode v2 verdicts of single-target bundles unchanged, and this reader
//! still accepts v1 frames (the appended fields default to the legacy
//! slot / empty). The v2 parser cross-checks the legacy slot against the
//! appended set and rejects inconsistent frames.
//!
//! The checksum covers the kind, reserved byte, length, and payload — a
//! bit flip anywhere past the version field is caught by the CRC, and a
//! flip in the magic/version is caught structurally. Like every format in
//! `PERSISTENCE.md`, readers reject bad magic, unknown versions, non-zero
//! reserved bytes, oversized lengths, truncation, checksum mismatches,
//! and trailing payload bytes with a clean [`IoError`] — **never a
//! panic** — so no fuzzed input can take the daemon down.
//!
//! # Frame kinds
//!
//! | kind | direction | frame | payload |
//! |------|-----------|-------|---------|
//! | 0x01 | c → s | [`Frame::Ping`] | empty |
//! | 0x02 | c → s | [`Frame::Submit`] | tag u64, seed u64, subset u32, workers u32, fast u8, bundle bytes |
//! | 0x03 | c → s | [`Frame::Shutdown`] | empty |
//! | 0x10 | s → c | [`Frame::Pong`] | empty |
//! | 0x11 | s → c | [`Frame::Accepted`] | tag u64, job u64, queue_depth u32 |
//! | 0x12 | s → c | [`Frame::Progress`] | job u64, class u32, done u32, total u32, l1 f64, success f64 |
//! | 0x13 | s → c | [`Frame::Verdict`] | see [`WireVerdict`] |
//! | 0x14 | s → c | [`Frame::Error`] | tag u64, job u64, message str |
//! | 0x15 | s → c | [`Frame::ShutdownAck`] | empty |
//!
//! Strings use the shared u16-length-prefixed UTF-8 encoding from
//! [`usb_tensor::io`].

use std::io::{Read, Write};
use usb_tensor::io::{
    read_f64, read_str, read_u32, read_u64, write_f64, write_str, write_u32, write_u64, Crc32,
    IoError,
};

/// Magic bytes opening every protocol frame.
pub const FRAME_MAGIC: [u8; 4] = *b"USBP";

/// Current protocol version (written on every outgoing frame).
pub const PROTO_VERSION: u16 = 2;

/// Oldest protocol version this reader still accepts.
pub const MIN_PROTO_VERSION: u16 = 1;

/// Upper bound on a frame payload (bundles at repro scale are far
/// smaller); a length header past this is rejected before any allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// An inspection request as it travels over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen correlation tag, echoed in [`Frame::Accepted`] (and
    /// in [`Frame::Error`] when the request is rejected before a job id
    /// exists).
    pub tag: u64,
    /// Inspection seed — drives clean-subset drawing and the per-class
    /// rng streams, exactly like `usb-repro inspect --seed`.
    pub seed: u64,
    /// Clean images to draw for inspection (`inspect` uses 48).
    pub subset: u32,
    /// Worker threads for the per-class scan; 0 inherits the server's
    /// configured default. Any value yields a bit-identical verdict.
    pub workers: u32,
    /// Use the reduced (`fast`) detector configuration.
    pub fast: bool,
    /// The serialized USBV victim bundle.
    pub bundle: Vec<u8>,
}

/// One per-class completion event, streamed while an inspection runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEvent {
    /// The job this event belongs to.
    pub job: u64,
    /// The class whose trigger reversal just finished.
    pub class: u32,
    /// Classes finished so far (including this one).
    pub classes_done: u32,
    /// Total classes in this inspection.
    pub classes_total: u32,
    /// Reversed-mask L1 norm of the finished class.
    pub l1_norm: f64,
    /// Reversed-trigger success rate of the finished class.
    pub attack_success: f64,
}

/// Per-class detection statistics inside a [`WireVerdict`].
///
/// Patterns and masks travel as CRC-32 digests rather than full tensors:
/// enough to pin bit-identity across runs without shipping megabytes per
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireClass {
    /// Candidate target class.
    pub class: u32,
    /// Reversed-mask L1 norm.
    pub l1_norm: f64,
    /// MAD anomaly index of this class.
    pub anomaly: f64,
    /// Reversed-trigger success rate.
    pub attack_success: f64,
    /// CRC-32 of the reversed pattern tensor's raw f32 bytes.
    pub pattern_crc: u32,
    /// CRC-32 of the reversed mask tensor's raw f32 bytes.
    pub mask_crc: u32,
}

/// The final answer for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct WireVerdict {
    /// The job this verdict answers.
    pub job: u64,
    /// Defense name (always "USB" for the serve pipeline).
    pub method: String,
    /// Per-class statistics in class order.
    pub per_class: Vec<WireClass>,
    /// Classes flagged as backdoor targets.
    pub flagged: Vec<u32>,
    /// Median of the per-class L1 norms.
    pub median_l1: f64,
    /// Ground truth stored in the bundle: the ascending set of implanted
    /// target classes, empty for a clean victim. Single-target victims
    /// have exactly one element here (and fill the legacy v1 wire slot).
    pub truth_targets: Vec<u32>,
    /// Per-class confidence scores in class order (MAD distance below the
    /// log-norm median; 0 for unflagged classes). Empty when the producer
    /// predates protocol v2.
    pub confidences: Vec<f64>,
    /// Whether the verdict agrees with the stored ground truth (same rule
    /// as `usb-repro inspect`'s exit code: every implanted target of a
    /// backdoored victim must be flagged; a clean victim must not be
    /// flagged at all).
    pub agrees: bool,
    /// Whether the resident-model cache already held this bundle.
    pub cache_hit: bool,
    /// Server-side wall seconds spent producing the verdict.
    pub seconds: f64,
}

impl WireVerdict {
    /// `true` when at least one class was flagged.
    pub fn is_backdoored(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// The legacy v1 single-target slot: `Some(t)` exactly when the truth
    /// set has one element.
    pub fn legacy_truth_target(&self) -> Option<u32> {
        match self.truth_targets.as_slice() {
            [t] => Some(*t),
            _ => None,
        }
    }
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Liveness probe.
    Ping,
    /// An inspection request.
    Submit(SubmitRequest),
    /// Ask the daemon to shut down cleanly.
    Shutdown,
    /// Reply to [`Frame::Ping`].
    Pong,
    /// A submission passed admission control and was queued.
    Accepted {
        /// Echo of the request's correlation tag.
        tag: u64,
        /// Server-assigned job id; all later frames for this request
        /// carry it.
        job: u64,
        /// Jobs already queued ahead of this one across all connections.
        queue_depth: u32,
    },
    /// A per-class completion event for a running job.
    Progress(ProgressEvent),
    /// The final verdict for a job.
    Verdict(WireVerdict),
    /// A request-level (`tag`/`job` non-zero) or connection-level (both
    /// zero) failure.
    Error {
        /// Correlation tag of the failed request, 0 if unknown.
        tag: u64,
        /// Job id of the failed request, 0 if none was assigned.
        job: u64,
        /// Human-readable description.
        message: String,
    },
    /// The daemon acknowledged [`Frame::Shutdown`] and is stopping.
    ShutdownAck,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Ping => 0x01,
            Frame::Submit(_) => 0x02,
            Frame::Shutdown => 0x03,
            Frame::Pong => 0x10,
            Frame::Accepted { .. } => 0x11,
            Frame::Progress(_) => 0x12,
            Frame::Verdict(_) => 0x13,
            Frame::Error { .. } => 0x14,
            Frame::ShutdownAck => 0x15,
        }
    }

    fn payload(&self) -> Result<Vec<u8>, IoError> {
        let mut p = Vec::new();
        match self {
            Frame::Ping | Frame::Shutdown | Frame::Pong | Frame::ShutdownAck => {}
            Frame::Submit(req) => {
                write_u64(&mut p, req.tag)?;
                write_u64(&mut p, req.seed)?;
                write_u32(&mut p, req.subset)?;
                write_u32(&mut p, req.workers)?;
                p.push(u8::from(req.fast));
                p.extend_from_slice(&req.bundle);
            }
            Frame::Accepted {
                tag,
                job,
                queue_depth,
            } => {
                write_u64(&mut p, *tag)?;
                write_u64(&mut p, *job)?;
                write_u32(&mut p, *queue_depth)?;
            }
            Frame::Progress(ev) => {
                write_u64(&mut p, ev.job)?;
                write_u32(&mut p, ev.class)?;
                write_u32(&mut p, ev.classes_done)?;
                write_u32(&mut p, ev.classes_total)?;
                write_f64(&mut p, ev.l1_norm)?;
                write_f64(&mut p, ev.attack_success)?;
            }
            Frame::Verdict(v) => {
                write_u64(&mut p, v.job)?;
                write_str(&mut p, &v.method)?;
                write_u32(&mut p, v.per_class.len() as u32)?;
                for c in &v.per_class {
                    write_u32(&mut p, c.class)?;
                    write_f64(&mut p, c.l1_norm)?;
                    write_f64(&mut p, c.anomaly)?;
                    write_f64(&mut p, c.attack_success)?;
                    write_u32(&mut p, c.pattern_crc)?;
                    write_u32(&mut p, c.mask_crc)?;
                }
                write_u32(&mut p, v.flagged.len() as u32)?;
                for f in &v.flagged {
                    write_u32(&mut p, *f)?;
                }
                write_f64(&mut p, v.median_l1)?;
                // Legacy v1 slot, kept so v1 readers decode single-target
                // verdicts unchanged.
                match v.legacy_truth_target() {
                    None => p.push(0),
                    Some(t) => {
                        p.push(1);
                        write_u32(&mut p, t)?;
                    }
                }
                p.push(u8::from(v.agrees));
                p.push(u8::from(v.cache_hit));
                write_f64(&mut p, v.seconds)?;
                // v2 extension: the full truth set and per-class
                // confidences, appended after the complete v1 layout.
                write_u32(&mut p, v.truth_targets.len() as u32)?;
                for t in &v.truth_targets {
                    write_u32(&mut p, *t)?;
                }
                write_u32(&mut p, v.confidences.len() as u32)?;
                for c in &v.confidences {
                    write_f64(&mut p, *c)?;
                }
            }
            Frame::Error { tag, job, message } => {
                write_u64(&mut p, *tag)?;
                write_u64(&mut p, *job)?;
                write_str(&mut p, message)?;
            }
        }
        Ok(p)
    }
}

/// Encodes one frame into its wire bytes.
///
/// # Errors
///
/// Returns [`IoError::Format`] when the payload would exceed
/// [`MAX_PAYLOAD`] (e.g. an oversized bundle — callers should split or
/// reject long before this).
pub fn frame_to_bytes(frame: &Frame) -> Result<Vec<u8>, IoError> {
    let payload = frame.payload()?;
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(IoError::format(format!(
            "frame payload of {} bytes exceeds the {} byte protocol cap",
            payload.len(),
            MAX_PAYLOAD
        )));
    }
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(frame.kind());
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let mut crc = Crc32::new();
    crc.update(&out[6..]);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    Ok(out)
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), IoError> {
    let bytes = frame_to_bytes(frame)?;
    w.write_all(&bytes).map_err(IoError::from)
}

fn parse_submit(p: &mut &[u8]) -> Result<SubmitRequest, IoError> {
    let tag = read_u64(p)?;
    let seed = read_u64(p)?;
    let subset = read_u32(p)?;
    let workers = read_u32(p)?;
    let fast = read_flag(p, "submit fast flag")?;
    if subset == 0 {
        return Err(IoError::format("submit requests 0 clean samples"));
    }
    Ok(SubmitRequest {
        tag,
        seed,
        subset,
        workers,
        fast,
        bundle: std::mem::take(p).to_vec(),
    })
}

fn parse_verdict(p: &mut &[u8], version: u16) -> Result<WireVerdict, IoError> {
    let job = read_u64(p)?;
    let method = read_str(p)?;
    let k = read_u32(p)? as usize;
    // A verdict never carries more classes than its payload has bytes —
    // reject implausible counts before reserving memory for them.
    if k > p.len() {
        return Err(IoError::format(format!(
            "verdict claims {k} classes in a {} byte payload",
            p.len()
        )));
    }
    let mut per_class = Vec::with_capacity(k);
    for _ in 0..k {
        per_class.push(WireClass {
            class: read_u32(p)?,
            l1_norm: read_f64(p)?,
            anomaly: read_f64(p)?,
            attack_success: read_f64(p)?,
            pattern_crc: read_u32(p)?,
            mask_crc: read_u32(p)?,
        });
    }
    let nf = read_u32(p)? as usize;
    if nf > k {
        return Err(IoError::format(format!(
            "verdict flags {nf} of {k} classes"
        )));
    }
    let mut flagged = Vec::with_capacity(nf);
    for _ in 0..nf {
        flagged.push(read_u32(p)?);
    }
    let median_l1 = read_f64(p)?;
    let truth_target = match read_byte(p, "verdict truth tag")? {
        0 => None,
        1 => Some(read_u32(p)?),
        other => {
            return Err(IoError::format(format!(
                "unknown verdict truth tag {other}"
            )))
        }
    };
    let agrees = read_flag(p, "verdict agreement flag")?;
    let cache_hit = read_flag(p, "verdict cache flag")?;
    let seconds = read_f64(p)?;
    let (truth_targets, confidences) = if version >= 2 {
        let nt = read_u32(p)? as usize;
        if nt > p.len() {
            return Err(IoError::format(format!(
                "verdict claims {nt} truth targets in {} remaining bytes",
                p.len()
            )));
        }
        let mut truth_targets = Vec::with_capacity(nt);
        for _ in 0..nt {
            truth_targets.push(read_u32(p)?);
        }
        // The legacy slot is redundant in v2 — reject frames where the
        // two disagree rather than silently trusting either.
        let expected_legacy = match truth_targets.as_slice() {
            [t] => Some(*t),
            _ => None,
        };
        if truth_target != expected_legacy {
            return Err(IoError::format(format!(
                "verdict legacy truth slot {truth_target:?} contradicts \
                 the v2 truth set {truth_targets:?}"
            )));
        }
        let nc = read_u32(p)? as usize;
        if nc != 0 && nc != k {
            return Err(IoError::format(format!(
                "verdict carries {nc} confidences for {k} classes"
            )));
        }
        let mut confidences = Vec::with_capacity(nc);
        for _ in 0..nc {
            confidences.push(read_f64(p)?);
        }
        (truth_targets, confidences)
    } else {
        // v1 frame: synthesize the set from the legacy slot.
        (truth_target.into_iter().collect(), Vec::new())
    };
    Ok(WireVerdict {
        job,
        method,
        per_class,
        flagged,
        median_l1,
        truth_targets,
        confidences,
        agrees,
        cache_hit,
        seconds,
    })
}

fn read_byte(p: &mut &[u8], what: &str) -> Result<u8, IoError> {
    let mut b = [0u8; 1];
    p.read_exact(&mut b)
        .map_err(|_| IoError::format(format!("{what} is missing (truncated payload)")))?;
    Ok(b[0])
}

fn read_flag(p: &mut &[u8], what: &str) -> Result<bool, IoError> {
    match read_byte(p, what)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(IoError::format(format!("{what} has value {other}"))),
    }
}

fn parse_payload(kind: u8, version: u16, payload: &[u8]) -> Result<Frame, IoError> {
    let mut p = payload;
    let frame = match kind {
        0x01 => Frame::Ping,
        0x02 => Frame::Submit(parse_submit(&mut p)?),
        0x03 => Frame::Shutdown,
        0x10 => Frame::Pong,
        0x11 => Frame::Accepted {
            tag: read_u64(&mut p)?,
            job: read_u64(&mut p)?,
            queue_depth: read_u32(&mut p)?,
        },
        0x12 => Frame::Progress(ProgressEvent {
            job: read_u64(&mut p)?,
            class: read_u32(&mut p)?,
            classes_done: read_u32(&mut p)?,
            classes_total: read_u32(&mut p)?,
            l1_norm: read_f64(&mut p)?,
            attack_success: read_f64(&mut p)?,
        }),
        0x13 => Frame::Verdict(parse_verdict(&mut p, version)?),
        0x14 => Frame::Error {
            tag: read_u64(&mut p)?,
            job: read_u64(&mut p)?,
            message: read_str(&mut p)?,
        },
        0x15 => Frame::ShutdownAck,
        other => return Err(IoError::format(format!("unknown frame kind 0x{other:02x}"))),
    };
    if !p.is_empty() {
        return Err(IoError::format(format!(
            "frame kind 0x{kind:02x} payload has {} trailing bytes",
            p.len()
        )));
    }
    Ok(frame)
}

/// Reads one frame, or `None` on a clean end-of-stream (the peer closed
/// the connection *between* frames — not an error).
///
/// # Errors
///
/// [`IoError::Format`] on any malformed frame: bad magic or version,
/// non-zero reserved byte, oversized length header, checksum mismatch,
/// truncation *inside* a frame, unparseable payload, or trailing payload
/// bytes. [`IoError::Io`] only for genuine transport failures.
pub fn read_frame_or_eof(r: &mut impl Read) -> Result<Option<Frame>, IoError> {
    let mut header = [0u8; 12];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(IoError::format(format!(
                    "connection closed {got} bytes into a frame header"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(IoError::from(e)),
        }
    }
    if header[0..4] != FRAME_MAGIC {
        return Err(IoError::format(format!(
            "bad frame magic {:02x?} (expected {:02x?})",
            &header[0..4],
            FRAME_MAGIC
        )));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(IoError::format(format!(
            "unsupported protocol version {version} (this daemon speaks \
             {MIN_PROTO_VERSION} through {PROTO_VERSION})"
        )));
    }
    let kind = header[6];
    if header[7] != 0 {
        return Err(IoError::format(format!(
            "reserved frame byte is 0x{:02x}, must be 0",
            header[7]
        )));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(IoError::format(format!(
            "frame length header claims {len} bytes (protocol cap {MAX_PAYLOAD})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let mut crc = Crc32::new();
    crc.update(&header[6..]);
    crc.update(&payload);
    let computed = crc.finish();
    let stored = u32::from_le_bytes(crc_bytes);
    if computed != stored {
        return Err(IoError::format(format!(
            "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    parse_payload(kind, version, &payload).map(Some)
}

/// Reads one frame, treating end-of-stream as an error (for client-side
/// reads that are still waiting for an answer).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, IoError> {
    read_frame_or_eof(r)?
        .ok_or_else(|| IoError::format("connection closed while waiting for a frame"))
}

/// Builds the wire form of a [`usb_defenses::DetectionOutcome`] plus its context.
///
/// `truth_targets` is the ascending implanted-target set from the bundle's
/// ground truth (empty for a clean victim). Tensor digests use CRC-32 over
/// the raw little-endian f32 bytes, so two verdicts have equal digests
/// exactly when the reversed triggers match bit for bit.
pub fn verdict_from_outcome(
    job: u64,
    outcome: &usb_defenses::DetectionOutcome,
    truth_targets: &[u32],
    cache_hit: bool,
    seconds: f64,
) -> WireVerdict {
    let tensor_crc = |t: &usb_tensor::Tensor| {
        let mut crc = Crc32::new();
        for v in t.data() {
            crc.update(&v.to_le_bytes());
        }
        crc.finish()
    };
    let per_class: Vec<WireClass> = outcome
        .per_class
        .iter()
        .map(|c| WireClass {
            class: c.class as u32,
            l1_norm: c.l1_norm,
            anomaly: outcome.anomaly_indices[c.class],
            attack_success: c.attack_success,
            pattern_crc: tensor_crc(&c.pattern),
            mask_crc: tensor_crc(&c.mask),
        })
        .collect();
    let flagged: Vec<u32> = outcome.flagged.iter().map(|&f| f as u32).collect();
    let agrees = if truth_targets.is_empty() {
        flagged.is_empty()
    } else {
        truth_targets.iter().all(|t| flagged.contains(t))
    };
    WireVerdict {
        job,
        method: outcome.method.to_owned(),
        per_class,
        flagged,
        median_l1: outcome.median_l1,
        truth_targets: truth_targets.to_vec(),
        confidences: outcome.confidences.clone(),
        agrees,
        cache_hit,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdict() -> WireVerdict {
        WireVerdict {
            job: 42,
            method: "USB".to_owned(),
            per_class: vec![
                WireClass {
                    class: 0,
                    l1_norm: 51.25,
                    anomaly: 0.4,
                    attack_success: 0.25,
                    pattern_crc: 0xDEAD_BEEF,
                    mask_crc: 0x1234_5678,
                },
                WireClass {
                    class: 1,
                    l1_norm: 4.5,
                    anomaly: -3.2,
                    attack_success: 0.97,
                    pattern_crc: 7,
                    mask_crc: 8,
                },
            ],
            flagged: vec![1],
            median_l1: 27.875,
            truth_targets: vec![1],
            confidences: vec![0.0, 3.2],
            agrees: true,
            cache_hit: false,
            seconds: 1.5,
        }
    }

    fn multi_target_verdict() -> WireVerdict {
        WireVerdict {
            flagged: vec![0, 1],
            truth_targets: vec![0, 1],
            ..sample_verdict()
        }
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Ping,
            Frame::Submit(SubmitRequest {
                tag: 9,
                seed: 3,
                subset: 48,
                workers: 2,
                fast: true,
                bundle: (0..=255u8).collect(),
            }),
            Frame::Shutdown,
            Frame::Pong,
            Frame::Accepted {
                tag: 9,
                job: 42,
                queue_depth: 3,
            },
            Frame::Progress(ProgressEvent {
                job: 42,
                class: 5,
                classes_done: 2,
                classes_total: 10,
                l1_norm: 12.5,
                attack_success: 0.875,
            }),
            Frame::Verdict(sample_verdict()),
            Frame::Verdict(multi_target_verdict()),
            Frame::Error {
                tag: 9,
                job: 0,
                message: "queue full".to_owned(),
            },
            Frame::ShutdownAck,
        ]
    }

    #[test]
    fn every_frame_roundtrips_bit_exactly() {
        for frame in all_frames() {
            let bytes = frame_to_bytes(&frame).unwrap();
            let back = read_frame(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, frame);
            // Re-encoding the decoded frame reproduces the bytes — the
            // encoding is canonical, which is what lets tests compare
            // verdicts by their wire bytes.
            assert_eq!(frame_to_bytes(&back).unwrap(), bytes);
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&frame_to_bytes(f).unwrap());
        }
        let mut r = stream.as_slice();
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(read_frame_or_eof(&mut r).unwrap().is_none());
    }

    #[test]
    fn bit_flips_anywhere_are_clean_errors() {
        let bytes = frame_to_bytes(&all_frames()[1]).unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match read_frame(&mut bad.as_slice()) {
                Err(IoError::Format(_)) => {}
                Err(e) => panic!("flip at {pos}: unexpected error kind {e}"),
                // A flip inside the Submit payload is caught by the CRC;
                // nothing may decode.
                Ok(f) => panic!("flip at {pos} still decoded {f:?}"),
            }
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_a_clean_error() {
        let bytes = frame_to_bytes(&Frame::Accepted {
            tag: 1,
            job: 2,
            queue_depth: 0,
        })
        .unwrap();
        for len in 1..bytes.len() {
            match read_frame_or_eof(&mut &bytes[..len]) {
                Err(IoError::Format(_)) => {}
                Err(e) => panic!("prefix {len}: unexpected error kind {e}"),
                Ok(f) => panic!("prefix {len} decoded {f:?}"),
            }
        }
        // Zero bytes is the one clean case: end of stream between frames.
        assert!(read_frame_or_eof(&mut &bytes[..0]).unwrap().is_none());
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocation() {
        let mut bytes = frame_to_bytes(&Frame::Ping).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut bytes.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("protocol cap"), "{msg}"),
            other => panic!("oversized length accepted: {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_and_version_are_rejected() {
        let mut bad_kind = frame_to_bytes(&Frame::Ping).unwrap();
        bad_kind[6] = 0x7F;
        // Fix up the checksum so only the kind is wrong.
        let mut crc = Crc32::new();
        let end = bad_kind.len() - 4;
        crc.update(&bad_kind[6..end]);
        let digest = crc.finish().to_le_bytes();
        bad_kind[end..].copy_from_slice(&digest);
        match read_frame(&mut bad_kind.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("unknown frame kind"), "{msg}"),
            other => panic!("unknown kind accepted: {other:?}"),
        }

        let mut bad_version = frame_to_bytes(&Frame::Ping).unwrap();
        bad_version[4] = 0xFF;
        match read_frame(&mut bad_version.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("unknown version accepted: {other:?}"),
        }
    }

    /// The exact protocol-v1 encoding of a verdict: the v2 layout minus
    /// the appended truth set and confidences.
    fn encode_verdict_v1(v: &WireVerdict) -> Vec<u8> {
        let mut p = Vec::new();
        write_u64(&mut p, v.job).unwrap();
        write_str(&mut p, &v.method).unwrap();
        write_u32(&mut p, v.per_class.len() as u32).unwrap();
        for c in &v.per_class {
            write_u32(&mut p, c.class).unwrap();
            write_f64(&mut p, c.l1_norm).unwrap();
            write_f64(&mut p, c.anomaly).unwrap();
            write_f64(&mut p, c.attack_success).unwrap();
            write_u32(&mut p, c.pattern_crc).unwrap();
            write_u32(&mut p, c.mask_crc).unwrap();
        }
        write_u32(&mut p, v.flagged.len() as u32).unwrap();
        for f in &v.flagged {
            write_u32(&mut p, *f).unwrap();
        }
        write_f64(&mut p, v.median_l1).unwrap();
        match v.legacy_truth_target() {
            None => p.push(0),
            Some(t) => {
                p.push(1);
                write_u32(&mut p, t).unwrap();
            }
        }
        p.push(u8::from(v.agrees));
        p.push(u8::from(v.cache_hit));
        write_f64(&mut p, v.seconds).unwrap();
        p
    }

    /// Frames a payload by hand with an arbitrary version, with a valid
    /// CRC, bypassing the (always-current-version) production writer.
    fn raw_frame(version: u16, kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(kind);
        out.push(0);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        let mut crc = Crc32::new();
        crc.update(&out[6..]);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    #[test]
    fn v1_verdict_frames_still_decode() {
        let v2 = sample_verdict();
        let bytes = raw_frame(1, 0x13, &encode_verdict_v1(&v2));
        let expected = WireVerdict {
            confidences: Vec::new(), // v1 producers predate confidences
            ..v2
        };
        assert_eq!(
            read_frame(&mut bytes.as_slice()).unwrap(),
            Frame::Verdict(expected)
        );
    }

    #[test]
    fn v1_decode_of_a_clean_verdict_has_an_empty_truth_set() {
        let v2 = WireVerdict {
            truth_targets: Vec::new(),
            confidences: Vec::new(),
            agrees: false,
            ..sample_verdict()
        };
        let bytes = raw_frame(1, 0x13, &encode_verdict_v1(&v2));
        match read_frame(&mut bytes.as_slice()).unwrap() {
            Frame::Verdict(w) => assert!(w.truth_targets.is_empty()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn legacy_truth_slot_mismatch_is_rejected() {
        // A two-element truth set must leave the legacy slot empty; a
        // frame claiming both Some(0) and {0, 1} is inconsistent.
        let multi = multi_target_verdict();
        let mut p = encode_verdict_v1(&sample_verdict()); // legacy Some(1)
        p.truncate(p.len() - 10); // drop agrees + cache + seconds
        p.push(u8::from(multi.agrees));
        p.push(u8::from(multi.cache_hit));
        write_f64(&mut p, multi.seconds).unwrap();
        write_u32(&mut p, 2).unwrap();
        write_u32(&mut p, 0).unwrap();
        write_u32(&mut p, 1).unwrap();
        write_u32(&mut p, 0).unwrap(); // no confidences
        let bytes = raw_frame(2, 0x13, &p);
        match read_frame(&mut bytes.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("contradicts"), "{msg}"),
            other => panic!("inconsistent truth accepted: {other:?}"),
        }
    }

    #[test]
    fn partial_confidence_vectors_are_rejected() {
        // Confidences are all-or-nothing: one value for two classes is a
        // malformed frame, not a best-effort decode.
        let mut p = encode_verdict_v1(&sample_verdict());
        write_u32(&mut p, 1).unwrap();
        write_u32(&mut p, 1).unwrap(); // truth set {1}, matches legacy
        write_u32(&mut p, 1).unwrap(); // 1 confidence for 2 classes
        write_f64(&mut p, 3.2).unwrap();
        let bytes = raw_frame(2, 0x13, &p);
        match read_frame(&mut bytes.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("confidences"), "{msg}"),
            other => panic!("partial confidences accepted: {other:?}"),
        }
    }

    #[test]
    fn submit_with_zero_subset_is_rejected() {
        let frame = Frame::Submit(SubmitRequest {
            tag: 1,
            seed: 1,
            subset: 1,
            workers: 0,
            fast: false,
            bundle: vec![1, 2, 3],
        });
        let mut bytes = frame_to_bytes(&frame).unwrap();
        // Patch subset (offset 12 header + 16 tag/seed) to zero and redo
        // the checksum, leaving everything else intact.
        bytes[28..32].copy_from_slice(&0u32.to_le_bytes());
        let end = bytes.len() - 4;
        let mut crc = Crc32::new();
        crc.update(&bytes[6..end]);
        let digest = crc.finish().to_le_bytes();
        bytes[end..].copy_from_slice(&digest);
        match read_frame(&mut bytes.as_slice()) {
            Err(IoError::Format(msg)) => assert!(msg.contains("0 clean samples"), "{msg}"),
            other => panic!("zero subset accepted: {other:?}"),
        }
    }
}
