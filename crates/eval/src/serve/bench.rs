//! The serve-layer load generator: drives a daemon through the real
//! socket path with N concurrent closed-loop clients and reports verdict
//! latency percentiles plus saturation throughput — the numbers committed
//! to `BENCH_serve.json` next to the existing perf trajectory.

use super::client::{Client, ClientError, SubmitOptions};
use super::server::{ServeConfig, ServeStats, Server};
use crate::timing::LatencyStats;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Closed-loop requests per client in the measured phase.
    pub requests_per_client: usize,
    /// Use the reduced detector configuration per request.
    pub fast: bool,
    /// Inspection seed shared by every request (cache-friendly and
    /// deterministic — the workload is "many tenants re-screening the
    /// same model").
    pub seed: u64,
    /// Clean-subset size per request.
    pub subset: u32,
    /// Daemon worker threads per inspection (0 = auto).
    pub workers: usize,
    /// When set, also measure a cold-process baseline by timing
    /// `<binary> inspect <bundle> [--fast] --seed <seed>` end to end
    /// (process startup + bundle load + data regeneration + inspection).
    /// The CLI passes its own executable; library callers may skip it.
    pub cold_baseline: Option<PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 2,
            requests_per_client: 4,
            fast: true,
            seed: 3,
            subset: 48,
            workers: 0,
            cold_baseline: None,
        }
    }
}

/// What one load-generator run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Wall milliseconds of the cold `usb-repro inspect` subprocess
    /// baseline ([`COLD_PROCESS_RUNS`] run(s)), when a baseline binary was
    /// configured and the run succeeded.
    pub cold_process_ms: Option<f64>,
    /// First daemon request (cold resident cache: parse + regenerate).
    pub first_request_ms: f64,
    /// Warm-phase verdict latency across all clients.
    pub warm: LatencyStats,
    /// Verdicts per second over the measured phase (closed loop at
    /// `clients` concurrency — the saturation throughput of a serial
    /// scheduler whose jobs each own the whole worker pool).
    pub verdicts_per_sec: f64,
    /// Wall seconds of the measured phase.
    pub wall_seconds: f64,
    /// Daemon counters at the end of the run.
    pub stats: ServeStats,
    /// Echo of the configuration.
    pub clients: usize,
    /// Echo of the configuration.
    pub requests_per_client: usize,
}

/// Runs the full measurement against an in-process daemon bound to an
/// OS-assigned loopback port: cold-process baseline (optional), one
/// cold-cache request, then `clients × requests_per_client` warm
/// requests, each client a closed loop on its own connection.
///
/// # Errors
///
/// Any daemon/socket/verdict failure is reported as a string — the load
/// generator refuses to summarise a run whose requests did not all
/// succeed (and whose verdicts did not all agree with ground truth).
pub fn run_loadgen(
    bundle: &[u8],
    bundle_path: Option<&Path>,
    config: &LoadgenConfig,
    progress: impl Fn(&str),
) -> Result<LoadgenReport, String> {
    assert!(config.clients > 0, "loadgen needs at least one client");
    assert!(
        config.requests_per_client > 0,
        "loadgen needs at least one request per client"
    );
    let cold_process_ms = match (&config.cold_baseline, bundle_path) {
        (Some(binary), Some(path)) => {
            progress("timing cold `inspect` subprocess baseline...");
            Some(cold_inspect_ms(binary, path, config)?)
        }
        _ => None,
    };
    let serve_config = ServeConfig {
        workers: config.workers,
        max_pending: config.requests_per_client.max(16),
        ..ServeConfig::default()
    };
    let server = Server::start(("127.0.0.1", 0), serve_config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let opts = SubmitOptions {
        tag: 1,
        seed: config.seed,
        subset: config.subset,
        workers: 0,
        fast: config.fast,
    };

    // Cold resident cache: the first request pays parse + regeneration.
    let first_request_ms = {
        let mut client = client_for(addr)?;
        let t0 = Instant::now();
        let verdict = client
            .inspect(bundle, &opts, |_| {})
            .map_err(|e| format!("cold daemon request: {e}"))?;
        if !verdict.agrees {
            return Err(format!(
                "verdict disagrees with ground truth (flagged {:?}, truth {:?})",
                verdict.flagged, verdict.truth_targets
            ));
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    progress(&format!(
        "cold daemon request: {first_request_ms:.0} ms; starting {} clients x {} requests...",
        config.clients, config.requests_per_client
    ));

    // Warm phase: closed-loop clients, each on its own connection.
    let wall = Instant::now();
    let per_client: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let opts = SubmitOptions {
                    tag: (c as u64 + 1) << 32,
                    ..opts
                };
                scope.spawn(move || client_loop(addr, bundle, opts, config.requests_per_client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_seconds = wall.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    for r in per_client {
        latencies.extend(r?);
    }
    let stats = server.stop();
    let warm = LatencyStats::from_millis(&latencies);
    Ok(LoadgenReport {
        cold_process_ms,
        first_request_ms,
        warm,
        verdicts_per_sec: latencies.len() as f64 / wall_seconds,
        wall_seconds,
        stats,
        clients: config.clients,
        requests_per_client: config.requests_per_client,
    })
}

fn client_for(addr: std::net::SocketAddr) -> Result<Client, String> {
    let client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = client.set_read_timeout(Some(Duration::from_secs(600)));
    Ok(client)
}

fn client_loop(
    addr: std::net::SocketAddr,
    bundle: &[u8],
    base: SubmitOptions,
    requests: usize,
) -> Result<Vec<f64>, String> {
    let mut client = client_for(addr)?;
    let mut out = Vec::with_capacity(requests);
    for i in 0..requests {
        let opts = SubmitOptions {
            tag: base.tag + i as u64,
            ..base
        };
        let t0 = Instant::now();
        let verdict = client
            .inspect(bundle, &opts, |_| {})
            .map_err(|e: ClientError| format!("request {i}: {e}"))?;
        if !verdict.agrees {
            return Err(format!("request {i}: verdict disagrees with ground truth"));
        }
        if !verdict.cache_hit {
            return Err(format!(
                "request {i}: warm-phase request missed the resident cache"
            ));
        }
        out.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    Ok(out)
}

/// Cold `inspect` subprocess runs folded into the baseline. Exactly one:
/// the number is an order-of-magnitude contrast against the warm daemon
/// path (seconds vs milliseconds), so repeat runs buy noise reduction the
/// comparison does not need at 2–3 subprocess-seconds apiece. The run
/// count is recorded in the json (`cold_process_runs`) so the label and
/// the measurement can never drift apart again.
pub const COLD_PROCESS_RUNS: usize = 1;

/// Wall time of [`COLD_PROCESS_RUNS`] cold `inspect` subprocess run(s) —
/// the per-run value (their median, trivially the value itself at one
/// run). This is the baseline the warm path is compared against.
fn cold_inspect_ms(
    binary: &Path,
    bundle_path: &Path,
    config: &LoadgenConfig,
) -> Result<f64, String> {
    let mut runs = Vec::with_capacity(COLD_PROCESS_RUNS);
    for _ in 0..COLD_PROCESS_RUNS {
        let mut cmd = std::process::Command::new(binary);
        cmd.arg("inspect")
            .arg(bundle_path)
            .arg("--seed")
            .arg(config.seed.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if config.fast {
            cmd.arg("--fast");
        }
        let t0 = Instant::now();
        let status = cmd
            .status()
            .map_err(|e| format!("spawning {}: {e}", binary.display()))?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if !status.success() {
            return Err(format!(
                "cold `inspect` baseline exited with {status} — the bundle must inspect cleanly"
            ));
        }
        runs.push(ms);
    }
    runs.sort_by(|a, b| a.total_cmp(b));
    Ok(runs[runs.len() / 2])
}

/// Serialises a [`LoadgenReport`] as the `BENCH_serve.json` document
/// (schema `usb-serve/1`), hand-rolled like `usb_eval::timing`'s
/// `BENCH.json` — no serde in this workspace.
pub fn loadgen_json(report: &LoadgenReport) -> String {
    let cold = match report.cold_process_ms {
        Some(ms) => format!("{ms:.3}"),
        None => "null".to_owned(),
    };
    let w = &report.warm;
    let s = &report.stats;
    format!(
        "{{\"schema\":\"usb-serve/1\",\"experiment\":\"loadgen\",\
         \"clients\":{},\"requests_per_client\":{},\"workers\":{},\
         \"kernel\":\"{}\",\
         \"cold_process_ms\":{cold},\"cold_process_runs\":{},\
         \"first_request_ms\":{:.3},\
         \"warm_ms\":{{\"n\":{},\"mean\":{:.3},\"min\":{:.3},\"p50\":{:.3},\
         \"p90\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
         \"verdicts_per_sec\":{:.4},\"wall_seconds\":{:.3},\
         \"server\":{{\"connections\":{},\"accepted\":{},\"completed\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"resident_models\":{}}}}}\n",
        report.clients,
        report.requests_per_client,
        usb_tensor::par::worker_threads(),
        usb_tensor::kernels::tier_name(),
        COLD_PROCESS_RUNS,
        report.first_request_ms,
        w.n,
        w.mean_ms,
        w.min_ms,
        w.p50_ms,
        w.p90_ms,
        w.p99_ms,
        w.max_ms,
        report.verdicts_per_sec,
        report.wall_seconds,
        s.connections,
        s.accepted,
        s.completed,
        s.cache_hits,
        s.cache_misses,
        s.resident_models,
    )
}

/// Renders the human-facing summary `usb-repro loadgen` prints.
pub fn format_loadgen(report: &LoadgenReport) -> String {
    let mut out = String::new();
    out.push_str("=== serve loadgen ===\n");
    if let Some(cold) = report.cold_process_ms {
        out.push_str(&format!(
            "cold `inspect` process     {cold:>9.0} ms  (single run: startup + load + datagen + inspect)\n"
        ));
    }
    out.push_str(&format!(
        "cold daemon request        {:>9.0} ms  (resident cache miss)\n",
        report.first_request_ms
    ));
    let w = &report.warm;
    out.push_str(&format!(
        "warm daemon requests       p50 {:.0} ms / p90 {:.0} ms / p99 {:.0} ms (n={}, mean {:.0} ms)\n",
        w.p50_ms, w.p90_ms, w.p99_ms, w.n, w.mean_ms
    ));
    out.push_str(&format!(
        "throughput                 {:.2} verdicts/s over {:.1} s ({} clients x {} requests)\n",
        report.verdicts_per_sec, report.wall_seconds, report.clients, report.requests_per_client
    ));
    let s = &report.stats;
    out.push_str(&format!(
        "server                     {} conns, {} accepted, {} completed, cache {}/{} hit, {} resident\n",
        s.connections,
        s.accepted,
        s.completed,
        s.cache_hits,
        s.cache_hits + s.cache_misses,
        s.resident_models
    ));
    if let Some(cold) = report.cold_process_ms {
        if w.p50_ms > 0.0 {
            out.push_str(&format!(
                "warm speedup vs cold       {:.2}x at p50\n",
                cold / w.p50_ms
            ));
        }
    }
    out
}
