//! Inspection-as-a-service: the resident daemon behind `usb-repro
//! serve`, its wire protocol, client library, and load generator.
//!
//! Every `usb-repro inspect` pays process startup, bundle load, and
//! dataset regeneration before a single class is scanned. The serve
//! layer keeps one warm engine resident — hot models in a bounded LRU,
//! the clone-free shared-`&Network` inspection pool already built in
//! PRs 4–6 — and lets many tenants stream USBV bundles at it over TCP:
//!
//! * [`proto`] — the USBP frame format (versioned, CRC'd, fuzz-hardened
//!   like every `PERSISTENCE.md` record);
//! * [`server`] — accept/reader/scheduler threads, fair round-robin
//!   queueing across connections, admission control, the resident-model
//!   cache;
//! * [`client`] — the blocking client used by `usb-repro submit`, the
//!   tests, and the load generator;
//! * [`mod@bench`] — the `loadgen` harness measuring p50/p99 verdict latency
//!   and verdicts/sec, serialised to `BENCH_serve.json`.
//!
//! Verdicts over the socket are **bit-identical** to offline `usb-repro
//! inspect` with the same seed: the daemon replays the exact offline
//! pipeline (seeded rng → clean subset → per-class rng streams) against
//! the cached model, and `tests/determinism.rs` pins warm, cold, and
//! offline against each other at 1/2/4 workers.

pub mod bench;
pub mod client;
pub mod proto;
pub mod server;

pub use bench::{format_loadgen, loadgen_json, run_loadgen, LoadgenConfig, LoadgenReport};
pub use client::{Client, ClientError, SubmitOptions};
pub use proto::{Frame, ProgressEvent, SubmitRequest, WireVerdict};
pub use server::{ServeConfig, ServeStats, Server};
