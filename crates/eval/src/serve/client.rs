//! Client side of the USBP protocol: a thin blocking connection used by
//! `usb-repro submit`, the load generator, and every serve test — all of
//! them drive the real socket path, not an in-process shortcut.

use super::proto::{read_frame, write_frame, Frame, ProgressEvent, SubmitRequest, WireVerdict};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use usb_tensor::io::IoError;

/// What went wrong with a request, as seen by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Io(IoError),
    /// The server answered with an error frame.
    Server {
        /// The error frame's correlation tag (0 when connection-level).
        tag: u64,
        /// The error frame's job id (0 when none was assigned).
        job: u64,
        /// The server's message.
        message: String,
    },
    /// The server sent a frame that makes no sense at this point of the
    /// exchange.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { tag, job, message } => {
                write!(f, "server error (tag {tag}, job {job}): {message}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<IoError> for ClientError {
    fn from(e: IoError) -> Self {
        ClientError::Io(e)
    }
}

/// Options accompanying a submission (everything but the bundle bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Client-chosen correlation tag echoed by the server.
    pub tag: u64,
    /// Inspection seed (`usb-repro inspect` defaults to 3).
    pub seed: u64,
    /// Clean images to draw (`usb-repro inspect` uses 48).
    pub subset: u32,
    /// Per-class worker threads; 0 inherits the server default.
    pub workers: u32,
    /// Use the reduced detector configuration.
    pub fast: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            tag: 1,
            seed: 3,
            subset: 48,
            workers: 0,
            fast: false,
        }
    }
}

/// A blocking client connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sets a read timeout so a wedged daemon cannot hang the client
    /// forever (tests use this to turn a hang into a failure).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::Ping)?;
        match read_frame(&mut self.stream)? {
            Frame::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Sends a submission without waiting for anything — callers drive
    /// the event stream themselves with [`Client::next_frame`] (the soak
    /// test queues several jobs per connection this way).
    pub fn submit(&mut self, bundle: &[u8], opts: &SubmitOptions) -> Result<(), ClientError> {
        let req = SubmitRequest {
            tag: opts.tag,
            seed: opts.seed,
            subset: opts.subset,
            workers: opts.workers,
            fast: opts.fast,
            bundle: bundle.to_vec(),
        };
        write_frame(&mut self.stream, &Frame::Submit(req))?;
        Ok(())
    }

    /// Reads the next server frame.
    pub fn next_frame(&mut self) -> Result<Frame, ClientError> {
        read_frame(&mut self.stream).map_err(ClientError::from)
    }

    /// Submits a bundle and blocks until its verdict, invoking
    /// `on_progress` for every per-class event along the way.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the daemon answers this request with
    /// an error frame (admission rejection, unparseable bundle, shutdown
    /// drain), [`ClientError::Io`]/[`ClientError::Protocol`] on transport
    /// or sequencing violations.
    pub fn inspect(
        &mut self,
        bundle: &[u8],
        opts: &SubmitOptions,
        mut on_progress: impl FnMut(&ProgressEvent),
    ) -> Result<WireVerdict, ClientError> {
        self.submit(bundle, opts)?;
        let mut job_id: Option<u64> = None;
        loop {
            match self.next_frame()? {
                Frame::Accepted { tag, job, .. } if tag == opts.tag => job_id = Some(job),
                Frame::Progress(ev) if Some(ev.job) == job_id => on_progress(&ev),
                Frame::Verdict(v) if Some(v.job) == job_id => return Ok(v),
                Frame::Error { tag, job, message }
                    if tag == opts.tag || (job != 0 && Some(job) == job_id) || tag == 0 =>
                {
                    return Err(ClientError::Server { tag, job, message });
                }
                // Frames for other in-flight jobs on a shared connection
                // are not ours to consume — but a single-request helper
                // has no owner for them, so sequencing is broken.
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame while waiting for tag {}: {other:?}",
                        opts.tag
                    )))
                }
            }
        }
    }

    /// Asks the daemon to shut down and waits for the acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &Frame::Shutdown)?;
        match read_frame(&mut self.stream)? {
            Frame::ShutdownAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected ShutdownAck, got {other:?}"
            ))),
        }
    }
}
