//! The resident inspection daemon: accepts USBV bundles over TCP,
//! schedules inspections fairly across client connections, keeps hot
//! models resident, and streams progress + verdicts back.
//!
//! # Thread model
//!
//! * one **accept** thread handing connections off to per-connection
//!   reader threads;
//! * one **reader** thread per connection parsing frames, answering pings
//!   inline, and enqueueing submissions (admission control happens here,
//!   before a job exists);
//! * one **scheduler** thread draining the queues in round-robin order
//!   across connections and running one inspection at a time — the
//!   inspection itself fans its classes out over the
//!   [`usb_tensor::par`] worker pool, so the machine is saturated by
//!   parallelism *inside* a job, and verdict latency stays predictable
//!   under load instead of every tenant's job thrashing every other's.
//!
//! Responses are written through a per-connection `Mutex<TcpStream>`
//! shared by the reader (acks, errors) and the scheduler's progress
//! callbacks (which run on inspection worker threads). Writes to a dead
//! client are dropped silently; the inspection still completes and the
//! resident cache still warms.
//!
//! # Scheduler states
//!
//! A submission moves through: **admitted** (reader thread, passed the
//! per-connection pending cap) → **queued** (in its connection's FIFO) →
//! **running** (popped by the round-robin scan) → **answered** (verdict
//! or error frame written). A connection that disconnects drops its
//! queued jobs; the running job, if any, finishes and its write fails
//! silently.
//!
//! # Resident-model cache
//!
//! The scheduler owns a bounded LRU keyed by the bundle's content
//! fingerprint ([`usb_attacks::persist::bundle_fingerprint`]). A hit
//! skips bundle parsing *and* dataset regeneration — the dominant
//! non-inspection costs — and is what makes a warm daemon answer faster
//! than a cold `usb-repro inspect` process. The cache is **byte**-budgeted
//! ([`ServeConfig::cache_bytes`], CLI `--cache-mb`): each entry is charged
//! its actual resident footprint (model tensors + quantized payloads +
//! regenerated dataset), and admitting a new entry evicts
//! least-recently-used entries until the total fits. Quantized bundles
//! therefore pack proportionally more residents into the same budget with
//! no flag change. One entry is always admitted even if it alone exceeds
//! the budget — a daemon that cannot hold its working model would answer
//! nothing. Memory stays bounded no matter how many distinct bundles a
//! tenant streams in (pinned by the counting-allocator soak test).

use super::proto::{
    read_frame_or_eof, verdict_from_outcome, write_frame, Frame, ProgressEvent, SubmitRequest,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use usb_attacks::persist::{bundle_fingerprint, read_victim_bytes, VictimBundle};
use usb_core::{UsbConfig, UsbDetector};
use usb_data::Dataset;
use usb_tensor::io::IoError;

/// Hard cap on the per-request clean-subset size (fresh samples are drawn
/// per request, so this bounds per-job memory, not verdict quality).
pub const MAX_SUBSET: u32 = 4096;

/// Daemon configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Default worker threads per inspection (0 = auto, like
    /// `UsbConfig::workers`); a submission's non-zero `workers` field
    /// overrides it for that job.
    pub workers: usize,
    /// Admission cap: queued + running jobs allowed per connection.
    pub max_pending: usize,
    /// Resident-model cache budget in bytes (model + dataset footprint of
    /// every warm bundle). At least one entry is always kept.
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            max_pending: 16,
            cache_bytes: 64 << 20,
        }
    }
}

/// A point-in-time snapshot of the daemon's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Submissions that passed admission control.
    pub accepted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs answered with a verdict.
    pub completed: u64,
    /// Jobs answered with an error (unparseable bundle, shutdown, ...).
    pub failed: u64,
    /// Malformed frames / protocol violations observed.
    pub protocol_errors: u64,
    /// Jobs served from the resident-model cache.
    pub cache_hits: u64,
    /// Jobs that had to parse + regenerate from scratch.
    pub cache_misses: u64,
    /// Models currently resident in the cache.
    pub resident_models: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    protocol_errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    resident_models: AtomicU64,
}

type SharedWriter = Arc<Mutex<TcpStream>>;

/// Best-effort frame write: a dead client must never take the daemon or
/// another tenant's job down with it.
fn send(writer: &SharedWriter, frame: &Frame) -> bool {
    let mut guard = match writer.lock() {
        Ok(g) => g,
        Err(_) => return false,
    };
    write_frame(&mut *guard, frame).is_ok()
}

struct Job {
    conn: u64,
    job: u64,
    req: SubmitRequest,
    writer: SharedWriter,
}

struct ConnQueue {
    conn: u64,
    queued: VecDeque<Job>,
    running: usize,
}

#[derive(Default)]
struct SchedState {
    queues: Vec<ConnQueue>,
    /// Round-robin cursor into `queues`; the next scan starts here so no
    /// connection is drained ahead of its peers.
    cursor: usize,
}

impl SchedState {
    fn entry(&mut self, conn: u64) -> Option<&mut ConnQueue> {
        self.queues.iter_mut().find(|q| q.conn == conn)
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.queued.len()).sum()
    }

    /// Pops the next job in round-robin order across connections.
    fn pop_fair(&mut self) -> Option<Job> {
        if self.queues.is_empty() {
            return None;
        }
        let n = self.queues.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(job) = self.queues[i].queued.pop_front() {
                self.queues[i].running += 1;
                self.cursor = (i + 1) % n;
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    config: ServeConfig,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    stopping: AtomicBool,
    stop_flag: Mutex<bool>,
    stop_cv: Condvar,
    counters: Counters,
    next_job: AtomicU64,
    next_conn: AtomicU64,
    /// Read-half clones of every live connection, shut down on stop so
    /// blocked reader threads unblock.
    conn_streams: Mutex<Vec<(u64, TcpStream)>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    addr: SocketAddr,
}

impl Shared {
    fn begin_stop(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.work_ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock every reader parked in a frame read.
        if let Ok(conns) = self.conn_streams.lock() {
            for (_, s) in conns.iter() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Ok(mut flag) = self.stop_flag.lock() {
            *flag = true;
            self.stop_cv.notify_all();
        }
    }

    fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            connections: c.connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            resident_models: c.resident_models.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Resident-model cache (owned by the scheduler thread)
// ---------------------------------------------------------------------

struct Resident {
    key: u64,
    bundle: VictimBundle,
    data: Dataset,
    /// This entry's charge against the byte budget, computed once at
    /// admission (bundles are immutable while resident).
    bytes: usize,
    last_used: u64,
}

struct ResidentCache {
    budget_bytes: usize,
    entries: Vec<Resident>,
    resident_bytes: usize,
    tick: u64,
}

impl ResidentCache {
    fn new(budget_bytes: usize) -> Self {
        ResidentCache {
            budget_bytes: budget_bytes.max(1),
            entries: Vec::new(),
            resident_bytes: 0,
            tick: 0,
        }
    }

    /// Looks the bundle up by content fingerprint, parsing and
    /// regenerating on a miss. Returns the resident entry index and
    /// whether it was a hit. Admission evicts least-recently-used entries
    /// until the new entry's footprint fits the byte budget; the new entry
    /// itself is always admitted (a budget smaller than one model still
    /// keeps that model, just nothing else).
    fn get(&mut self, bytes: &[u8]) -> Result<(usize, bool), IoError> {
        self.tick += 1;
        let key = bundle_fingerprint(bytes);
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            self.entries[i].last_used = self.tick;
            return Ok((i, true));
        }
        let mut bundle = read_victim_bytes(bytes)?;
        let data = bundle.data_spec.generate(bundle.data_seed);
        let footprint = bundle.victim.model.resident_bytes() + data.resident_bytes();
        while !self.entries.is_empty() && self.resident_bytes + footprint > self.budget_bytes {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.resident_bytes -= self.entries[lru].bytes;
            self.entries.swap_remove(lru);
        }
        self.resident_bytes += footprint;
        self.entries.push(Resident {
            key,
            bundle,
            data,
            bytes: footprint,
            last_used: self.tick,
        });
        Ok((self.entries.len() - 1, false))
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A running daemon instance.
///
/// Bind with [`Server::start`] (use port 0 to let the OS pick — tests
/// do), retrieve the bound address via [`Server::local_addr`], and stop
/// with [`Server::stop`], which joins every thread. Dropping without
/// `stop` leaks the threads until process exit; the CLI path instead
/// parks in [`Server::wait`] until a client sends a `Shutdown` frame.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    sched: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and spawns the accept + scheduler threads.
    pub fn start(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(SchedState::default()),
            work_ready: Condvar::new(),
            stopping: AtomicBool::new(false),
            stop_flag: Mutex::new(false),
            stop_cv: Condvar::new(),
            counters: Counters::default(),
            next_job: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            conn_streams: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            addr: local,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let sched = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            sched: Some(sched),
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Blocks until a client requests shutdown (or [`Server::stop`] is
    /// called from another thread).
    pub fn wait(&self) {
        let mut flag = self
            .shared
            .stop_flag
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = self
                .shared
                .stop_cv
                .wait(flag)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops the daemon and joins every thread. Queued jobs receive an
    /// error frame; the running job (if any) completes first.
    pub fn stop(mut self) -> ServeStats {
        self.shutdown_and_join();
        self.shared.stats()
    }

    fn shutdown_and_join(&mut self) {
        self.shared.begin_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sched.take() {
            let _ = h.join();
        }
        let readers: Vec<JoinHandle<()>> = {
            let mut guard = self
                .shared
                .readers
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let read_half = match stream.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        if let Ok(mut conns) = shared.conn_streams.lock() {
            conns.push((conn, read_half));
        }
        {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.queues.push(ConnQueue {
                conn,
                queued: VecDeque::new(),
                running: 0,
            });
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || connection_loop(conn, stream, &shared))
        };
        if let Ok(mut readers) = shared.readers.lock() {
            readers.push(handle);
        }
    }
}

fn connection_loop(conn: u64, stream: TcpStream, shared: &Arc<Shared>) {
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        match read_frame_or_eof(&mut reader) {
            Ok(None) => break,
            Ok(Some(Frame::Ping)) => {
                send(&writer, &Frame::Pong);
            }
            Ok(Some(Frame::Submit(req))) => handle_submit(conn, req, &writer, shared),
            Ok(Some(Frame::Shutdown)) => {
                send(&writer, &Frame::ShutdownAck);
                shared.begin_stop();
                break;
            }
            Ok(Some(other)) => {
                // A client sending server-to-client frames is a protocol
                // violation: answer once, then hang up on it.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send(
                    &writer,
                    &Frame::Error {
                        tag: 0,
                        job: 0,
                        message: format!("unexpected client frame {other:?}"),
                    },
                );
                break;
            }
            Err(IoError::Format(msg)) => {
                // Malformed frame: report on the connection if the socket
                // still accepts writes, then close *this* connection only.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send(
                    &writer,
                    &Frame::Error {
                        tag: 0,
                        job: 0,
                        message: format!("malformed frame: {msg}"),
                    },
                );
                break;
            }
            Err(IoError::Io(_)) => break,
        }
    }
    disconnect(conn, shared);
}

/// Removes a connection's queue (dropping its not-yet-running jobs) and
/// its stream registration.
fn disconnect(conn: u64, shared: &Arc<Shared>) {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = state.queues.iter().position(|q| q.conn == conn) {
        state.queues.swap_remove(i);
        if state.cursor >= state.queues.len() {
            state.cursor = 0;
        }
    }
    drop(state);
    if let Ok(mut conns) = shared.conn_streams.lock() {
        conns.retain(|(c, _)| *c != conn);
    }
}

/// Admission control + enqueue, on the reader thread: a request is
/// rejected with an error frame (echoing its tag) when the connection
/// already has `max_pending` jobs in flight, when the whole daemon's
/// queue is saturated, or when the request is structurally implausible.
/// Otherwise it gets a job id, an `Accepted` frame, and a queue slot.
fn handle_submit(conn: u64, req: SubmitRequest, writer: &SharedWriter, shared: &Arc<Shared>) {
    let reject = |message: String| {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        send(
            writer,
            &Frame::Error {
                tag: req.tag,
                job: 0,
                message,
            },
        );
    };
    if shared.stopping.load(Ordering::SeqCst) {
        reject("server is shutting down".to_owned());
        return;
    }
    if req.subset > MAX_SUBSET {
        reject(format!(
            "subset {} exceeds the per-request cap {MAX_SUBSET}",
            req.subset
        ));
        return;
    }
    if req.bundle.is_empty() {
        reject("submission carries an empty bundle".to_owned());
        return;
    }
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    // Global backpressure: bound total queued work across all tenants.
    let global_cap = shared.config.max_pending.saturating_mul(16).max(64);
    if state.total_queued() >= global_cap {
        drop(state);
        reject(format!("server queue is full ({global_cap} jobs)"));
        return;
    }
    let queue_depth = state.total_queued() as u32;
    let Some(entry) = state.entry(conn) else {
        drop(state);
        reject("connection is no longer registered".to_owned());
        return;
    };
    if entry.queued.len() + entry.running >= shared.config.max_pending {
        let cap = shared.config.max_pending;
        drop(state);
        reject(format!("connection already has {cap} jobs pending"));
        return;
    }
    let job = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let tag = req.tag;
    entry.queued.push_back(Job {
        conn,
        job,
        req,
        writer: Arc::clone(writer),
    });
    drop(state);
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    send(
        writer,
        &Frame::Accepted {
            tag,
            job,
            queue_depth,
        },
    );
    shared.work_ready.notify_all();
}

fn scheduler_loop(shared: &Arc<Shared>) {
    let mut cache = ResidentCache::new(shared.config.cache_bytes);
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.pop_fair() {
                    break Some(job);
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { break };
        let answer = run_job(&job, &mut cache, shared);
        // Release the job's admission slot *before* answering: a client
        // that resubmits the moment it sees the verdict must not bounce
        // off its own still-occupied `running` count.
        {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = state.entry(job.conn) {
                entry.running = entry.running.saturating_sub(1);
            }
        }
        send(&job.writer, &answer);
    }
    // Drain: everything still queued gets a clean refusal, not silence.
    let leftovers: Vec<Job> = {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state
            .queues
            .iter_mut()
            .flat_map(|q| q.queued.drain(..))
            .collect()
    };
    for job in leftovers {
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
        send(
            &job.writer,
            &Frame::Error {
                tag: job.req.tag,
                job: job.job,
                message: "server shut down before the job ran".to_owned(),
            },
        );
    }
}

/// Runs one inspection end to end, streaming progress on the job's
/// connection, and returns the final answer frame (verdict or error) for
/// the scheduler to deliver once the admission slot is released.
///
/// The verdict path is byte-for-byte the offline `usb-repro inspect`
/// pipeline: seed the rng, draw the clean subset, run the detector with
/// per-class rng streams. Cache hits skip bundle parsing and dataset
/// regeneration but change none of those inputs, so warm and cold
/// verdicts are bit-identical — the cross-socket determinism suite pins
/// this.
fn run_job(job: &Job, cache: &mut ResidentCache, shared: &Arc<Shared>) -> Frame {
    let t0 = Instant::now();
    let (slot, hit) = match cache.get(&job.req.bundle) {
        Ok(pair) => pair,
        Err(e) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            return Frame::Error {
                tag: job.req.tag,
                job: job.job,
                message: format!("bundle rejected: {e}"),
            };
        }
    };
    let counter = if hit {
        &shared.counters.cache_hits
    } else {
        &shared.counters.cache_misses
    };
    counter.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .resident_models
        .store(cache.entries.len() as u64, Ordering::Relaxed);
    let resident = &cache.entries[slot];
    let model = &resident.bundle.victim.model;
    let workers = if job.req.workers > 0 {
        job.req.workers as usize
    } else {
        shared.config.workers
    };
    let config = if job.req.fast {
        UsbConfig::fast()
    } else {
        UsbConfig::standard()
    };
    let detector = UsbDetector::new(config.with_workers(workers));
    let mut rng = StdRng::seed_from_u64(job.req.seed);
    let (clean_x, _) = resident
        .data
        .clean_subset(job.req.subset as usize, &mut rng);
    let total = model.num_classes() as u32;
    let done = AtomicU32::new(0);
    let outcome = detector.inspect_with_progress(model, &clean_x, &mut rng, |class_result| {
        let classes_done = done.fetch_add(1, Ordering::SeqCst) + 1;
        send(
            &job.writer,
            &Frame::Progress(ProgressEvent {
                job: job.job,
                class: class_result.class as u32,
                classes_done,
                classes_total: total,
                l1_norm: class_result.l1_norm,
                attack_success: class_result.attack_success,
            }),
        );
    });
    let truth: Vec<u32> = resident
        .bundle
        .victim
        .targets()
        .into_iter()
        .map(|t| t as u32)
        .collect();
    let verdict = verdict_from_outcome(job.job, &outcome, &truth, hit, t0.elapsed().as_secs_f64());
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    Frame::Verdict(verdict)
}
