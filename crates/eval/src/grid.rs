//! The experiment grid: dataset × architecture × attack × defense, scored
//! with the paper's Model Detection / Target Class Detection metrics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_attacks::{
    train_clean_victim, Attack, BadNet, IadAttack, LatentBackdoor, MultiBadNet, Victim,
};
use usb_core::{UsbConfig, UsbDetector};
use usb_data::SyntheticSpec;
use usb_defenses::{
    score_outcome, Defense, NcConfig, NeuralCleanse, Tabor, TaborConfig, TargetClassCall, Ulp,
    UlpConfig,
};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;
use usb_tensor::par;

/// Which attack (if any) a case trains its victims with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackChoice {
    /// Un-backdoored control models.
    Clean,
    /// BadNet with the given square trigger size.
    BadNet {
        /// Patch side length in pixels.
        trigger: usize,
    },
    /// Latent backdoor with the given square trigger size.
    Latent {
        /// Patch side length in pixels.
        trigger: usize,
    },
    /// Input-aware dynamic backdoor (full-image trigger).
    Iad,
    /// Several simultaneous all-to-one backdoors, one patch trigger per
    /// target class, implanted in a single poisoned training run.
    MultiBadNet {
        /// Patch side length in pixels.
        trigger: usize,
        /// Number of simultaneous target classes (clamped to the dataset's
        /// class count at training time).
        targets: usize,
    },
    /// Single-target blended trigger: a full-image random pattern alpha-mixed
    /// into the input under a low `L∞` budget.
    Blended {
        /// Blend ratio in `(0, 1)`; also the per-pixel `L∞` budget.
        alpha: f32,
    },
}

impl AttackChoice {
    fn label(&self) -> String {
        match self {
            AttackChoice::Clean => "Clean".to_owned(),
            AttackChoice::BadNet { trigger } => {
                format!("Backdoored ({trigger}x{trigger} trigger)")
            }
            AttackChoice::Latent { trigger } => {
                format!("Latent Backdoor ({trigger}x{trigger} trigger)")
            }
            AttackChoice::Iad => "Input Aware Dynamic (full-image trigger)".to_owned(),
            AttackChoice::MultiBadNet { trigger, targets } => {
                format!("Multi-target Backdoored ({targets} targets, {trigger}x{trigger} trigger)")
            }
            AttackChoice::Blended { alpha } => {
                format!("Blended Backdoored (alpha {alpha})")
            }
        }
    }
}

/// One row group of a paper table: an attack setting evaluated over several
/// independently trained models.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// The attack to train victims with.
    pub attack: AttackChoice,
    /// Poison rate for poisoning attacks.
    pub poison_rate: f64,
}

/// A full table specification.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Identifier ("table1" ...).
    pub id: &'static str,
    /// Human-readable description printed above the table.
    pub title: String,
    /// Dataset family (already scaled for CPU).
    pub dataset: SyntheticSpec,
    /// Victim architecture family.
    pub model: ModelKind,
    /// Width multiplier for the victims.
    pub width: usize,
    /// Victim training schedule.
    pub train: TrainConfig,
    /// The attack cases (rows).
    pub cases: Vec<CaseSpec>,
    /// Clean samples handed to every defense.
    pub defense_samples: usize,
}

impl TableSpec {
    /// The victim architecture for this table.
    pub fn arch(&self) -> Architecture {
        let input = (
            self.dataset.channels,
            self.dataset.height,
            self.dataset.width,
        );
        Architecture::new(self.model, input, self.dataset.num_classes).with_width(self.width)
    }
}

/// Aggregated detection counts for one (case, defense) cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MethodCell {
    /// Defense name.
    pub method: &'static str,
    /// Mean reported reversed-trigger L1 norm.
    pub mean_l1: f64,
    /// Models called clean.
    pub called_clean: usize,
    /// Models called backdoored.
    pub called_backdoored: usize,
    /// Backdoored models with exactly the true target flagged.
    pub correct: usize,
    /// Backdoored models with a flagged set containing the true target.
    pub correct_set: usize,
    /// Backdoored models flagged with wrong classes only.
    pub wrong: usize,
    /// Total wall-clock seconds spent in this defense. Unlike every other
    /// field, this is *elapsed* time: when the grid runs victims in
    /// parallel it includes contention from sibling models, so it varies
    /// with the thread count (use `usb_eval::timing` for contention-free
    /// per-class numbers).
    pub seconds: f64,
}

/// Results for one case (row group).
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Row label as in the paper ("Clean", "Backdoored (2x2 trigger)", ...).
    pub label: String,
    /// Mean clean accuracy over the trained victims.
    pub mean_accuracy: f64,
    /// Mean attack success rate (0 for clean cases).
    pub mean_asr: f64,
    /// Number of victims trained.
    pub models: usize,
    /// One cell per defense, in the order the defenses were passed.
    pub cells: Vec<MethodCell>,
}

/// A completed table.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table id.
    pub id: &'static str,
    /// Table title.
    pub title: String,
    /// One report per case.
    pub cases: Vec<CaseReport>,
}

/// The set of defenses a table runs, with their full configurations.
pub struct DefenseSuite {
    /// Neural Cleanse.
    pub nc: NeuralCleanse,
    /// TABOR.
    pub tabor: Tabor,
    /// Universal Soldier.
    pub usb: UsbDetector,
    /// Universal Litmus Patterns.
    pub ulp: Ulp,
}

impl DefenseSuite {
    /// Full-strength configurations (the experiment default).
    pub fn standard() -> Self {
        DefenseSuite {
            nc: NeuralCleanse::new(NcConfig::standard()),
            tabor: Tabor::new(TaborConfig::standard()),
            usb: UsbDetector::new(UsbConfig::standard()),
            ulp: Ulp::new(UlpConfig::standard()),
        }
    }

    /// Reduced configurations (CI / smoke runs).
    pub fn fast() -> Self {
        DefenseSuite {
            nc: NeuralCleanse::fast(),
            tabor: Tabor::fast(),
            usb: UsbDetector::fast(),
            ulp: Ulp::fast(),
        }
    }
}

/// Trains one victim for `case` with the table's settings.
pub fn train_victim(spec: &TableSpec, case: &CaseSpec, seed: u64) -> Victim {
    let data = spec.dataset.generate(seed);
    let arch = spec.arch();
    let target = (seed as usize) % spec.dataset.num_classes;
    match case.attack {
        AttackChoice::Clean => train_clean_victim(&data, arch, spec.train, seed),
        AttackChoice::BadNet { trigger } => {
            BadNet::new(trigger, target, case.poison_rate).execute(&data, arch, spec.train, seed)
        }
        AttackChoice::Latent { trigger } => LatentBackdoor::new(trigger, target, case.poison_rate)
            .execute(&data, arch, spec.train, seed),
        AttackChoice::Iad => IadAttack::new(target).execute(&data, arch, spec.train, seed),
        AttackChoice::MultiBadNet { trigger, targets } => {
            let k = spec.dataset.num_classes;
            let count = targets.min(k);
            let classes: Vec<usize> = (0..count).map(|i| (target + i) % k).collect();
            MultiBadNet::new(trigger, classes, case.poison_rate)
                .execute(&data, arch, spec.train, seed)
        }
        AttackChoice::Blended { alpha } => MultiBadNet::new(2, vec![target], case.poison_rate)
            .with_blend(alpha)
            .execute(&data, arch, spec.train, seed),
    }
}

/// Everything one victim contributes to its case's aggregates: accuracy,
/// ASR, and per-defense `(seconds, reported L1, verdict)` in suite order.
struct ModelRun {
    accuracy: f64,
    asr: f64,
    per_defense: Vec<(f64, f64, usb_defenses::ModelVerdict)>,
}

/// Trains and inspects one victim of a case (the per-model unit of work the
/// grid fans out over worker threads).
fn run_model(
    spec: &TableSpec,
    case: &CaseSpec,
    seed: u64,
    m: usize,
    models_per_case: usize,
    suite: &DefenseSuite,
    progress: &(impl Fn(&str) + Sync),
) -> ModelRun {
    let victim = train_victim(spec, case, seed);
    progress(&format!(
        "[{}] case '{}' model {}/{}: acc {:.2} asr {:.2}",
        spec.id,
        case.attack.label(),
        m + 1,
        models_per_case,
        victim.clean_accuracy,
        victim.asr()
    ));
    let data = spec.dataset.generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdefe_15e5);
    let (clean_x, _) = data.clean_subset(spec.defense_samples, &mut rng);
    let truth = victim.targets();
    // ULP must come LAST: it never consumes the shared rng, so appending it
    // keeps the NC/TABOR/USB random streams (and thus all seed-tuned
    // results) byte-identical to the three-defense grid.
    let defenses: [&dyn Defense; 4] = [&suite.nc, &suite.tabor, &suite.usb, &suite.ulp];
    let mut per_defense = Vec::with_capacity(defenses.len());
    for defense in defenses {
        let t0 = std::time::Instant::now();
        let outcome = defense.inspect(&victim.model, &clean_x, &mut rng);
        let dt = t0.elapsed().as_secs_f64();
        let verdict = score_outcome(&outcome, &truth);
        per_defense.push((dt, outcome.reported_l1(), verdict));
        progress(&format!(
            "[{}]   {} -> {} (flagged {:?}, L1 {:.2}, {:.1}s)",
            spec.id,
            defense.name(),
            if verdict.called_backdoored {
                "backdoored"
            } else {
                "clean"
            },
            outcome.flagged,
            outcome.reported_l1(),
            dt
        ));
    }
    ModelRun {
        accuracy: victim.clean_accuracy,
        asr: victim.asr(),
        per_defense,
    }
}

/// Runs a full table: `models_per_case` victims per case, all four
/// defenses on each, scored and aggregated.
///
/// The victims of a case run **in parallel** on the [`usb_tensor::par`]
/// worker pool (`USB_THREADS` / available parallelism): every model's
/// training and inspection seeds are fixed functions of its case and model
/// index, so the per-model work is fully independent and the aggregated
/// report is identical at any thread count — results are folded in model
/// order after the fan-in. The one exception is the wall-clock
/// [`MethodCell::seconds`] cells, which measure real elapsed time and
/// therefore include cross-model contention when victims run concurrently.
///
/// `progress` receives human-readable status lines (pass `|_| {}` to
/// silence); it may be called from worker threads, so lines from different
/// models can interleave.
pub fn run_table(
    spec: &TableSpec,
    models_per_case: usize,
    suite: &DefenseSuite,
    progress: impl Fn(&str) + Sync,
) -> TableReport {
    let mut cases = Vec::with_capacity(spec.cases.len());
    for (ci, case) in spec.cases.iter().enumerate() {
        let mut report = CaseReport {
            label: case.attack.label(),
            mean_accuracy: 0.0,
            mean_asr: 0.0,
            models: models_per_case,
            cells: vec![
                MethodCell {
                    method: "NC",
                    ..MethodCell::default()
                },
                MethodCell {
                    method: "TABOR",
                    ..MethodCell::default()
                },
                MethodCell {
                    method: "USB",
                    ..MethodCell::default()
                },
                MethodCell {
                    method: "ULP",
                    ..MethodCell::default()
                },
            ],
        };
        let model_ids: Vec<usize> = (0..models_per_case).collect();
        let runs = par::par_map(0, &model_ids, |_, &m| {
            let seed = (ci as u64) * 1000 + m as u64;
            run_model(spec, case, seed, m, models_per_case, suite, &progress)
        });
        // Fold in model order so float accumulation matches a sequential
        // run exactly.
        for run in &runs {
            report.mean_accuracy += run.accuracy / models_per_case as f64;
            report.mean_asr += run.asr / models_per_case as f64;
            for (di, &(dt, l1, verdict)) in run.per_defense.iter().enumerate() {
                let cell = &mut report.cells[di];
                cell.seconds += dt;
                cell.mean_l1 += l1 / models_per_case as f64;
                if verdict.called_backdoored {
                    cell.called_backdoored += 1;
                } else {
                    cell.called_clean += 1;
                }
                match verdict.target_call {
                    TargetClassCall::Correct => cell.correct += 1,
                    TargetClassCall::CorrectSet => cell.correct_set += 1,
                    TargetClassCall::Wrong => cell.wrong += 1,
                    TargetClassCall::NotApplicable => {}
                }
            }
        }
        cases.push(report);
    }
    TableReport {
        id: spec.id,
        title: spec.title.clone(),
        cases,
    }
}

// ---------------------------------------------------------------------
// The paper's tables, scaled per EXPERIMENTS.md.
// ---------------------------------------------------------------------

fn badnet_cases() -> Vec<CaseSpec> {
    vec![
        CaseSpec {
            attack: AttackChoice::Clean,
            poison_rate: 0.15,
        },
        CaseSpec {
            attack: AttackChoice::BadNet { trigger: 2 },
            poison_rate: 0.15,
        },
        CaseSpec {
            attack: AttackChoice::BadNet { trigger: 3 },
            poison_rate: 0.15,
        },
    ]
}

/// Table 1: CIFAR-10-like + ResNet-18; clean / BadNet 2×2 / BadNet 3×3.
pub fn table1() -> TableSpec {
    TableSpec {
        id: "table1",
        title: "Detection evaluation on CIFAR-10 (ResNet-18)".to_owned(),
        dataset: SyntheticSpec::cifar10()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::ResNet18,
        width: 4,
        train: TrainConfig::new(20),
        cases: badnet_cases(),
        defense_samples: 48,
    }
}

/// Table 2: ImageNet-subset-like + EfficientNet-B0; BadNet triggers scaled
/// proportionally to the paper's 20×20 / 25×25 / 30×30 on 224×224.
pub fn table2() -> TableSpec {
    TableSpec {
        id: "table2",
        title: "Detection evaluation on ImageNet subset (EfficientNet-B0)".to_owned(),
        dataset: SyntheticSpec::imagenet_subset()
            .with_size(20)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::EfficientNetB0,
        width: 6,
        train: TrainConfig::new(20),
        cases: vec![
            CaseSpec {
                attack: AttackChoice::BadNet { trigger: 2 },
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::BadNet { trigger: 3 },
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::BadNet { trigger: 4 },
                poison_rate: 0.15,
            },
        ],
        defense_samples: 48,
    }
}

/// Table 3: VGG-16 + CIFAR-10-like; clean / latent backdoor / IAD.
pub fn table3() -> TableSpec {
    TableSpec {
        id: "table3",
        title: "Stronger backdoor attacks on VGG-16 (CIFAR-10)".to_owned(),
        dataset: SyntheticSpec::cifar10()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::Vgg16,
        width: 6,
        train: TrainConfig::new(20),
        cases: vec![
            CaseSpec {
                attack: AttackChoice::Clean,
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::Latent { trigger: 2 },
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::Iad,
                poison_rate: 0.2,
            },
        ],
        defense_samples: 48,
    }
}

/// Table 4: VGG-16 + CIFAR-10-like; clean / BadNet 2×2 / 3×3 (appendix).
pub fn table4() -> TableSpec {
    TableSpec {
        id: "table4",
        title: "Detection evaluation on VGG-16 (CIFAR-10)".to_owned(),
        dataset: SyntheticSpec::cifar10()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::Vgg16,
        width: 6,
        train: TrainConfig::new(20),
        cases: badnet_cases(),
        defense_samples: 48,
    }
}

/// Table 5: MNIST-like + ResNet-18; clean / BadNet 2×2 / 3×3 (appendix).
pub fn table5() -> TableSpec {
    TableSpec {
        id: "table5",
        title: "Detection evaluation on MNIST (ResNet-18)".to_owned(),
        dataset: SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::ResNet18,
        width: 4,
        train: TrainConfig::new(20),
        cases: badnet_cases(),
        defense_samples: 48,
    }
}

/// Table 6: GTSRB-like (many classes, shared features) + ResNet-18.
pub fn table6() -> TableSpec {
    TableSpec {
        id: "table6",
        title: "Detection evaluation on GTSRB (ResNet-18)".to_owned(),
        dataset: SyntheticSpec::gtsrb()
            .with_size(12)
            .with_classes(16) // scaled from 43; still ≫ the 10-class tables
            .with_train_size(480)
            .with_test_size(120),
        model: ModelKind::ResNet18,
        width: 4,
        train: TrainConfig::new(20),
        cases: badnet_cases(),
        defense_samples: 64,
    }
}

/// Table 8: the attack-scenario matrix — single-target, multi-target, and
/// blended-trigger backdoors on MNIST-like + ResNet-18, all four defenses.
pub fn table8() -> TableSpec {
    TableSpec {
        id: "table8",
        title: "Attack scenario matrix on MNIST (ResNet-18)".to_owned(),
        dataset: SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100),
        model: ModelKind::ResNet18,
        width: 4,
        train: TrainConfig::new(20),
        cases: vec![
            CaseSpec {
                attack: AttackChoice::Clean,
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::BadNet { trigger: 2 },
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::MultiBadNet {
                    trigger: 2,
                    targets: 2,
                },
                poison_rate: 0.15,
            },
            CaseSpec {
                attack: AttackChoice::Blended { alpha: 0.15 },
                poison_rate: 0.15,
            },
        ],
        defense_samples: 48,
    }
}

/// All tables in paper order, plus the scenario matrix.
pub fn all_tables() -> Vec<TableSpec> {
    vec![
        table1(),
        table2(),
        table3(),
        table4(),
        table5(),
        table6(),
        table8(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_well_formed() {
        for spec in all_tables() {
            assert!(!spec.cases.is_empty(), "{}: no cases", spec.id);
            assert!(spec.defense_samples > 0);
            // Architecture must build for the dataset shape.
            let arch = spec.arch();
            assert_eq!(arch.num_classes, spec.dataset.num_classes);
        }
    }

    #[test]
    fn case_labels_follow_paper_wording() {
        assert_eq!(
            AttackChoice::BadNet { trigger: 2 }.label(),
            "Backdoored (2x2 trigger)"
        );
        assert_eq!(AttackChoice::Clean.label(), "Clean");
        assert!(AttackChoice::Iad.label().contains("Input Aware"));
        assert_eq!(
            AttackChoice::MultiBadNet {
                trigger: 2,
                targets: 2
            }
            .label(),
            "Multi-target Backdoored (2 targets, 2x2 trigger)"
        );
        assert!(AttackChoice::Blended { alpha: 0.15 }
            .label()
            .contains("Blended"));
    }

    #[test]
    fn train_victim_matches_case() {
        let spec = TableSpec {
            dataset: SyntheticSpec::mnist()
                .with_size(12)
                .with_train_size(80)
                .with_test_size(20)
                .with_classes(4),
            ..table5()
        };
        let case = CaseSpec {
            attack: AttackChoice::BadNet { trigger: 2 },
            poison_rate: 0.15,
        };
        let victim = train_victim(&spec, &case, 3);
        assert!(victim.is_backdoored());
        assert_eq!(victim.target(), Some(3)); // seed % classes
    }

    #[test]
    fn multi_target_victim_implants_consecutive_classes() {
        let spec = TableSpec {
            dataset: SyntheticSpec::mnist()
                .with_size(12)
                .with_train_size(80)
                .with_test_size(20)
                .with_classes(4),
            train: TrainConfig::fast(),
            ..table5()
        };
        let case = CaseSpec {
            attack: AttackChoice::MultiBadNet {
                trigger: 2,
                targets: 2,
            },
            poison_rate: 0.15,
        };
        let victim = train_victim(&spec, &case, 3);
        assert!(victim.is_backdoored());
        // base = seed % classes = 3, so targets {3, (3+1)%4} = {0, 3}.
        assert_eq!(victim.targets(), vec![0, 3]);
        assert_eq!(victim.target(), None);
    }

    #[test]
    fn blended_victim_is_single_target() {
        let spec = TableSpec {
            dataset: SyntheticSpec::mnist()
                .with_size(12)
                .with_train_size(80)
                .with_test_size(20)
                .with_classes(4),
            train: TrainConfig::fast(),
            ..table5()
        };
        let case = CaseSpec {
            attack: AttackChoice::Blended { alpha: 0.15 },
            poison_rate: 0.15,
        };
        let victim = train_victim(&spec, &case, 3);
        assert!(victim.is_backdoored());
        assert_eq!(victim.targets(), vec![3]);
    }

    #[test]
    fn scenario_matrix_covers_all_three_backdoor_shapes() {
        let spec = table8();
        assert!(spec
            .cases
            .iter()
            .any(|c| matches!(c.attack, AttackChoice::BadNet { .. })));
        assert!(spec
            .cases
            .iter()
            .any(|c| matches!(c.attack, AttackChoice::MultiBadNet { .. })));
        assert!(spec
            .cases
            .iter()
            .any(|c| matches!(c.attack, AttackChoice::Blended { .. })));
    }
}
