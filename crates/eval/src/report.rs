//! Paper-style table formatting and CSV export.

use crate::grid::TableReport;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a [`TableReport`] in the layout of the paper's tables:
///
/// ```text
/// Model                          Acc    ASR   Method  L1      Clean  Backdoored  Correct  Set  Wrong
/// Clean                          0.95   -     NC      40.78   15     0           -        -    -
/// ...
/// ```
pub fn format_table(report: &TableReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== {} — {} ===\n", report.id, report.title));
    out.push_str(&format!(
        "{:<42} {:>6} {:>6}  {:<6} {:>9} {:>6} {:>11} {:>8} {:>5} {:>6} {:>8}\n",
        "Model",
        "Acc",
        "ASR",
        "Method",
        "L1 norm",
        "Clean",
        "Backdoored",
        "Correct",
        "Set",
        "Wrong",
        "sec"
    ));
    for case in &report.cases {
        let is_clean_case = case.mean_asr == 0.0;
        for (i, cell) in case.cells.iter().enumerate() {
            let label = if i == 0 { case.label.as_str() } else { "" };
            let acc = if i == 0 {
                format!("{:.2}", case.mean_accuracy * 100.0)
            } else {
                String::new()
            };
            let asr = if i == 0 {
                if is_clean_case {
                    "N/A".to_owned()
                } else {
                    format!("{:.2}", case.mean_asr * 100.0)
                }
            } else {
                String::new()
            };
            let (correct, set, wrong) = if is_clean_case {
                ("N/A".to_owned(), "N/A".to_owned(), "N/A".to_owned())
            } else {
                (
                    cell.correct.to_string(),
                    cell.correct_set.to_string(),
                    cell.wrong.to_string(),
                )
            };
            out.push_str(&format!(
                "{:<42} {:>6} {:>6}  {:<6} {:>9.2} {:>6} {:>11} {:>8} {:>5} {:>6} {:>8.1}\n",
                label,
                acc,
                asr,
                cell.method,
                cell.mean_l1,
                cell.called_clean,
                cell.called_backdoored,
                correct,
                set,
                wrong,
                cell.seconds
            ));
        }
    }
    out
}

/// Writes a [`TableReport`] as CSV to `path` (creating parent directories).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(report: &TableReport, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut csv = String::from(
        "case,models,mean_accuracy,mean_asr,method,mean_l1,called_clean,called_backdoored,correct,correct_set,wrong,seconds\n",
    );
    for case in &report.cases {
        for cell in &case.cells {
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{},{:.4},{},{},{},{},{},{:.2}\n",
                case.label.replace(',', ";"),
                case.models,
                case.mean_accuracy,
                case.mean_asr,
                cell.method,
                cell.mean_l1,
                cell.called_clean,
                cell.called_backdoored,
                cell.correct,
                cell.correct_set,
                cell.wrong,
                cell.seconds
            ));
        }
    }
    fs::write(path, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CaseReport, MethodCell};

    fn sample_report() -> TableReport {
        TableReport {
            id: "tableX",
            title: "sample".to_owned(),
            cases: vec![CaseReport {
                label: "Backdoored (2x2 trigger)".to_owned(),
                mean_accuracy: 0.93,
                mean_asr: 0.97,
                models: 5,
                cells: vec![
                    MethodCell {
                        method: "NC",
                        mean_l1: 8.72,
                        called_clean: 1,
                        called_backdoored: 4,
                        correct: 4,
                        correct_set: 0,
                        wrong: 0,
                        seconds: 12.0,
                    },
                    MethodCell {
                        method: "USB",
                        mean_l1: 9.83,
                        called_clean: 0,
                        called_backdoored: 5,
                        correct: 5,
                        correct_set: 0,
                        wrong: 0,
                        seconds: 6.0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn formatted_table_contains_key_fields() {
        let s = format_table(&sample_report());
        assert!(s.contains("Backdoored (2x2 trigger)"));
        assert!(s.contains("NC"));
        assert!(s.contains("USB"));
        assert!(s.contains("8.72"));
        assert!(s.contains("Correct"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("usb_report_test");
        let path = dir.join("t.csv");
        write_csv(&sample_report(), &path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("case,models"));
        assert_eq!(text.lines().count(), 3, "header + 2 method rows");
        assert!(text.contains("USB"));
        fs::remove_dir_all(&dir).ok();
    }
}
