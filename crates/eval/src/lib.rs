//! # usb-eval
//!
//! The experiment grid that regenerates every table and figure of the USB
//! paper on the synthetic substrate. The `usb-repro` binary is the entry
//! point:
//!
//! ```text
//! usb-repro table1 --models 5        # Table 1: CIFAR-10 + ResNet-18
//! usb-repro table3 --fast            # Table 3: stronger attacks on VGG-16
//! usb-repro fig5                     # Fig. 5: per-class reversed triggers
//! usb-repro all                      # everything, in order
//! ```
//!
//! Outputs go to stdout (paper-formatted tables) and `target/repro/`
//! (CSV + PGM/PPM images). See EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.
//!
//! The [`serve`] module turns the same engine into a resident daemon
//! (`usb-repro serve` / `submit` / `loadgen`): victim bundles stream in
//! over TCP, verdicts stream back, and hot models stay cached between
//! requests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod figures;
pub mod grid;
pub mod report;
pub mod serve;
pub mod timing;

pub use grid::{run_table, AttackChoice, CaseReport, CaseSpec, TableReport, TableSpec};
pub use report::{format_table, write_csv};
