//! `usb-repro` — regenerate every table and figure of the USB paper.
//!
//! ```text
//! usb-repro <experiment> [--models N] [--fast] [--out DIR]
//!
//! experiments: table1 table2 table3 table4 table5 table6 table7
//!              fig1 fig2 fig3 fig4 fig5 fig6 headline transfer all
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use usb_eval::figures;
use usb_eval::grid::{self, DefenseSuite};
use usb_eval::timing::{format_timing, run_timing};
use usb_eval::{format_table, write_csv};

struct Options {
    experiment: String,
    models: usize,
    fast: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut options = Options {
        experiment,
        models: 5,
        fast: false,
        out: figures::default_out_dir(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--models" => {
                let v = args.next().ok_or("--models needs a value")?;
                options.models = v.parse().map_err(|_| format!("bad --models value {v}"))?;
            }
            "--fast" => options.fast = true,
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                options.out = PathBuf::from(v);
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(options)
}

fn usage() -> String {
    "usage: usb-repro <table1..table7|fig1..fig6|headline|transfer|all> \
     [--models N] [--fast] [--out DIR]"
        .to_owned()
}

fn progress(line: &str) {
    println!("{line}");
}

fn run_one(id: &str, options: &Options, suite: &DefenseSuite) -> Result<(), String> {
    match id {
        "table1" | "table2" | "table3" | "table4" | "table5" | "table6" => {
            let spec = match id {
                "table1" => grid::table1(),
                "table2" => grid::table2(),
                "table3" => grid::table3(),
                "table4" => grid::table4(),
                "table5" => grid::table5(),
                _ => grid::table6(),
            };
            let report = grid::run_table(&spec, options.models, suite, progress);
            print!("{}", format_table(&report));
            let csv = options.out.join(format!("{id}.csv"));
            write_csv(&report, &csv).map_err(|e| format!("writing {}: {e}", csv.display()))?;
            println!("wrote {}", csv.display());
        }
        "table7" => {
            let report = run_timing(options.models.min(3), suite, progress);
            print!("{}", format_timing(&report));
        }
        "fig1" => {
            let rows = figures::fig1(&options.out, progress);
            println!("fig1 L1 norms:");
            for (name, l1) in rows {
                println!("  {name:<18} {l1:>8.2}");
            }
        }
        "fig2" => {
            let _ =
                figures::fig_reconstructions(&options.out.join("fig2_imagenet"), true, progress);
            let _ = figures::fig_reconstructions(&options.out.join("fig2_cifar"), false, progress);
        }
        "fig3" | "fig4" => {
            let rows = figures::fig_reconstructions(&options.out.join(id), false, progress);
            println!("{id} reversed-mask L1 norms:");
            for (name, l1) in rows {
                println!("  {name:<10} {l1:>8.2}");
            }
        }
        "fig5" => {
            let norms = figures::fig5(&options.out, progress);
            println!("fig5 per-class v' L1 norms: {norms:?}");
        }
        "fig6" => {
            let rows = figures::fig6(&options.out, progress);
            println!("fig6 per-method per-class mask L1 norms:");
            for (name, class, l1) in rows {
                println!("  {name:<8} class {class}: {l1:>8.2}");
            }
        }
        "headline" => {
            let (target, others) = figures::headline(progress);
            println!(
                "headline: L1(backdoored class) = {target:.2} vs mean(others) = {others:.2} \
                 (paper example: 4.49 vs 53.76)"
            );
        }
        "transfer" => {
            let (full, transfer, success) = figures::transfer(progress);
            println!(
                "transfer: full {full:.2}s vs transfer {transfer:.2}s, refined success {success:.2}"
            );
        }
        other => return Err(format!("unknown experiment {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let suite = if options.fast {
        DefenseSuite::fast()
    } else {
        DefenseSuite::standard()
    };
    let ids: Vec<&str> = if options.experiment == "all" {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig1", "fig2",
            "fig3", "fig4", "fig5", "fig6", "headline", "transfer",
        ]
    } else {
        vec![options.experiment.as_str()]
    };
    for id in ids {
        if let Err(e) = run_one(id, &options, &suite) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
