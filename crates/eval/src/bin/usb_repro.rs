//! `usb-repro` — regenerate every table and figure of the USB paper, and
//! save / re-inspect victim models without retraining.
//!
//! ```text
//! usb-repro <experiment> [--models N] [--fast] [--out DIR]
//! usb-repro save    [--out PATH] [--fast] [--seed N] [--dtype f32|f16|q8]
//! usb-repro inspect <PATH>       [--fast] [--seed N]
//! usb-repro serve   [--addr A] [--workers N] [--cache-mb N]
//! usb-repro submit  <PATH> [--addr A] [--fast] [--seed N] [--subset N] [--workers N]
//! usb-repro submit  --shutdown [--addr A]
//! usb-repro loadgen [PATH] [--clients N] [--requests N] [--fast] [--out PATH]
//!                   [--dtype f32|f16|q8]
//!
//! experiments: table1 table2 table3 table4 table5 table6 table7 table8
//!              fig1 fig2 fig3 fig4 fig5 fig6 headline transfer all
//! ```
//!
//! `save` trains a BadNet victim (through the `target/fixtures/` cache, so
//! repeated saves don't retrain) and writes a self-contained bundle —
//! model, trigger, ground truth, dataset recipe — in the `PERSISTENCE.md`
//! format; `--dtype f16|q8` stores the weight bank at reduced precision
//! (see PERSISTENCE.md for the trade-offs). `inspect` loads any such
//! bundle, auto-detecting its weight dtype, regenerates clean data from
//! the stored recipe, and runs the USB detector on the loaded model; for
//! f32 bundles the verdict is bit-identical to inspecting the in-memory
//! victim.
//!
//! `serve` keeps that engine resident: a long-running daemon accepting
//! bundles over TCP (the USBP protocol, see ARCHITECTURE.md), with fair
//! queueing across client connections and a bounded resident-model cache.
//! `submit` sends one bundle to a running daemon and streams per-class
//! progress + the verdict back — same exit-code contract as `inspect`.
//! `loadgen` measures the daemon under concurrent load and writes the
//! `BENCH_serve.json` latency/throughput document.

use rand::SeedableRng;
use std::path::PathBuf;
use std::process::ExitCode;
use usb_attacks::fixtures::{cached_victim, FixtureSpec};
use usb_attacks::persist::{
    peek_weight_dtype, read_victim_bytes, save_victim, save_victim_dtype, VictimBundle,
};
use usb_attacks::{Attack, BadNet};
use usb_core::{UsbConfig, UsbDetector};
use usb_data::SyntheticSpec;
use usb_defenses::Defense;
use usb_eval::figures;
use usb_eval::grid::{self, DefenseSuite};
use usb_eval::serve::{
    format_loadgen, loadgen_json, run_loadgen, Client, LoadgenConfig, ServeConfig, Server,
    SubmitOptions,
};
use usb_eval::timing::{
    compare_bench_totals, format_timing, parse_bench_totals, report_totals, run_timing, timing_json,
};
use usb_eval::{format_table, write_csv};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;
use usb_tensor::Dtype;

struct Options {
    experiment: String,
    models: usize,
    fast: bool,
    json: bool,
    out: PathBuf,
    path: Option<PathBuf>,
    seed: u64,
    compare: Option<PathBuf>,
    addr: String,
    workers: usize,
    subset: u32,
    clients: usize,
    requests: usize,
    shutdown: bool,
    dtype: Dtype,
    cache_mb: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1).peekable();
    let experiment = args.next().ok_or_else(usage)?;
    let mut options = Options {
        experiment,
        models: 5,
        fast: false,
        json: false,
        out: figures::default_out_dir(),
        path: None,
        seed: 7,
        compare: None,
        addr: "127.0.0.1:7878".to_owned(),
        workers: 0,
        subset: 48,
        clients: 2,
        requests: 4,
        shutdown: false,
        dtype: Dtype::F32,
        cache_mb: 64,
    };
    match options.experiment.as_str() {
        "inspect" => {
            let p = args.next().ok_or("inspect needs a bundle path")?;
            options.path = Some(PathBuf::from(p));
            // The inspection seed the detector test suite validates
            // against the default save recipes; --seed below overrides.
            options.seed = 3;
        }
        "save" => options.out = figures::default_out_dir().join("victim.usbv"),
        // The bundle path is positional but optional: `submit --shutdown`
        // sends no bundle, and `loadgen` trains its own when none is given.
        "submit" | "loadgen" => {
            if let Some(p) = args.peek() {
                if !p.starts_with("--") {
                    options.path = Some(PathBuf::from(args.next().expect("peeked")));
                }
            }
            options.seed = 3;
        }
        _ => {}
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--models" => {
                let v = args.next().ok_or("--models needs a value")?;
                options.models = v.parse().map_err(|_| format!("bad --models value {v}"))?;
            }
            "--fast" => options.fast = true,
            "--json" => options.json = true,
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                options.out = PathBuf::from(v);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--compare" => {
                let v = args.next().ok_or("--compare needs a baseline path")?;
                options.compare = Some(PathBuf::from(v));
            }
            "--addr" => {
                let v = args.next().ok_or("--addr needs a value")?;
                options.addr = v;
            }
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                options.workers = v.parse().map_err(|_| format!("bad --workers value {v}"))?;
            }
            "--subset" => {
                let v = args.next().ok_or("--subset needs a value")?;
                options.subset = v.parse().map_err(|_| format!("bad --subset value {v}"))?;
            }
            "--clients" => {
                let v = args.next().ok_or("--clients needs a value")?;
                options.clients = v.parse().map_err(|_| format!("bad --clients value {v}"))?;
            }
            "--requests" => {
                let v = args.next().ok_or("--requests needs a value")?;
                options.requests = v.parse().map_err(|_| format!("bad --requests value {v}"))?;
            }
            "--shutdown" => options.shutdown = true,
            "--dtype" => {
                let v = args.next().ok_or("--dtype needs a value (f32|f16|q8)")?;
                options.dtype = Dtype::parse(&v)
                    .ok_or_else(|| format!("bad --dtype value {v} (expected f32, f16, or q8)"))?;
            }
            "--cache-mb" => {
                let v = args.next().ok_or("--cache-mb needs a value")?;
                options.cache_mb = v.parse().map_err(|_| format!("bad --cache-mb value {v}"))?;
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(options)
}

fn usage() -> String {
    "usage: usb-repro <table1..table8|fig1..fig6|headline|transfer|all> \
     [--models N] [--fast] [--out DIR]\n       \
     usb-repro timing [--json] [--compare BASELINE.json] [--models N] [--fast] [--out DIR]\n       \
     usb-repro save [--out PATH] [--fast] [--seed N] [--dtype f32|f16|q8]\n       \
     usb-repro inspect <PATH> [--fast] [--seed N]\n       \
     usb-repro serve [--addr A] [--workers N] [--cache-mb N]\n       \
     usb-repro submit <PATH> [--addr A] [--fast] [--seed N] [--subset N] [--workers N]\n       \
     usb-repro submit --shutdown [--addr A]\n       \
     usb-repro loadgen [PATH] [--clients N] [--requests N] [--fast] [--seed N] [--out PATH] \
     [--dtype f32|f16|q8]"
        .to_owned()
}

fn progress(line: &str) {
    println!("{line}");
}

/// The `save` training setting: the quickstart BadNet/ResNet-18 victim, or
/// a miniature BasicCnn victim when `--fast` (CI smoke scale).
fn save_setting(fast: bool) -> (SyntheticSpec, Architecture, BadNet, TrainConfig) {
    if fast {
        // The usb-core detector test's setting: ResNet-18 implants small
        // triggers reliably at this scale, and the 10-class MAD statistic
        // flags the target with `UsbDetector::fast` at the default seeds.
        let spec = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(80);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 10).with_width(4);
        (spec, arch, BadNet::new(2, 4, 0.15), TrainConfig::new(20))
    } else {
        let spec = SyntheticSpec::cifar10()
            .with_size(12)
            .with_train_size(400)
            .with_test_size(100);
        let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
        (spec, arch, BadNet::new(2, 0, 0.15), TrainConfig::new(20))
    }
}

fn run_save(options: &Options) -> Result<(), String> {
    let (spec, arch, attack, tc) = save_setting(options.fast);
    // Data seeds are part of the tuned recipe (they set class separability),
    // while --seed varies the training run.
    let (key, data_seed) = if options.fast {
        ("repro-save-fast", 111)
    } else {
        ("repro-save", 7)
    };
    let fixture = FixtureSpec::new(key, spec, data_seed, options.seed).with_config(&[
        &format!("{arch:?}"),
        &format!("{attack:?}"),
        &format!("{tc:?}"),
    ]);
    let config_hash = fixture.config_hash;
    let (_, victim) = cached_victim(&fixture, |data| {
        attack.execute(data, arch, tc, options.seed)
    });
    println!(
        "victim trained: clean accuracy {:.2}, asr {:.2}, target {:?}",
        victim.clean_accuracy,
        victim.asr(),
        victim.target()
    );
    let mut bundle = VictimBundle {
        victim,
        train_seed: options.seed,
        config_hash,
        data_spec: fixture.data_spec,
        data_seed: fixture.data_seed,
    };
    if options.dtype == Dtype::F32 {
        save_victim(&options.out, &mut bundle)
            .map_err(|e| format!("saving {}: {e}", options.out.display()))?;
    } else {
        save_victim_dtype(&options.out, &mut bundle, options.dtype)
            .map_err(|e| format!("saving {}: {e}", options.out.display()))?;
    }
    println!(
        "wrote {} ({} weights)",
        options.out.display(),
        options.dtype
    );
    println!(
        "re-inspect any time with: usb-repro inspect {}{}",
        options.out.display(),
        if options.fast { " --fast" } else { "" }
    );
    Ok(())
}

fn run_inspect(options: &Options) -> Result<(), String> {
    let path = options.path.as_ref().expect("inspect always sets a path");
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    // The bundle's weight dtype is auto-detected from its header — no
    // flag needed; quantized bundles dequantize on the fly at inference.
    let dtype =
        peek_weight_dtype(&bytes).map_err(|e| format!("loading {}: {e}", path.display()))?;
    let bundle =
        read_victim_bytes(&bytes).map_err(|e| format!("loading {}: {e}", path.display()))?;
    println!(
        "loaded victim: {} / {:?} / {} classes, {dtype} weights, \
         clean accuracy {:.2}, asr {:.2}",
        bundle.data_spec.name,
        bundle.victim.model.arch().kind,
        bundle.victim.model.num_classes(),
        bundle.victim.clean_accuracy,
        bundle.victim.asr()
    );
    // Clean inspection data comes from the stored recipe — no images ship
    // in the bundle, yet inspection needs no retraining.
    let data = bundle.data_spec.generate(bundle.data_seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(options.seed);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let usb = if options.fast {
        UsbDetector::fast()
    } else {
        UsbDetector::new(UsbConfig::standard())
    };
    let outcome = usb.inspect(&bundle.victim.model, &clean_x, &mut rng);
    println!("per-class reversed-trigger L1 norms:");
    for c in &outcome.per_class {
        println!(
            "  class {}: L1 {:>8.2}  (anomaly {:.2}, success {:.2}){}",
            c.class,
            c.l1_norm,
            outcome.anomaly_indices[c.class],
            c.attack_success,
            if outcome.flagged.contains(&c.class) {
                "  <-- FLAGGED"
            } else {
                ""
            }
        );
    }
    let verdict = if outcome.is_backdoored() {
        "BACKDOORED"
    } else {
        "clean"
    };
    let truth = bundle.victim.targets();
    println!(
        "verdict: {verdict} (flagged {:?}, {dtype} weights); ground truth targets: {truth:?}",
        outcome.flagged
    );
    let missed: Vec<usize> = truth
        .iter()
        .copied()
        .filter(|t| !outcome.flagged.contains(t))
        .collect();
    if !missed.is_empty() {
        Err(format!(
            "inspection missed implanted target classes {missed:?} (flagged {:?})",
            outcome.flagged
        ))
    } else if truth.is_empty() && outcome.is_backdoored() {
        Err(format!(
            "inspection flagged {:?} on a clean victim",
            outcome.flagged
        ))
    } else {
        Ok(())
    }
}

fn run_serve(options: &Options) -> Result<(), String> {
    let config = ServeConfig {
        workers: options.workers,
        cache_bytes: options.cache_mb << 20,
        ..ServeConfig::default()
    };
    let server = Server::start(options.addr.as_str(), config)
        .map_err(|e| format!("binding {}: {e}", options.addr))?;
    let addr = server.local_addr();
    println!("usb-repro daemon listening on {addr}");
    println!("submit bundles with:  usb-repro submit <PATH> --addr {addr} [--fast]");
    println!("stop the daemon with: usb-repro submit --shutdown --addr {addr}");
    server.wait();
    let stats = server.stop();
    println!(
        "daemon stopped: {} connections, {} jobs accepted, {} completed, \
         cache {}/{} hit, {} rejected, {} protocol errors",
        stats.connections,
        stats.accepted,
        stats.completed,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stats.rejected,
        stats.protocol_errors,
    );
    Ok(())
}

fn run_submit(options: &Options) -> Result<(), String> {
    let mut client = Client::connect(options.addr.as_str())
        .map_err(|e| format!("connecting to {}: {e}", options.addr))?;
    if options.shutdown {
        client
            .shutdown_server()
            .map_err(|e| format!("shutting down {}: {e}", options.addr))?;
        println!("daemon at {} acknowledged shutdown", options.addr);
        return Ok(());
    }
    let path = options
        .path
        .as_ref()
        .ok_or("submit needs a bundle path (or --shutdown)")?;
    let bundle = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    // Sniffed client-side from the bundle header, purely informational:
    // the daemon auto-detects the dtype when it parses the bundle.
    let dtype = peek_weight_dtype(&bundle)
        .map(|d| d.name())
        .unwrap_or("unknown");
    let opts = SubmitOptions {
        tag: 1,
        seed: options.seed,
        subset: options.subset,
        workers: options.workers as u32,
        fast: options.fast,
    };
    let verdict = client
        .inspect(&bundle, &opts, |p| {
            println!(
                "  [{}/{}] class {}: L1 {:>8.2}  (success {:.2})",
                p.classes_done, p.classes_total, p.class, p.l1_norm, p.attack_success
            );
        })
        .map_err(|e| format!("inspecting {} via {}: {e}", path.display(), options.addr))?;
    let verdict_word = if verdict.is_backdoored() {
        "BACKDOORED"
    } else {
        "clean"
    };
    println!(
        "verdict: {verdict_word} (flagged {:?}, median L1 {:.2}, {dtype} weights); \
         ground truth targets: {:?}",
        verdict.flagged, verdict.median_l1, verdict.truth_targets
    );
    println!(
        "served by {} in {:.2}s ({})",
        options.addr,
        verdict.seconds,
        if verdict.cache_hit {
            "resident model, cache hit"
        } else {
            "cache miss: parsed + regenerated data"
        }
    );
    // Same exit-code contract as offline `inspect`: disagreeing with the
    // bundle's ground truth is a failure.
    if verdict.agrees {
        Ok(())
    } else {
        Err(format!(
            "daemon verdict disagrees with ground truth (flagged {:?}, truth {:?})",
            verdict.flagged, verdict.truth_targets
        ))
    }
}

fn run_loadgen_cmd(options: &Options) -> Result<(), String> {
    // A bundle path on the command line is used as-is; otherwise train the
    // fast `save` recipe (through the fixture cache) and write it under
    // the out dir so the cold-process baseline has a file to inspect.
    let out_is_file = options.out.extension().is_some();
    let out_dir = if out_is_file {
        options
            .out
            .parent()
            .map(PathBuf::from)
            .filter(|p| !p.as_os_str().is_empty())
    } else {
        Some(options.out.clone())
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let bundle_path = match &options.path {
        Some(p) => p.clone(),
        None => {
            let (spec, arch, attack, tc) = save_setting(true);
            let fixture = FixtureSpec::new("repro-save-fast", spec, 111, 7).with_config(&[
                &format!("{arch:?}"),
                &format!("{attack:?}"),
                &format!("{tc:?}"),
            ]);
            let config_hash = fixture.config_hash;
            println!("training the fast save recipe for the workload bundle...");
            let (_, victim) = cached_victim(&fixture, |data| attack.execute(data, arch, tc, 7));
            // The saved recipe is inflated to model-zoo scale: every
            // inspection — cold process and cold daemon cache alike —
            // must regenerate this dataset from the bundle before it can
            // draw a clean subset, which is the dominant resident-cache
            // saving at deployment scale and degenerate at the tiny
            // training scale of the CI fixture. Verdicts are unaffected:
            // class prototypes are drawn before the splits, and the
            // inspection subset samples from the prototypes.
            let zoo_spec = fixture
                .data_spec
                .with_train_size(60_000)
                .with_test_size(10_000);
            let mut bundle = VictimBundle {
                victim,
                train_seed: 7,
                config_hash,
                data_spec: zoo_spec,
                data_seed: fixture.data_seed,
            };
            // `--dtype` applies here, to the workload bundle the command
            // trains itself — measuring the daemon per storage precision.
            // A bundle given on the command line is submitted as-is.
            let path = out_dir
                .clone()
                .unwrap_or_else(figures::default_out_dir)
                .join(format!("loadgen_victim_{}.usbv", options.dtype));
            if options.dtype == Dtype::F32 {
                save_victim(&path, &mut bundle)
                    .map_err(|e| format!("saving {}: {e}", path.display()))?;
            } else {
                save_victim_dtype(&path, &mut bundle, options.dtype)
                    .map_err(|e| format!("saving {}: {e}", path.display()))?;
            }
            path
        }
    };
    let bundle = std::fs::read(&bundle_path)
        .map_err(|e| format!("reading {}: {e}", bundle_path.display()))?;
    let config = LoadgenConfig {
        clients: options.clients,
        requests_per_client: options.requests,
        fast: options.fast,
        seed: options.seed,
        subset: options.subset,
        workers: options.workers,
        cold_baseline: std::env::current_exe().ok(),
    };
    let report = run_loadgen(&bundle, Some(&bundle_path), &config, progress)?;
    print!("{}", format_loadgen(&report));
    let json_path = if out_is_file {
        options.out.clone()
    } else {
        options.out.join("BENCH_serve.json")
    };
    std::fs::write(&json_path, loadgen_json(&report))
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    println!("wrote {}", json_path.display());
    Ok(())
}

fn run_one(id: &str, options: &Options, suite: &DefenseSuite) -> Result<(), String> {
    match id {
        "save" => run_save(options)?,
        "inspect" => run_inspect(options)?,
        "serve" => run_serve(options)?,
        "submit" => run_submit(options)?,
        "loadgen" => run_loadgen_cmd(options)?,
        "table1" | "table2" | "table3" | "table4" | "table5" | "table6" | "table8" => {
            let spec = match id {
                "table1" => grid::table1(),
                "table2" => grid::table2(),
                "table3" => grid::table3(),
                "table4" => grid::table4(),
                "table5" => grid::table5(),
                "table8" => grid::table8(),
                _ => grid::table6(),
            };
            let report = grid::run_table(&spec, options.models, suite, progress);
            print!("{}", format_table(&report));
            let csv = options.out.join(format!("{id}.csv"));
            write_csv(&report, &csv).map_err(|e| format!("writing {}: {e}", csv.display()))?;
            println!("wrote {}", csv.display());
        }
        // `timing` is the machine-facing alias of table7: same harness,
        // plus `--json` writes the BENCH.json perf-trajectory document and
        // `--compare <baseline>` gates per-stage regressions against a
        // committed baseline (exits non-zero past 25%).
        "table7" | "timing" => {
            let models = options.models.min(3);
            let report = run_timing(models, suite, progress);
            print!("{}", format_timing(&report));
            if options.json {
                let config = if options.fast { "fast" } else { "standard" };
                let json = timing_json(&report, config, models);
                std::fs::create_dir_all(&options.out)
                    .map_err(|e| format!("creating {}: {e}", options.out.display()))?;
                let path = options.out.join("BENCH.json");
                std::fs::write(&path, json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("wrote {}", path.display());
            }
            if let Some(baseline_path) = &options.compare {
                /// Regressions beyond this fraction of the baseline fail
                /// the run (generous: CI machines vary, and the gate is
                /// after real slowdowns, not scheduler noise).
                const TOLERANCE: f64 = 0.25;
                let baseline_json = std::fs::read_to_string(baseline_path)
                    .map_err(|e| format!("reading baseline {}: {e}", baseline_path.display()))?;
                let baseline = parse_bench_totals(&baseline_json)
                    .map_err(|e| format!("parsing baseline {}: {e}", baseline_path.display()))?;
                let regressions =
                    compare_bench_totals(&report_totals(&report), &baseline, TOLERANCE);
                if regressions.is_empty() {
                    println!(
                        "timing within {:.0}% of baseline {}",
                        TOLERANCE * 100.0,
                        baseline_path.display()
                    );
                } else {
                    return Err(format!(
                        "per-stage timing regressed past {:.0}% of baseline {}:\n  {}",
                        TOLERANCE * 100.0,
                        baseline_path.display(),
                        regressions.join("\n  ")
                    ));
                }
            }
        }
        "fig1" => {
            let rows = figures::fig1(&options.out, progress).map_err(|e| format!("fig1: {e}"))?;
            println!("fig1 L1 norms:");
            for (name, l1) in rows {
                println!("  {name:<18} {l1:>8.2}");
            }
        }
        "fig2" => {
            figures::fig_reconstructions(&options.out.join("fig2_imagenet"), true, progress)
                .map_err(|e| format!("fig2 (imagenet): {e}"))?;
            figures::fig_reconstructions(&options.out.join("fig2_cifar"), false, progress)
                .map_err(|e| format!("fig2 (cifar): {e}"))?;
        }
        "fig3" | "fig4" => {
            let rows = figures::fig_reconstructions(&options.out.join(id), false, progress)
                .map_err(|e| format!("{id}: {e}"))?;
            println!("{id} reversed-mask L1 norms:");
            for (name, l1) in rows {
                println!("  {name:<10} {l1:>8.2}");
            }
        }
        "fig5" => {
            let norms = figures::fig5(&options.out, progress).map_err(|e| format!("fig5: {e}"))?;
            println!("fig5 per-class v' L1 norms: {norms:?}");
        }
        "fig6" => {
            let rows = figures::fig6(&options.out, progress).map_err(|e| format!("fig6: {e}"))?;
            println!("fig6 per-method per-class mask L1 norms:");
            for (name, class, l1) in rows {
                println!("  {name:<8} class {class}: {l1:>8.2}");
            }
        }
        "headline" => {
            let (target, others) = figures::headline(progress);
            println!(
                "headline: L1(backdoored class) = {target:.2} vs mean(others) = {others:.2} \
                 (paper example: 4.49 vs 53.76)"
            );
        }
        "transfer" => {
            let (full, transfer, success) = figures::transfer(progress);
            println!(
                "transfer: full {full:.2}s vs transfer {transfer:.2}s, refined success {success:.2}"
            );
        }
        other => return Err(format!("unknown experiment {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let suite = if options.fast {
        DefenseSuite::fast()
    } else {
        DefenseSuite::standard()
    };
    let ids: Vec<&str> = if options.experiment == "all" {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "fig1",
            "fig2", "fig3", "fig4", "fig5", "fig6", "headline", "transfer",
        ]
    } else {
        vec![options.experiment.as_str()]
    };
    for id in ids {
        if let Err(e) = run_one(id, &options, &suite) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
