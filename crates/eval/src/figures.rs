//! The paper's figures, regenerated as PGM/PPM dumps plus printed
//! statistics.
//!
//! | figure | content |
//! |---|---|
//! | Fig. 1 | random NC start vs UAP(backdoored) vs UAP(clean) vs NC-optimised pattern |
//! | Fig. 2–4 | original trigger vs NC / TABOR / USB reconstructions |
//! | Fig. 5 | USB per-class reversed triggers, basic CNN, no mask constraint |
//! | Fig. 6 | reversed triggers for classes 0–9 by every method |
//! | headline | §4.2's "backdoored-class L1 ≪ others" statistic |
//! | transfer | §4.4's UAP reuse across models |

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::{Path, PathBuf};
use usb_attacks::{train_clean_victim, Attack, BadNet, GroundTruth, InjectedTrigger};
use usb_core::viz::{ascii_art, save_image, save_pgm};
use usb_core::{
    refine_uap, targeted_uap, transfer_uap, RefineConfig, UapConfig, UsbConfig, UsbDetector,
};
use usb_data::SyntheticSpec;
use usb_defenses::{Defense, NeuralCleanse, Tabor, TriggerVar};
use usb_nn::models::{Architecture, ModelKind};
use usb_nn::train::TrainConfig;

fn cifar_resnet_setup() -> (usb_data::Dataset, Architecture) {
    let dataset = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100);
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
    (dataset.generate(777), arch)
}

/// Fig. 1: "The random point is barely updated by NC." Compares the L1
/// mass of (a) NC's random starting pattern, (b) the targeted UAP of a
/// backdoored model, (c) the targeted UAP of a clean model, and (d) NC's
/// optimised pattern; dumps all four as images.
///
/// # Errors
///
/// Returns the first I/O error from writing an image dump — a figure run
/// that silently produces no figures is a failed run.
pub fn fig1(out_dir: &Path, mut progress: impl FnMut(&str)) -> io::Result<Vec<(String, f64)>> {
    let (data, arch) = cifar_resnet_setup();
    let backdoored = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 1);
    let clean = train_clean_victim(&data, arch, TrainConfig::new(20), 2);
    progress(&format!(
        "[fig1] victims: backdoored asr {:.2}, clean acc {:.2}",
        backdoored.asr(),
        clean.clean_accuracy
    ));
    let mut rng = StdRng::seed_from_u64(0);
    let (x, _) = data.clean_subset(32, &mut rng);
    // (a) NC's random start.
    let random_var = TriggerVar::random(3, 12, 12, &mut rng);
    let random_pattern = random_var.pattern();
    // (b) / (c) targeted UAPs.
    let uap_bd = targeted_uap(&backdoored.model, &x, 0, UapConfig::default());
    let uap_clean = targeted_uap(&clean.model, &x, 0, UapConfig::default());
    // (d) NC-optimised pattern on the backdoored model.
    let nc = NeuralCleanse::fast();
    let nc_result = nc.reverse_class(&backdoored.model, &x, 0, &mut rng);
    let rows = vec![
        ("random_start".to_owned(), random_pattern.l1_norm() as f64),
        ("uap_backdoored".to_owned(), uap_bd.l1_norm()),
        ("uap_clean".to_owned(), uap_clean.l1_norm()),
        (
            "nc_optimized".to_owned(),
            nc_result.pattern.l1_norm() as f64,
        ),
    ];
    save_image(
        &out_dir.join("fig1_random_start.ppm"),
        &random_pattern,
        0.0,
        1.0,
    )?;
    save_image(
        &out_dir.join("fig1_uap_backdoored.ppm"),
        &uap_bd.perturbation,
        -0.5,
        0.5,
    )?;
    save_image(
        &out_dir.join("fig1_uap_clean.ppm"),
        &uap_clean.perturbation,
        -0.5,
        0.5,
    )?;
    save_image(
        &out_dir.join("fig1_nc_optimized.ppm"),
        &nc_result.pattern,
        0.0,
        1.0,
    )?;
    for (name, l1) in &rows {
        progress(&format!("[fig1] {name}: L1 = {l1:.2}"));
    }
    Ok(rows)
}

/// Figs. 2–4: original trigger vs the three reconstructions, dumped as
/// images (CIFAR-10-like setting; Fig. 2's ImageNet rows use the Table 2
/// setting when `imagenet` is true).
///
/// # Errors
///
/// Returns the first I/O error from writing an image dump.
pub fn fig_reconstructions(
    out_dir: &Path,
    imagenet: bool,
    mut progress: impl FnMut(&str),
) -> io::Result<Vec<(String, f64)>> {
    let (data, arch) = if imagenet {
        let dataset = SyntheticSpec::imagenet_subset()
            .with_size(20)
            .with_train_size(400)
            .with_test_size(100);
        (
            dataset.generate(778),
            Architecture::new(ModelKind::EfficientNetB0, (3, 20, 20), 10).with_width(6),
        )
    } else {
        cifar_resnet_setup()
    };
    let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 3);
    progress(&format!("[fig2-4] victim asr {:.2}", victim.asr()));
    let mut rng = StdRng::seed_from_u64(1);
    let (x, _) = data.clean_subset(32, &mut rng);
    // Save the original trigger.
    let mut rows = Vec::new();
    if let GroundTruth::Backdoored {
        trigger: InjectedTrigger::Static(trigger),
        ..
    } = &victim.ground_truth
    {
        save_image(
            &out_dir.join("orig_trigger.ppm"),
            trigger.pattern(),
            0.0,
            1.0,
        )?;
        save_pgm(&out_dir.join("orig_mask.pgm"), trigger.mask(), 0.0, 1.0)?;
        rows.push(("original".to_owned(), trigger.mask_l1()));
    }
    let nc = NeuralCleanse::fast();
    let tabor = Tabor::fast();
    let usb = UsbDetector::fast();
    let defenses: [(&str, &dyn Defense); 3] = [("nc", &nc), ("tabor", &tabor), ("usb", &usb)];
    for (name, defense) in defenses {
        let r = defense.reverse_class(&victim.model, &x, 0, &mut rng);
        save_image(
            &out_dir.join(format!("reversed_{name}_pattern.ppm")),
            &r.pattern,
            0.0,
            1.0,
        )?;
        save_pgm(
            &out_dir.join(format!("reversed_{name}_mask.pgm")),
            &r.mask,
            0.0,
            1.0,
        )?;
        progress(&format!(
            "[fig2-4] {name}: mask L1 {:.2}, success {:.2}",
            r.l1_norm, r.attack_success
        ));
        rows.push((name.to_owned(), r.l1_norm));
    }
    Ok(rows)
}

/// Fig. 5: USB reverse engineering for all classes of an MNIST-like basic
/// CNN with the mask-size constraint removed (`L = CE − SSIM`, paper §A.6).
/// The backdoored class learns the trigger; clean classes learn their own
/// class features.
///
/// # Errors
///
/// Returns the first I/O error from writing an image dump.
pub fn fig5(out_dir: &Path, mut progress: impl FnMut(&str)) -> io::Result<Vec<f64>> {
    let data = SyntheticSpec::mnist()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100)
        .generate(779);
    let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 10).with_width(16);
    let target = 1; // the paper's Fig. 5 uses class 1
    let victim = BadNet::new(3, target, 0.15).execute(&data, arch, TrainConfig::new(30), 4);
    progress(&format!("[fig5] victim asr {:.2}", victim.asr()));
    let mut rng = StdRng::seed_from_u64(2);
    let (x, _) = data.clean_subset(48, &mut rng);
    // Save a triggered sample first (the figure's leftmost panel).
    if let GroundTruth::Backdoored {
        trigger: InjectedTrigger::Static(trigger),
        ..
    } = &victim.ground_truth
    {
        let carried = trigger.stamp_image(&data.test_images.index_axis0(0));
        save_image(
            &out_dir.join("fig5_triggered_input.ppm"),
            &carried,
            0.0,
            1.0,
        )?;
    }
    let refine = RefineConfig::standard().without_mask_constraint();
    let mut norms = Vec::new();
    for t in 0..10 {
        let uap = targeted_uap(&victim.model, &x, t, UapConfig::default());
        let refined = refine_uap(&victim.model, &x, t, &uap.perturbation, refine);
        let v = refined.effective_perturbation();
        save_image(&out_dir.join(format!("fig5_class{t}.ppm")), &v, 0.0, 1.0)?;
        norms.push(v.l1_norm() as f64);
        progress(&format!(
            "[fig5] class {t}: v' L1 {:.2}{}",
            v.l1_norm(),
            if t == target { "  <- true target" } else { "" }
        ));
    }
    Ok(norms)
}

/// Fig. 6: reversed triggers for every class by NC, TABOR, and USB, dumped
/// as a grid of images. Returns (method, class, mask L1) triples.
///
/// # Errors
///
/// Returns the first I/O error from writing an image dump.
pub fn fig6(
    out_dir: &Path,
    mut progress: impl FnMut(&str),
) -> io::Result<Vec<(String, usize, f64)>> {
    let (data, arch) = cifar_resnet_setup();
    let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 5);
    progress(&format!("[fig6] victim asr {:.2}", victim.asr()));
    let mut rng = StdRng::seed_from_u64(3);
    let (x, _) = data.clean_subset(32, &mut rng);
    let nc = NeuralCleanse::fast();
    let tabor = Tabor::fast();
    let usb = UsbDetector::fast();
    let defenses: [(&str, &dyn Defense); 3] = [("nc", &nc), ("tabor", &tabor), ("usb", &usb)];
    let mut rows = Vec::new();
    for (name, defense) in defenses {
        for t in 0..data.spec.num_classes {
            let r = defense.reverse_class(&victim.model, &x, t, &mut rng);
            save_image(
                &out_dir.join(format!("fig6_{name}_class{t}.ppm")),
                &r.pattern,
                0.0,
                1.0,
            )?;
            rows.push((name.to_owned(), t, r.l1_norm));
        }
        progress(&format!("[fig6] {name}: all classes reversed"));
    }
    Ok(rows)
}

/// §4.2 headline: USB per-class norms on one backdoored ResNet-18; the
/// backdoored class's norm must be far below the others' average (the
/// paper reports 4.49 vs 53.76). Returns `(target_norm, others_mean)`.
pub fn headline(mut progress: impl FnMut(&str)) -> (f64, f64) {
    let (data, arch) = cifar_resnet_setup();
    let victim = BadNet::new(2, 0, 0.15).execute(&data, arch, TrainConfig::new(20), 6);
    progress(&format!("[headline] victim asr {:.2}", victim.asr()));
    let mut rng = StdRng::seed_from_u64(4);
    let (x, _) = data.clean_subset(48, &mut rng);
    let usb = UsbDetector::new(UsbConfig::standard());
    let outcome = usb.inspect(&victim.model, &x, &mut rng);
    let target_norm = outcome.per_class[0].l1_norm;
    let others: Vec<f64> = outcome.per_class[1..].iter().map(|c| c.l1_norm).collect();
    let others_mean = others.iter().sum::<f64>() / others.len() as f64;
    progress(&format!(
        "[headline] USB L1(target 0) = {target_norm:.2}, mean others = {others_mean:.2}"
    ));
    progress(&format!("[headline] flagged: {:?}", outcome.flagged));
    // Show the reversed mask in the terminal, as the paper shows Fig. 3.
    progress(&format!(
        "[headline] reversed mask for class 0:\n{}",
        ascii_art(&outcome.per_class[0].mask)
    ));
    (target_norm, others_mean)
}

/// §4.4: generate the UAP once on model A, reuse it on model B (same
/// architecture, same data distribution). Returns
/// `(full_seconds, transfer_seconds, transfer_success)`.
pub fn transfer(mut progress: impl FnMut(&str)) -> (f64, f64, f64) {
    let (data, arch) = cifar_resnet_setup();
    let attack = BadNet::new(2, 0, 0.15);
    let a = attack.execute(&data, arch, TrainConfig::new(20), 7);
    let b = attack.execute(&data, arch, TrainConfig::new(20), 8);
    progress(&format!(
        "[transfer] victims: A asr {:.2}, B asr {:.2}",
        a.asr(),
        b.asr()
    ));
    let mut rng = StdRng::seed_from_u64(5);
    let (x, _) = data.clean_subset(32, &mut rng);
    // Full pipeline on B.
    let t0 = std::time::Instant::now();
    let uap_b = targeted_uap(&b.model, &x, 0, UapConfig::default());
    let _ = refine_uap(
        &b.model,
        &x,
        0,
        &uap_b.perturbation,
        RefineConfig::standard(),
    );
    let full = t0.elapsed().as_secs_f64();
    // Transfer: UAP from A, refinement only on B.
    let uap_a = targeted_uap(&a.model, &x, 0, UapConfig::default());
    let t0 = std::time::Instant::now();
    let out = transfer_uap(
        &b.model,
        &x,
        0,
        &uap_a.perturbation,
        RefineConfig::standard(),
    );
    let transfer_time = t0.elapsed().as_secs_f64();
    progress(&format!(
        "[transfer] full pipeline {:.2}s vs transfer {:.2}s; raw transfer success {:.2}, refined {:.2}",
        full, transfer_time, out.raw_transfer_success, out.refined.success_rate
    ));
    (full, transfer_time, out.refined.success_rate)
}

/// Default output directory for figure dumps.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/repro")
}
