//! Table 7: per-class detection wall-clock for NC, TABOR, and USB.
//!
//! The paper measures GPU minutes per class on EfficientNet-B0/ImageNet;
//! here it is CPU seconds per class on the scaled substrate. The claim
//! being reproduced is the *ordering and ratio*: TABOR > NC ≫ USB, because
//! USB's optimisation starts from an informative UAP and needs far fewer
//! iterations.

use crate::grid::{table2, DefenseSuite};
use crate::grid::{train_victim, CaseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_defenses::Defense;

/// Per-class timing for one defense.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Defense name.
    pub method: &'static str,
    /// Seconds spent reverse-engineering each class.
    pub per_class_seconds: Vec<f64>,
}

impl TimingRow {
    /// Total seconds across classes.
    pub fn total(&self) -> f64 {
        self.per_class_seconds.iter().sum()
    }
}

/// A Table 7 style report: per-class timing per defense, averaged over
/// `models` victims.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Case description.
    pub label: String,
    /// One row per defense.
    pub rows: Vec<TimingRow>,
}

/// Measures per-class detection time on the Table 2 setting (EfficientNet).
pub fn run_timing(
    models: usize,
    suite: &DefenseSuite,
    mut progress: impl FnMut(&str),
) -> TimingReport {
    let spec = table2();
    let case = CaseSpec {
        attack: crate::grid::AttackChoice::BadNet { trigger: 3 },
        poison_rate: 0.15,
    };
    let k = spec.dataset.num_classes;
    let mut rows = vec![
        TimingRow {
            method: "NC",
            per_class_seconds: vec![0.0; k],
        },
        TimingRow {
            method: "TABOR",
            per_class_seconds: vec![0.0; k],
        },
        TimingRow {
            method: "USB",
            per_class_seconds: vec![0.0; k],
        },
    ];
    for m in 0..models {
        let seed = 9000 + m as u64;
        let mut victim = train_victim(&spec, &case, seed);
        progress(&format!(
            "[table7] model {}/{}: acc {:.2} asr {:.2}",
            m + 1,
            models,
            victim.clean_accuracy,
            victim.asr()
        ));
        let data = spec.dataset.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7131);
        let (clean_x, _) = data.clean_subset(spec.defense_samples, &mut rng);
        let defenses: [&dyn Defense; 3] = [&suite.nc, &suite.tabor, &suite.usb];
        for (di, defense) in defenses.iter().enumerate() {
            for t in 0..k {
                let t0 = std::time::Instant::now();
                let _ = defense.reverse_class(&mut victim.model, &clean_x, t, &mut rng);
                rows[di].per_class_seconds[t] += t0.elapsed().as_secs_f64() / models as f64;
            }
            progress(&format!(
                "[table7]   {}: {:.1}s total",
                defense.name(),
                rows[di].total() * models as f64 / (m + 1) as f64
            ));
        }
    }
    TimingReport {
        label: format!("{} ({} models)", spec.title, models),
        rows,
    }
}

/// Formats a [`TimingReport`] like the paper's Table 7 (time per class).
pub fn format_timing(report: &TimingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== table7 — {} ===\n", report.label));
    let k = report.rows.first().map_or(0, |r| r.per_class_seconds.len());
    out.push_str(&format!("{:<8}", "Method"));
    for t in 0..k {
        out.push_str(&format!(" {:>7}", format!("cls{t}")));
    }
    out.push_str(&format!(" {:>8}\n", "total"));
    for row in &report.rows {
        out.push_str(&format!("{:<8}", row.method));
        for s in &row.per_class_seconds {
            out.push_str(&format!(" {:>7.2}", s));
        }
        out.push_str(&format!(" {:>8.2}\n", row.total()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_includes_all_methods() {
        let report = TimingReport {
            label: "x".to_owned(),
            rows: vec![
                TimingRow {
                    method: "NC",
                    per_class_seconds: vec![1.0, 2.0],
                },
                TimingRow {
                    method: "USB",
                    per_class_seconds: vec![0.5, 0.5],
                },
            ],
        };
        let s = format_timing(&report);
        assert!(s.contains("NC"));
        assert!(s.contains("USB"));
        assert!(s.contains("3.00"), "totals rendered");
    }
}
