//! Table 7: per-class detection wall-clock for NC, TABOR, and USB.
//!
//! The paper measures GPU minutes per class on EfficientNet-B0/ImageNet;
//! here it is CPU seconds per class on the scaled substrate. The claim
//! being reproduced is the *ordering and ratio*: TABOR > NC ≫ USB, because
//! USB's optimisation starts from an informative UAP and needs far fewer
//! iterations.
//!
//! Beyond the paper's table, the harness also splits USB's per-class time
//! into its two stages — Alg. 1 (targeted UAP) vs Alg. 2 (refinement) —
//! which is the number that tells you where an optimisation PR should aim.
//! Measurements run the classes **sequentially on one thread** regardless
//! of `USB_THREADS`: concurrent classes would contend for cores and
//! distort exactly the per-class numbers this module exists to report.

use crate::grid::{table2, DefenseSuite};
use crate::grid::{train_victim, CaseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_defenses::Defense;

/// Wall time per class for one named pipeline stage of a defense.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name ("uap" = Alg. 1, "refine" = Alg. 2).
    pub stage: &'static str,
    /// Seconds this stage spent on each class.
    pub per_class_seconds: Vec<f64>,
}

impl StageRow {
    /// Total seconds across classes.
    pub fn total(&self) -> f64 {
        self.per_class_seconds.iter().sum()
    }
}

/// Per-class timing for one defense.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Defense name.
    pub method: &'static str,
    /// Seconds spent reverse-engineering each class.
    pub per_class_seconds: Vec<f64>,
    /// Per-stage breakdown when the defense exposes stages (USB: Alg. 1
    /// vs Alg. 2); empty for monolithic defenses (NC, TABOR).
    pub stages: Vec<StageRow>,
}

impl TimingRow {
    /// Total seconds across classes.
    pub fn total(&self) -> f64 {
        self.per_class_seconds.iter().sum()
    }
}

/// A Table 7 style report: per-class timing per defense, averaged over
/// `models` victims.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Case description.
    pub label: String,
    /// One row per defense.
    pub rows: Vec<TimingRow>,
}

/// Measures per-class detection time on the Table 2 setting (EfficientNet).
pub fn run_timing(
    models: usize,
    suite: &DefenseSuite,
    mut progress: impl FnMut(&str),
) -> TimingReport {
    let spec = table2();
    let case = CaseSpec {
        attack: crate::grid::AttackChoice::BadNet { trigger: 3 },
        poison_rate: 0.15,
    };
    let k = spec.dataset.num_classes;
    let mut rows = vec![
        TimingRow {
            method: "NC",
            per_class_seconds: vec![0.0; k],
            stages: Vec::new(),
        },
        TimingRow {
            method: "TABOR",
            per_class_seconds: vec![0.0; k],
            stages: Vec::new(),
        },
        TimingRow {
            method: "USB",
            per_class_seconds: vec![0.0; k],
            stages: vec![
                StageRow {
                    stage: "uap",
                    per_class_seconds: vec![0.0; k],
                },
                StageRow {
                    stage: "refine",
                    per_class_seconds: vec![0.0; k],
                },
            ],
        },
    ];
    for m in 0..models {
        let seed = 9000 + m as u64;
        let victim = train_victim(&spec, &case, seed);
        progress(&format!(
            "[table7] model {}/{}: acc {:.2} asr {:.2}",
            m + 1,
            models,
            victim.clean_accuracy,
            victim.asr()
        ));
        let data = spec.dataset.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7131);
        let (clean_x, _) = data.clean_subset(spec.defense_samples, &mut rng);
        let baselines: [&dyn Defense; 2] = [&suite.nc, &suite.tabor];
        for (di, defense) in baselines.iter().enumerate() {
            for t in 0..k {
                let t0 = std::time::Instant::now();
                let _ = defense.reverse_class(&victim.model, &clean_x, t, &mut rng);
                rows[di].per_class_seconds[t] += t0.elapsed().as_secs_f64() / models as f64;
            }
            progress(&format!(
                "[table7]   {}: {:.1}s total",
                defense.name(),
                rows[di].total() * models as f64 / (m + 1) as f64
            ));
        }
        // USB goes through the timed entry point so the report can split
        // Alg. 1 (UAP) from Alg. 2 (refinement).
        for t in 0..k {
            let t0 = std::time::Instant::now();
            let (_, stages) = suite
                .usb
                .reverse_class_timed(&victim.model, &clean_x, t, &mut rng);
            rows[2].per_class_seconds[t] += t0.elapsed().as_secs_f64() / models as f64;
            rows[2].stages[0].per_class_seconds[t] += stages.uap / models as f64;
            rows[2].stages[1].per_class_seconds[t] += stages.refine / models as f64;
        }
        progress(&format!(
            "[table7]   USB: {:.1}s total (uap {:.1}s, refine {:.1}s)",
            rows[2].total() * models as f64 / (m + 1) as f64,
            rows[2].stages[0].total() * models as f64 / (m + 1) as f64,
            rows[2].stages[1].total() * models as f64 / (m + 1) as f64,
        ));
    }
    TimingReport {
        label: format!("{} ({} models)", spec.title, models),
        rows,
    }
}

/// Serialises a [`TimingReport`] as the machine-readable `BENCH.json`
/// document that tracks the perf trajectory across PRs (CI archives one
/// per run).
///
/// The format is hand-rolled JSON (no serde in this workspace): a flat
/// object with the run metadata — config label, model count, the worker
/// count an inspection would resolve to on this machine — and one entry
/// per defense with per-class seconds, totals, and USB's Alg. 1 / Alg. 2
/// stage split. Numbers are seconds with microsecond precision.
pub fn timing_json(report: &TimingReport, config: &str, models: usize) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn secs(v: &[f64]) -> String {
        let items: Vec<String> = v.iter().map(|s| format!("{s:.6}")).collect();
        format!("[{}]", items.join(","))
    }
    let mut rows = Vec::new();
    for row in &report.rows {
        let stages: Vec<String> = row
            .stages
            .iter()
            .map(|st| {
                format!(
                    r#"{{"stage":"{}","per_class_seconds":{},"total":{:.6}}}"#,
                    esc(st.stage),
                    secs(&st.per_class_seconds),
                    st.total()
                )
            })
            .collect();
        rows.push(format!(
            r#"{{"method":"{}","per_class_seconds":{},"total":{:.6},"stages":[{}]}}"#,
            esc(row.method),
            secs(&row.per_class_seconds),
            row.total(),
            stages.join(",")
        ));
    }
    format!(
        "{{\"schema\":\"usb-bench/1\",\"experiment\":\"timing\",\"label\":\"{}\",\
         \"config\":\"{}\",\"models\":{},\"workers\":{},\"kernel\":\"{}\",\"rows\":[{}]}}\n",
        esc(&report.label),
        esc(config),
        models,
        usb_tensor::par::worker_threads(),
        usb_tensor::kernels::tier_name(),
        rows.join(",")
    )
}

/// Per-method totals extracted from a `BENCH.json` document: the unit the
/// regression gate compares — one total per defense plus one per named
/// stage (USB's Alg. 1 / Alg. 2 split).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTotals {
    /// Defense name ("NC", "TABOR", "USB").
    pub method: String,
    /// Total seconds across classes.
    pub total: f64,
    /// `(stage name, total seconds)` per exposed stage.
    pub stages: Vec<(String, f64)>,
}

/// Extracts [`BenchTotals`] from a [`TimingReport`] (the in-memory side of
/// the comparison — what the current run produced).
pub fn report_totals(report: &TimingReport) -> Vec<BenchTotals> {
    report
        .rows
        .iter()
        .map(|row| BenchTotals {
            method: row.method.to_owned(),
            total: row.total(),
            stages: row
                .stages
                .iter()
                .map(|st| (st.stage.to_owned(), st.total()))
                .collect(),
        })
        .collect()
}

/// Parses the per-method / per-stage totals back out of a `BENCH.json`
/// document produced by [`timing_json`] (the baseline side of the
/// comparison).
///
/// This is a scanner for the fixed field order `timing_json` emits — not a
/// general JSON parser (the workspace has none); it rejects documents
/// whose schema line is missing so a foreign file fails loudly instead of
/// comparing garbage.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_bench_totals(json: &str) -> Result<Vec<BenchTotals>, String> {
    if !json.contains(r#""schema":"usb-bench/1""#) {
        return Err("not a usb-bench/1 document (schema field missing)".to_owned());
    }
    /// The number following the first occurrence of `key` in `s`.
    fn number_after(s: &str, key: &str) -> Option<f64> {
        let start = s.find(key)? + key.len();
        let rest = &s[start..];
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }
    // Split the document into per-method segments.
    const METHOD: &str = r#"{"method":""#;
    const STAGE: &str = r#"{"stage":""#;
    let mut starts = Vec::new();
    let mut from = 0usize;
    while let Some(p) = json[from..].find(METHOD) {
        starts.push(from + p);
        from += p + METHOD.len();
    }
    if starts.is_empty() {
        return Err("no method rows found".to_owned());
    }
    let mut out = Vec::new();
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(json.len());
        let seg = &json[start + METHOD.len()..end];
        let name_end = seg.find('"').ok_or("unterminated method name")?;
        let method = seg[..name_end].to_owned();
        // The row's own total precedes the "stages" array; searching only
        // up to it keeps stage totals from shadowing the row total.
        let stages_pos = seg
            .find(r#""stages":"#)
            .ok_or_else(|| format!("row {method}: stages field missing"))?;
        let total = number_after(&seg[..stages_pos], r#""total":"#)
            .ok_or_else(|| format!("row {method}: bad or missing total"))?;
        let mut stages = Vec::new();
        let mut sc = &seg[stages_pos..];
        while let Some(spos) = sc.find(STAGE) {
            let s = &sc[spos + STAGE.len()..];
            let send = s.find('"').ok_or("unterminated stage name")?;
            let stage = s[..send].to_owned();
            // The first "total" after the stage name belongs to it (the
            // per_class_seconds array between them holds no keys).
            let total_pos = s
                .find(r#""total":"#)
                .ok_or_else(|| format!("stage {stage}: total field missing"))?;
            let stotal = number_after(&s[total_pos..], r#""total":"#)
                .ok_or_else(|| format!("stage {stage}: bad total"))?;
            stages.push((stage, stotal));
            sc = &s[total_pos..];
        }
        out.push(BenchTotals {
            method,
            total,
            stages,
        });
    }
    Ok(out)
}

/// Compares a current run against a baseline, returning one human-readable
/// line per **regression**: a method or stage whose total exceeds the
/// (speed-normalised) baseline by more than `tolerance` (e.g. `0.25` =
/// 25%). Methods or stages absent from the baseline are ignored (new
/// stages are not regressions); improvements are never reported.
///
/// # Machine-speed normalisation
///
/// Absolute seconds are not comparable across machines — CI runners vary
/// by far more than 25% run-to-run, and the baseline is committed from a
/// developer box. Each entry is therefore gated against its baseline
/// scaled by a **leave-one-out** speed estimate: the ratio of current to
/// baseline grand totals over the *other* shared methods, so a
/// regression in the method under test cannot inflate its own allowance.
/// With a single shared method there is no "other" to estimate machine
/// speed from: the un-normalisable method total is skipped (a documented
/// blind spot, not a silent vacuous pass) and its stages are gated on
/// their *share of the method total* instead, which is
/// machine-independent by construction. A *uniform* slowdown — what a
/// slower machine looks like —
/// cancels exactly; a regression concentrated in one method or stage
/// shifts that entry relative to its peers and survives the scaling. The
/// deliberate blind spot: a change that slows every method by the same
/// factor is indistinguishable from a slow runner without reference
/// hardware, and this gate does not claim to catch it.
pub fn compare_bench_totals(
    current: &[BenchTotals],
    baseline: &[BenchTotals],
    tolerance: f64,
) -> Vec<String> {
    // Grand totals over the shared methods only, so a method added or
    // removed since the baseline cannot skew the speed estimate.
    let mut cur_sum = 0.0f64;
    let mut base_sum = 0.0f64;
    for cur in current {
        if let Some(base) = baseline.iter().find(|b| b.method == cur.method) {
            cur_sum += cur.total;
            base_sum += base.total;
        }
    }
    if base_sum <= 0.0 {
        return Vec::new(); // no overlap with the baseline: nothing to gate
    }
    let mut regressions = Vec::new();
    fn check(
        out: &mut Vec<String>,
        tolerance: f64,
        label: String,
        now: f64,
        then_raw: f64,
        scale: f64,
    ) {
        let then = then_raw * scale;
        // Sub-10ms baselines are noise at wall-clock resolution.
        if then > 0.01 && now > then * (1.0 + tolerance) {
            out.push(format!(
                "{label}: {now:.3}s vs speed-normalised baseline {then:.3}s \
                 (+{:.0}%, tolerance {:.0}%, machine scale {scale:.2}x)",
                (now / then - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.method == cur.method) else {
            continue;
        };
        // Leave-one-out: estimate machine speed from the *other* methods.
        let (rest_cur, rest_base) = (cur_sum - cur.total, base_sum - base.total);
        if rest_base > 0.0 {
            let scale = rest_cur / rest_base;
            check(
                &mut regressions,
                tolerance,
                cur.method.clone(),
                cur.total,
                base.total,
                scale,
            );
            for (stage, now) in &cur.stages {
                if let Some((_, then)) = base.stages.iter().find(|(s, _)| s == stage) {
                    check(
                        &mut regressions,
                        tolerance,
                        format!("{}/{stage}", cur.method),
                        *now,
                        *then,
                        scale,
                    );
                }
            }
        } else if cur.total > 0.0 && base.total > 0.0 {
            // Sole shared method: the global ratio would make the method
            // gate vacuous (normalised baseline == current total), so skip
            // the total and gate each stage's *share of the method*
            // instead — machine-independent by construction.
            for (stage, now) in &cur.stages {
                if let Some((_, then)) = base.stages.iter().find(|(s, _)| s == stage) {
                    let now_share = now / cur.total;
                    let then_share = then / base.total;
                    if *then > 0.01 && now_share > then_share * (1.0 + tolerance) {
                        regressions.push(format!(
                            "{}/{stage}: {:.1}% of method vs baseline {:.1}% \
                             (+{:.0}%, tolerance {:.0}%; sole method — share gate)",
                            cur.method,
                            now_share * 100.0,
                            then_share * 100.0,
                            (now_share / then_share - 1.0) * 100.0,
                            tolerance * 100.0
                        ));
                    }
                }
            }
        }
    }
    regressions
}

/// Latency percentiles over a set of request samples — the serve layer's
/// unit of measurement (`usb-repro loadgen` reports warm-daemon verdict
/// latency with these).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub n: usize,
    /// Arithmetic mean, milliseconds.
    pub mean_ms: f64,
    /// Minimum, milliseconds.
    pub min_ms: f64,
    /// Median (p50), milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Summarises a set of millisecond samples (empty input yields all
    /// zeros). Percentiles use the nearest-rank method on the sorted
    /// samples, so `p99` of fewer than 100 samples is the maximum.
    pub fn from_millis(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must be finite"));
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencyStats {
            n: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min_ms: sorted[0],
            p50_ms: rank(0.50),
            p90_ms: rank(0.90),
            p99_ms: rank(0.99),
            max_ms: sorted[sorted.len() - 1],
        }
    }
}

/// Formats a [`TimingReport`] like the paper's Table 7 (time per class),
/// with indented per-stage rows under defenses that expose them.
pub fn format_timing(report: &TimingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== table7 — {} ===\n", report.label));
    let k = report.rows.first().map_or(0, |r| r.per_class_seconds.len());
    out.push_str(&format!("{:<10}", "Method"));
    for t in 0..k {
        out.push_str(&format!(" {:>7}", format!("cls{t}")));
    }
    out.push_str(&format!(" {:>8}\n", "total"));
    for row in &report.rows {
        out.push_str(&format!("{:<10}", row.method));
        for s in &row.per_class_seconds {
            out.push_str(&format!(" {:>7.2}", s));
        }
        out.push_str(&format!(" {:>8.2}\n", row.total()));
        for stage in &row.stages {
            out.push_str(&format!("{:<10}", format!("  ·{}", stage.stage)));
            for s in &stage.per_class_seconds {
                out.push_str(&format!(" {:>7.2}", s));
            }
            out.push_str(&format!(" {:>8.2}\n", stage.total()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_use_nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = LatencyStats::from_millis(&samples);
        assert_eq!(stats.n, 100);
        assert_eq!(stats.min_ms, 1.0);
        assert_eq!(stats.p50_ms, 50.0);
        assert_eq!(stats.p90_ms, 90.0);
        assert_eq!(stats.p99_ms, 99.0);
        assert_eq!(stats.max_ms, 100.0);
        assert!((stats.mean_ms - 50.5).abs() < 1e-12);
        // Few samples: upper percentiles saturate at the maximum.
        let small = LatencyStats::from_millis(&[3.0, 1.0, 2.0]);
        assert_eq!(small.p50_ms, 2.0);
        assert_eq!(small.p99_ms, 3.0);
        assert_eq!(LatencyStats::from_millis(&[]).n, 0);
    }

    #[test]
    fn formatting_includes_all_methods() {
        let report = TimingReport {
            label: "x".to_owned(),
            rows: vec![
                TimingRow {
                    method: "NC",
                    per_class_seconds: vec![1.0, 2.0],
                    stages: Vec::new(),
                },
                TimingRow {
                    method: "USB",
                    per_class_seconds: vec![0.5, 0.5],
                    stages: vec![
                        StageRow {
                            stage: "uap",
                            per_class_seconds: vec![0.4, 0.3],
                        },
                        StageRow {
                            stage: "refine",
                            per_class_seconds: vec![0.1, 0.2],
                        },
                    ],
                },
            ],
        };
        let s = format_timing(&report);
        assert!(s.contains("NC"));
        assert!(s.contains("USB"));
        assert!(s.contains("3.00"), "totals rendered");
        assert!(s.contains("·uap"), "stage rows rendered");
        assert!(s.contains("·refine"));
        assert!(s.contains("0.70"), "stage totals rendered");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = TimingReport {
            label: "x (1 models)".to_owned(),
            rows: vec![TimingRow {
                method: "USB",
                per_class_seconds: vec![0.5, 0.25],
                stages: vec![StageRow {
                    stage: "uap",
                    per_class_seconds: vec![0.4, 0.1],
                }],
            }],
        };
        let json = timing_json(&report, "fast", 1);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains(r#""schema":"usb-bench/1""#));
        assert!(json.contains(r#""method":"USB""#));
        assert!(json.contains(r#""per_class_seconds":[0.500000,0.250000]"#));
        assert!(json.contains(r#""total":0.750000"#));
        assert!(json.contains(r#""stage":"uap""#));
        assert!(json.contains(r#""config":"fast""#));
        assert!(json.contains(r#""workers":"#));
        // The kernel tier is recorded so cross-machine comparisons are
        // interpretable; the value is whatever this process resolved to.
        assert!(json.contains(&format!(
            r#""kernel":"{}""#,
            usb_tensor::kernels::tier_name()
        )));
        // Balanced braces/brackets (a cheap well-formedness proxy without a
        // JSON parser in the workspace).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn stage_row_totals() {
        let row = StageRow {
            stage: "uap",
            per_class_seconds: vec![0.25, 0.5, 0.25],
        };
        assert!((row.total() - 1.0).abs() < 1e-12);
    }

    fn sample_report() -> TimingReport {
        TimingReport {
            label: "x (1 models)".to_owned(),
            rows: vec![
                TimingRow {
                    method: "NC",
                    per_class_seconds: vec![1.0, 2.0],
                    stages: Vec::new(),
                },
                TimingRow {
                    method: "USB",
                    per_class_seconds: vec![0.5, 0.25],
                    stages: vec![
                        StageRow {
                            stage: "uap",
                            per_class_seconds: vec![0.4, 0.1],
                        },
                        StageRow {
                            stage: "refine",
                            per_class_seconds: vec![0.1, 0.15],
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn bench_totals_roundtrip_through_json() {
        let report = sample_report();
        let json = timing_json(&report, "fast", 1);
        let parsed = parse_bench_totals(&json).expect("parse back our own document");
        assert_eq!(parsed, report_totals(&report));
        // Spot-check the values survived with full precision.
        assert_eq!(parsed[1].method, "USB");
        assert!((parsed[1].total - 0.75).abs() < 1e-9);
        assert!((parsed[1].stages[0].1 - 0.5).abs() < 1e-9);
        assert!((parsed[1].stages[1].1 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse_bench_totals("{}").is_err());
        assert!(parse_bench_totals(r#"{"schema":"usb-bench/1"}"#).is_err());
    }

    /// The `kernel` field is schema-additive: documents predating it (the
    /// committed PR ≤ 9 baselines) and documents carrying it must parse to
    /// the same totals, so `--compare` works across the boundary.
    #[test]
    fn compare_is_indifferent_to_the_kernel_field() {
        let report = sample_report();
        let with_kernel = timing_json(&report, "fast", 1);
        assert!(with_kernel.contains(r#""kernel":""#));
        let without_kernel = {
            let pos = with_kernel.find(r#""kernel":""#).unwrap();
            let end = pos + with_kernel[pos + 10..].find('"').unwrap() + 11;
            format!("{}{}", &with_kernel[..pos], &with_kernel[end + 1..])
        };
        assert!(!without_kernel.contains(r#""kernel""#));
        let new = parse_bench_totals(&with_kernel).expect("new-format document");
        let old = parse_bench_totals(&without_kernel).expect("old-format document");
        assert_eq!(new, old, "totals must not depend on the kernel field");
        assert!(compare_bench_totals(&new, &old, 0.25).is_empty());
        assert!(compare_bench_totals(&old, &new, 0.25).is_empty());
    }

    #[test]
    fn sole_method_gates_stage_shares_not_vacuous_totals() {
        // One shared method: no peers to estimate machine speed from.
        let base = vec![BenchTotals {
            method: "USB".to_owned(),
            total: 1.0,
            stages: vec![("uap".to_owned(), 0.4), ("refine".to_owned(), 0.6)],
        }];
        // Uniformly slower (slower machine): shares unchanged, passes.
        let slower = vec![BenchTotals {
            method: "USB".to_owned(),
            total: 3.0,
            stages: vec![("uap".to_owned(), 1.2), ("refine".to_owned(), 1.8)],
        }];
        assert!(compare_bench_totals(&slower, &base, 0.25).is_empty());
        // One stage's share ballooning is caught even without peers.
        let skewed = vec![BenchTotals {
            method: "USB".to_owned(),
            total: 2.0,
            stages: vec![("uap".to_owned(), 1.6), ("refine".to_owned(), 0.4)],
        }];
        let lines = compare_bench_totals(&skewed, &base, 0.25);
        assert!(
            lines.iter().any(|l| l.starts_with("USB/uap:")),
            "share gate missed the skew: {lines:?}"
        );
    }

    #[test]
    fn compare_skips_entries_absent_from_the_baseline() {
        let totals = |method: &str, total: f64, stages: &[(&str, f64)]| BenchTotals {
            method: method.to_owned(),
            total,
            stages: stages.iter().map(|(s, t)| ((*s).to_owned(), *t)).collect(),
        };
        let base = vec![
            totals("NC", 1.0, &[("uap", 1.0)]),
            totals("USB", 1.0, &[("uap", 0.5), ("refine", 0.5)]),
            // Retired since the baseline was committed: present there,
            // absent from the current run.
            totals("Retired", 40.0, &[("uap", 40.0)]),
        ];
        // The current run adds a method the baseline has never seen (with
        // a huge total that would wreck the machine-speed estimate if it
        // were counted) and drops the retired one. Both must be skipped —
        // not treated as zero-second baselines — so the shared methods
        // compare clean.
        let current = vec![
            totals("NC", 1.0, &[("uap", 1.0)]),
            totals("USB", 1.0, &[("uap", 0.5), ("refine", 0.5)]),
            totals("NewKid", 50.0, &[("uap", 50.0)]),
        ];
        assert!(
            compare_bench_totals(&current, &base, 0.25).is_empty(),
            "methods absent from one side must not gate or skew the scale"
        );
        // A real regression among the shared methods is still caught with
        // the absentees in the mix.
        let mut regressed = current.clone();
        regressed[1] = totals("USB", 2.0, &[("uap", 0.5), ("refine", 1.5)]);
        let lines = compare_bench_totals(&regressed, &base, 0.25);
        assert!(
            lines.iter().any(|l| l.starts_with("USB/refine:")),
            "shared-method regression missed among absentees: {lines:?}"
        );
        assert!(
            lines
                .iter()
                .all(|l| !l.starts_with("NewKid") && !l.starts_with("Retired")),
            "absent methods leaked into the gate: {lines:?}"
        );
        // No overlap at all: nothing to gate, not a spurious failure.
        let disjoint = vec![totals("NewKid", 50.0, &[("uap", 50.0)])];
        assert!(compare_bench_totals(&disjoint, &base, 0.25).is_empty());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = report_totals(&sample_report());
        // Identical run: no regressions.
        assert!(compare_bench_totals(&base, &base, 0.25).is_empty());
        // Uniformly slower — even 2x — looks like a slower machine and is
        // cancelled by the speed normalisation, not reported.
        for factor in [1.2, 2.0] {
            let mut slower = base.clone();
            for r in &mut slower {
                r.total *= factor;
                for s in &mut r.stages {
                    s.1 *= factor;
                }
            }
            assert!(
                compare_bench_totals(&slower, &base, 0.25).is_empty(),
                "uniform {factor}x must be absorbed as machine speed"
            );
        }
        // One stage 2x slower: exactly that stage (and the method total
        // it drags past the gate) is reported.
        let mut regressed = base.clone();
        regressed[1].stages[1].1 *= 2.0;
        regressed[1].total = regressed[1].stages[0].1 + regressed[1].stages[1].1;
        let lines = compare_bench_totals(&regressed, &base, 0.25);
        assert!(
            lines.iter().any(|l| l.starts_with("USB/refine:")),
            "missing stage regression: {lines:?}"
        );
        assert!(lines.iter().all(|l| !l.starts_with("NC")));
        // Faster runs are never regressions.
        let mut faster = base.clone();
        for r in &mut faster {
            r.total *= 0.5;
            for s in &mut r.stages {
                s.1 *= 0.5;
            }
        }
        assert!(compare_bench_totals(&faster, &base, 0.25).is_empty());
    }
}
