//! Table 7: per-class detection wall-clock for NC, TABOR, and USB.
//!
//! The paper measures GPU minutes per class on EfficientNet-B0/ImageNet;
//! here it is CPU seconds per class on the scaled substrate. The claim
//! being reproduced is the *ordering and ratio*: TABOR > NC ≫ USB, because
//! USB's optimisation starts from an informative UAP and needs far fewer
//! iterations.
//!
//! Beyond the paper's table, the harness also splits USB's per-class time
//! into its two stages — Alg. 1 (targeted UAP) vs Alg. 2 (refinement) —
//! which is the number that tells you where an optimisation PR should aim.
//! Measurements run the classes **sequentially on one thread** regardless
//! of `USB_THREADS`: concurrent classes would contend for cores and
//! distort exactly the per-class numbers this module exists to report.

use crate::grid::{table2, DefenseSuite};
use crate::grid::{train_victim, CaseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_defenses::Defense;

/// Wall time per class for one named pipeline stage of a defense.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name ("uap" = Alg. 1, "refine" = Alg. 2).
    pub stage: &'static str,
    /// Seconds this stage spent on each class.
    pub per_class_seconds: Vec<f64>,
}

impl StageRow {
    /// Total seconds across classes.
    pub fn total(&self) -> f64 {
        self.per_class_seconds.iter().sum()
    }
}

/// Per-class timing for one defense.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Defense name.
    pub method: &'static str,
    /// Seconds spent reverse-engineering each class.
    pub per_class_seconds: Vec<f64>,
    /// Per-stage breakdown when the defense exposes stages (USB: Alg. 1
    /// vs Alg. 2); empty for monolithic defenses (NC, TABOR).
    pub stages: Vec<StageRow>,
}

impl TimingRow {
    /// Total seconds across classes.
    pub fn total(&self) -> f64 {
        self.per_class_seconds.iter().sum()
    }
}

/// A Table 7 style report: per-class timing per defense, averaged over
/// `models` victims.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Case description.
    pub label: String,
    /// One row per defense.
    pub rows: Vec<TimingRow>,
}

/// Measures per-class detection time on the Table 2 setting (EfficientNet).
pub fn run_timing(
    models: usize,
    suite: &DefenseSuite,
    mut progress: impl FnMut(&str),
) -> TimingReport {
    let spec = table2();
    let case = CaseSpec {
        attack: crate::grid::AttackChoice::BadNet { trigger: 3 },
        poison_rate: 0.15,
    };
    let k = spec.dataset.num_classes;
    let mut rows = vec![
        TimingRow {
            method: "NC",
            per_class_seconds: vec![0.0; k],
            stages: Vec::new(),
        },
        TimingRow {
            method: "TABOR",
            per_class_seconds: vec![0.0; k],
            stages: Vec::new(),
        },
        TimingRow {
            method: "USB",
            per_class_seconds: vec![0.0; k],
            stages: vec![
                StageRow {
                    stage: "uap",
                    per_class_seconds: vec![0.0; k],
                },
                StageRow {
                    stage: "refine",
                    per_class_seconds: vec![0.0; k],
                },
            ],
        },
    ];
    for m in 0..models {
        let seed = 9000 + m as u64;
        let mut victim = train_victim(&spec, &case, seed);
        progress(&format!(
            "[table7] model {}/{}: acc {:.2} asr {:.2}",
            m + 1,
            models,
            victim.clean_accuracy,
            victim.asr()
        ));
        let data = spec.dataset.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7131);
        let (clean_x, _) = data.clean_subset(spec.defense_samples, &mut rng);
        let baselines: [&dyn Defense; 2] = [&suite.nc, &suite.tabor];
        for (di, defense) in baselines.iter().enumerate() {
            for t in 0..k {
                let t0 = std::time::Instant::now();
                let _ = defense.reverse_class(&mut victim.model, &clean_x, t, &mut rng);
                rows[di].per_class_seconds[t] += t0.elapsed().as_secs_f64() / models as f64;
            }
            progress(&format!(
                "[table7]   {}: {:.1}s total",
                defense.name(),
                rows[di].total() * models as f64 / (m + 1) as f64
            ));
        }
        // USB goes through the timed entry point so the report can split
        // Alg. 1 (UAP) from Alg. 2 (refinement).
        for t in 0..k {
            let t0 = std::time::Instant::now();
            let (_, stages) =
                suite
                    .usb
                    .reverse_class_timed(&mut victim.model, &clean_x, t, &mut rng);
            rows[2].per_class_seconds[t] += t0.elapsed().as_secs_f64() / models as f64;
            rows[2].stages[0].per_class_seconds[t] += stages.uap / models as f64;
            rows[2].stages[1].per_class_seconds[t] += stages.refine / models as f64;
        }
        progress(&format!(
            "[table7]   USB: {:.1}s total (uap {:.1}s, refine {:.1}s)",
            rows[2].total() * models as f64 / (m + 1) as f64,
            rows[2].stages[0].total() * models as f64 / (m + 1) as f64,
            rows[2].stages[1].total() * models as f64 / (m + 1) as f64,
        ));
    }
    TimingReport {
        label: format!("{} ({} models)", spec.title, models),
        rows,
    }
}

/// Serialises a [`TimingReport`] as the machine-readable `BENCH.json`
/// document that tracks the perf trajectory across PRs (CI archives one
/// per run).
///
/// The format is hand-rolled JSON (no serde in this workspace): a flat
/// object with the run metadata — config label, model count, the worker
/// count an inspection would resolve to on this machine — and one entry
/// per defense with per-class seconds, totals, and USB's Alg. 1 / Alg. 2
/// stage split. Numbers are seconds with microsecond precision.
pub fn timing_json(report: &TimingReport, config: &str, models: usize) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn secs(v: &[f64]) -> String {
        let items: Vec<String> = v.iter().map(|s| format!("{s:.6}")).collect();
        format!("[{}]", items.join(","))
    }
    let mut rows = Vec::new();
    for row in &report.rows {
        let stages: Vec<String> = row
            .stages
            .iter()
            .map(|st| {
                format!(
                    r#"{{"stage":"{}","per_class_seconds":{},"total":{:.6}}}"#,
                    esc(st.stage),
                    secs(&st.per_class_seconds),
                    st.total()
                )
            })
            .collect();
        rows.push(format!(
            r#"{{"method":"{}","per_class_seconds":{},"total":{:.6},"stages":[{}]}}"#,
            esc(row.method),
            secs(&row.per_class_seconds),
            row.total(),
            stages.join(",")
        ));
    }
    format!(
        "{{\"schema\":\"usb-bench/1\",\"experiment\":\"timing\",\"label\":\"{}\",\
         \"config\":\"{}\",\"models\":{},\"workers\":{},\"rows\":[{}]}}\n",
        esc(&report.label),
        esc(config),
        models,
        usb_tensor::par::worker_threads(),
        rows.join(",")
    )
}

/// Formats a [`TimingReport`] like the paper's Table 7 (time per class),
/// with indented per-stage rows under defenses that expose them.
pub fn format_timing(report: &TimingReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== table7 — {} ===\n", report.label));
    let k = report.rows.first().map_or(0, |r| r.per_class_seconds.len());
    out.push_str(&format!("{:<10}", "Method"));
    for t in 0..k {
        out.push_str(&format!(" {:>7}", format!("cls{t}")));
    }
    out.push_str(&format!(" {:>8}\n", "total"));
    for row in &report.rows {
        out.push_str(&format!("{:<10}", row.method));
        for s in &row.per_class_seconds {
            out.push_str(&format!(" {:>7.2}", s));
        }
        out.push_str(&format!(" {:>8.2}\n", row.total()));
        for stage in &row.stages {
            out.push_str(&format!("{:<10}", format!("  ·{}", stage.stage)));
            for s in &stage.per_class_seconds {
                out.push_str(&format!(" {:>7.2}", s));
            }
            out.push_str(&format!(" {:>8.2}\n", stage.total()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_includes_all_methods() {
        let report = TimingReport {
            label: "x".to_owned(),
            rows: vec![
                TimingRow {
                    method: "NC",
                    per_class_seconds: vec![1.0, 2.0],
                    stages: Vec::new(),
                },
                TimingRow {
                    method: "USB",
                    per_class_seconds: vec![0.5, 0.5],
                    stages: vec![
                        StageRow {
                            stage: "uap",
                            per_class_seconds: vec![0.4, 0.3],
                        },
                        StageRow {
                            stage: "refine",
                            per_class_seconds: vec![0.1, 0.2],
                        },
                    ],
                },
            ],
        };
        let s = format_timing(&report);
        assert!(s.contains("NC"));
        assert!(s.contains("USB"));
        assert!(s.contains("3.00"), "totals rendered");
        assert!(s.contains("·uap"), "stage rows rendered");
        assert!(s.contains("·refine"));
        assert!(s.contains("0.70"), "stage totals rendered");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = TimingReport {
            label: "x (1 models)".to_owned(),
            rows: vec![TimingRow {
                method: "USB",
                per_class_seconds: vec![0.5, 0.25],
                stages: vec![StageRow {
                    stage: "uap",
                    per_class_seconds: vec![0.4, 0.1],
                }],
            }],
        };
        let json = timing_json(&report, "fast", 1);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains(r#""schema":"usb-bench/1""#));
        assert!(json.contains(r#""method":"USB""#));
        assert!(json.contains(r#""per_class_seconds":[0.500000,0.250000]"#));
        assert!(json.contains(r#""total":0.750000"#));
        assert!(json.contains(r#""stage":"uap""#));
        assert!(json.contains(r#""config":"fast""#));
        assert!(json.contains(r#""workers":"#));
        // Balanced braces/brackets (a cheap well-formedness proxy without a
        // JSON parser in the workspace).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn stage_row_totals() {
        let row = StageRow {
            stage: "uap",
            per_class_seconds: vec![0.25, 0.5, 0.25],
        };
        assert!((row.total() - 1.0).abs() < 1e-12);
    }
}
