//! Bit-accuracy suite for the register-blocked GEMM and conv kernels.
//!
//! Every optimised `_into`/`_ws` kernel in `usb_tensor` carries the same
//! contract: each output element is produced by the **same float
//! operations in the same (ascending-`k`) order** as a naive
//! triple-loop, so results are bit-identical — that is what keeps every
//! detection verdict stable across kernel rewrites. This suite pins the
//! contract with property tests over odd and degenerate shapes (sizes
//! straddling the `MR`×`NR` register tile, single rows/columns,
//! non-multiples), dirty workspace buffers, warm packed panels, and the
//! batched conv paths against their per-image equivalents.

use proptest::prelude::*;
use usb_tensor::conv::{
    col2im_into, conv2d_forward_ws, conv2d_input_backward_ws, im2col_into, ConvSpec,
};
use usb_tensor::quant::{f16_decode, Q8_BLOCK};
use usb_tensor::{ops, Dtype, QTensor, Tensor, Workspace};

// ---------------------------------------------------------------------------
// Naive references: the ascending-k accumulation the kernels must reproduce.
// ---------------------------------------------------------------------------

fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn naive_matmul_transa(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    // a is [k, m] column-major-for-the-product: out = aᵀ b.
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[kk * m + i] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn naive_matmul_transb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    // b is [n, k]: out = a bᵀ.
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[j * k + kk];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn naive_im2col(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Vec<f32> {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * kh * kw * cols];
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            out[row * cols + oy * ow + ox] =
                                img[ch * h * w + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Adjoint scatter in the exact (channel, ky, kx, oy, ox) order of
/// `col2im_strided_into` — overlapping contributions must sum in the same
/// order for bit equality.
fn naive_col2im(
    cols_mat: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Vec<f32> {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * h * w];
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            out[ch * h * w + iy as usize * w + ix as usize] +=
                                cols_mat[row * cols + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    out
}

/// From-scratch byte-level decode of a quantized payload, independent of
/// `QTensor::dequantize_into`: f16 words through the scalar decoder, Q8
/// blocks as `scale * i8` in block order.
fn naive_decode(q: &QTensor) -> Vec<f32> {
    let bytes = q.bytes();
    let len = q.len();
    match q.dtype() {
        Dtype::F32 => unreachable!("dense tensors never enter the quantized codec"),
        Dtype::F16 => bytes
            .chunks_exact(2)
            .take(len)
            .map(|c| f16_decode(u16::from_le_bytes([c[0], c[1]])))
            .collect(),
        Dtype::Q8 => {
            let mut out = Vec::with_capacity(len);
            for block in bytes.chunks_exact(4 + Q8_BLOCK) {
                let scale = f32::from_le_bytes(block[..4].try_into().expect("scale word"));
                for &b in &block[4..] {
                    if out.len() == len {
                        break;
                    }
                    out.push(scale * (b as i8) as f32);
                }
            }
            out
        }
    }
}

/// A workspace whose pool is pre-seeded with NaN-filled buffers, so any
/// kernel that forgets to overwrite (or pre-zero) its checkout fails loudly.
fn dirty_workspace() -> Workspace {
    let mut ws = Workspace::new();
    for _ in 0..4 {
        ws.put(vec![f32::NAN; 4096]);
    }
    ws
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: bit drift at flat index {i}: {g} vs {w}"
        );
    }
}

fn tensor_from(vals: &[f32], len: usize, lo: f32) -> Vec<f32> {
    (0..len)
        .map(|i| vals[i % vals.len()] + lo * (i as f32 % 3.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three GEMM orientations against their naive triple loops, over
    /// shapes straddling the MR×NR register tile (1×1 up past 17,
    /// non-multiples of 4 and 8 included), on dirty workspace buffers.
    #[test]
    fn gemm_kernels_match_naive_bitwise(
        m in 1usize..18,
        k in 1usize..20,
        n in 1usize..18,
        vals in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let a = tensor_from(&vals, m * k, 0.01);
        let b = tensor_from(&vals, k * n, -0.02);
        let bt = tensor_from(&vals, n * k, 0.03);
        let at = tensor_from(&vals, k * m, -0.04);
        let mut ws = dirty_workspace();

        let mut out = ws.take_dirty(m * n);
        ops::matmul_into(&a, &b, m, k, n, &mut out);
        assert_bits_eq(&out, &naive_matmul(&a, &b, m, k, n), "matmul_into");

        ops::matmul_transa_into(&at, &b, m, k, n, &mut out);
        assert_bits_eq(&out, &naive_matmul_transa(&at, &b, m, k, n), "matmul_transa_into");

        ops::matmul_transb_into(&a, &bt, m, k, n, &mut out);
        assert_bits_eq(&out, &naive_matmul_transb(&a, &bt, m, k, n), "matmul_transb_into");
    }

    /// `x @ Wᵀ` through a packed k-major panel (the inference fast path)
    /// equals the direct transb kernel bitwise, including on cache hits.
    #[test]
    fn packed_panel_matches_transb_bitwise(
        m in 1usize..10,
        k in 1usize..17,
        n in 1usize..13,
        vals in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let x = tensor_from(&vals, m * k, 0.01);
        let wt = Tensor::from_vec(tensor_from(&vals, n * k, -0.02), &[n, k]);
        let mut want = vec![0.0f32; m * n];
        ops::matmul_transb_into(&x, wt.data(), m, k, n, &mut want);
        let mut ws = dirty_workspace();
        for round in 0..2 {
            // Round 0 packs the panel, round 1 hits the content-id cache.
            let mut got = ws.take_dirty(m * n);
            let packed = ws.packed_transpose(&wt, n, k);
            ops::matmul_into(&x, packed, m, k, n, &mut got);
            assert_bits_eq(&got, &want, &format!("packed panel (round {round})"));
            ws.put(got);
        }
    }

    /// Unfold and fold against their naive scatter loops, including
    /// strides and padding that push kernel taps out of bounds.
    #[test]
    fn im2col_col2im_match_naive_bitwise(
        c in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        extra_h in 0usize..6,
        extra_w in 0usize..6,
        stride in 1usize..3,
        pad in 0usize..3,
        vals in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let (h, w) = (kh + extra_h, kw + extra_w);
        let spec = ConvSpec::new(stride, pad);
        let img = tensor_from(&vals, c * h * w, 0.05);
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let rows = c * kh * kw;
        let cols = oh * ow;

        let mut ws = dirty_workspace();
        let mut unfolded = ws.take_dirty(rows * cols);
        im2col_into(&img, c, h, w, kh, kw, spec, &mut unfolded);
        assert_bits_eq(
            &unfolded,
            &naive_im2col(&img, c, h, w, kh, kw, spec),
            "im2col_into",
        );

        let cols_mat = tensor_from(&vals, rows * cols, -0.03);
        let mut folded = ws.take_dirty(c * h * w);
        col2im_into(&cols_mat, c, h, w, kh, kw, spec, &mut folded);
        assert_bits_eq(
            &folded,
            &naive_col2im(&cols_mat, c, h, w, kh, kw, spec),
            "col2im_into",
        );
    }

    /// The batched wide-GEMM conv forward (all images unfolded side by
    /// side, one GEMM, packed weights) against a per-image naive
    /// im2col + matmul + bias composition.
    #[test]
    fn batched_conv_forward_matches_per_image_naive(
        n in 1usize..4,
        ic in 1usize..4,
        oc in 1usize..6,
        kh in 1usize..4,
        kw in 1usize..4,
        extra in 0usize..5,
        stride in 1usize..3,
        pad in 0usize..2,
        with_bias_bit in 0usize..2,
        vals in proptest::collection::vec(-1.5f32..1.5, 8..32),
    ) {
        let with_bias = with_bias_bit == 1;
        let (h, w) = (kh + extra, kw + extra);
        let spec = ConvSpec::new(stride, pad);
        let input = Tensor::from_vec(tensor_from(&vals, n * ic * h * w, 0.02), &[n, ic, h, w]);
        let weight = Tensor::from_vec(tensor_from(&vals, oc * ic * kh * kw, -0.01), &[oc, ic, kh, kw]);
        let bias = Tensor::from_vec(tensor_from(&vals, oc, 0.04), &[oc]);
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let rows = ic * kh * kw;
        let cols = oh * ow;

        // Per-image reference: unfold, W @ cols (ascending k), add bias.
        let mut want = Vec::with_capacity(n * oc * cols);
        for i in 0..n {
            let img = &input.data()[i * ic * h * w..(i + 1) * ic * h * w];
            let unfolded = naive_im2col(img, ic, h, w, kh, kw, spec);
            let prod = naive_matmul(weight.data(), &unfolded, oc, rows, cols);
            for ch in 0..oc {
                for col in 0..cols {
                    let b = if with_bias { bias.data()[ch] } else { 0.0 };
                    want.push(prod[ch * cols + col] + b);
                }
            }
        }

        let mut ws = dirty_workspace();
        for round in 0..2 {
            // Round 1 reruns on the warm pool and packed-panel cache.
            let got = conv2d_forward_ws(
                &input,
                &weight,
                with_bias.then_some(&bias),
                spec,
                &mut ws,
            );
            prop_assert_eq!(got.shape(), &[n, oc, oh, ow]);
            assert_bits_eq(got.data(), &want, &format!("conv forward (round {round})"));
            ws.recycle(got);
        }
    }

    /// The batched input backward (interleave, one wide transa GEMM,
    /// per-image col2im) against a per-image naive Wᵀ@g + fold.
    #[test]
    fn batched_conv_input_backward_matches_per_image_naive(
        n in 1usize..4,
        ic in 1usize..4,
        oc in 1usize..5,
        kh in 1usize..4,
        kw in 1usize..4,
        extra in 0usize..5,
        stride in 1usize..3,
        pad in 0usize..2,
        vals in proptest::collection::vec(-1.5f32..1.5, 8..32),
    ) {
        let (h, w) = (kh + extra, kw + extra);
        let spec = ConvSpec::new(stride, pad);
        let weight = Tensor::from_vec(tensor_from(&vals, oc * ic * kh * kw, 0.03), &[oc, ic, kh, kw]);
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let rows = ic * kh * kw;
        let cols = oh * ow;
        let grad_out = Tensor::from_vec(tensor_from(&vals, n * oc * cols, -0.02), &[n, oc, oh, ow]);

        let mut want = Vec::with_capacity(n * ic * h * w);
        for i in 0..n {
            let go = &grad_out.data()[i * oc * cols..(i + 1) * oc * cols];
            // Wᵀ @ g: weight is [oc, rows] row-major, so transa over oc.
            let gcols = naive_matmul_transa(weight.data(), go, rows, oc, cols);
            want.extend_from_slice(&naive_col2im(&gcols, ic, h, w, kh, kw, spec));
        }

        let mut ws = dirty_workspace();
        for round in 0..2 {
            let got = conv2d_input_backward_ws(&weight, &grad_out, h, w, spec, &mut ws);
            prop_assert_eq!(got.shape(), &[n, ic, h, w]);
            assert_bits_eq(got.data(), &want, &format!("conv input backward (round {round})"));
            ws.recycle(got);
        }
    }

    /// Dequantized panels against the from-scratch byte-level decode: the
    /// panel cache must serve exactly the codec's floats — natural order
    /// for `dequant_panel`, `[k, n]` transposed order for `packed_dequant`
    /// — on the cold pack and on warm cache hits alike, and the GEMM fed
    /// from the panel must match the GEMM fed the naive decode bitwise.
    #[test]
    fn dequant_panels_match_naive_decode_bitwise(
        n in 1usize..13,
        k in 1usize..40,
        m in 1usize..6,
        dtype_bit in 0usize..2,
        vals in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let dtype = if dtype_bit == 0 { Dtype::F16 } else { Dtype::Q8 };
        let w = Tensor::from_vec(tensor_from(&vals, n * k, 0.015), &[n, k]);
        let q = QTensor::quantize(&w, dtype);
        let want = naive_decode(&q);
        let mut want_t = vec![0.0f32; n * k];
        ops::transpose_into(&want, n, k, &mut want_t);
        let x = tensor_from(&vals, m * k, 0.01);
        let mut want_y = vec![0.0f32; m * n];
        ops::matmul_into(&x, &want_t, m, k, n, &mut want_y);

        let mut ws = dirty_workspace();
        for round in 0..2 {
            // Round 0 dequantizes into the panel cache, round 1 hits it.
            let flat = ws.dequant_panel(&q).to_vec();
            assert_bits_eq(&flat, &want, &format!("dequant_panel {dtype} (round {round})"));
            let mut got_y = ws.take_dirty(m * n);
            let packed = ws.packed_dequant(&q, n, k);
            assert_bits_eq(packed, &want_t, &format!("packed_dequant {dtype} (round {round})"));
            ops::matmul_into(&x, packed, m, k, n, &mut got_y);
            assert_bits_eq(&got_y, &want_y, &format!("gemm via packed_dequant {dtype} (round {round})"));
            ws.put(got_y);
        }
    }

    /// `transpose_into` is an exact permutation (round-trips bitwise).
    #[test]
    fn transpose_into_round_trips(
        rows in 1usize..14,
        cols in 1usize..14,
        vals in proptest::collection::vec(-2.0f32..2.0, 8..32),
    ) {
        let src = tensor_from(&vals, rows * cols, 0.01);
        let mut t = vec![0.0f32; rows * cols];
        let mut back = vec![0.0f32; rows * cols];
        ops::transpose_into(&src, rows, cols, &mut t);
        ops::transpose_into(&t, cols, rows, &mut back);
        assert_bits_eq(&back, &src, "transpose round trip");
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(t[c * rows + r].to_bits(), src[r * cols + c].to_bits());
            }
        }
    }
}
