//! Reusable scratch buffers for the allocation-free inference path.
//!
//! Every forward-only model pass in the detection pipeline (per-sample
//! `predict` inside the UAP sweep, success-rate checks, refinement scoring,
//! evaluation) used to reallocate its im2col columns, matmul outputs, and
//! layer activations on every call. A [`Workspace`] is a small arena of
//! `Vec<f32>` buffers that those kernels check out and return instead:
//! after the first pass through a network the arena holds one buffer per
//! distinct scratch shape and steady-state inference performs **no heap
//! allocation** in the kernels.
//!
//! # Contract
//!
//! * [`Workspace::take`] returns a buffer of *exactly* the requested length
//!   that is **fully zero-filled** — callers never observe data from a
//!   previous checkout, no matter what shapes were used before (the
//!   stale-data property `tests/infer_equivalence.rs` pins down).
//!   [`Workspace::take_dirty`] skips the zero fill for callers that
//!   provably write every element before any read — the `_into` kernels
//!   overwrite their `out` slice themselves (they accept dirty
//!   non-workspace slices too), so zeroing for them would be a redundant
//!   pass over every buffer on the hot path.
//! * [`Workspace::put`] / [`Workspace::recycle`] hand a buffer (or a tensor
//!   built from one) back for reuse. Returning buffers is an optimisation,
//!   never a correctness requirement: a buffer that escapes (e.g. a layer
//!   output returned to the caller) is simply an ordinary allocation.
//! * `Clone` yields an **empty** workspace: scratch space is transient, so
//!   cloning a layer or model that owns one must not duplicate megabytes of
//!   dead buffers (this is what keeps per-worker clones of a victim cheap).
//!
//! A `Workspace` is deliberately *not* shared between threads; each worker
//! owns its own (`Send` but used behind `&mut`).
//!
//! # Example
//!
//! ```rust
//! use usb_tensor::Workspace;
//!
//! let mut ws = Workspace::new();
//! let a = ws.take_tensor(&[2, 3]);
//! assert_eq!(a.data(), &[0.0; 6]);
//! ws.recycle(a);                  // capacity is reused…
//! let b = ws.take_tensor(&[6]);   // …even across different shapes
//! assert_eq!(b.data(), &[0.0; 6]);
//! ```

use crate::quant::QTensor;
use crate::{ops, Tensor};

/// Upper bound on cached packed panels per workspace; the oldest entry is
/// evicted (its buffer returned to the pool) beyond this. Sized for the
/// deepest model in the zoo (ResNet-18 has ~20 packable weight matrices).
const MAX_PACKS: usize = 32;

/// Orientation of a cached panel relative to the source tensor's
/// row-major layout. A quantized weight can be cached in *both*
/// orientations at once (infer wants the transpose, the input-gradient
/// GEMMs want natural order), so the orientation is part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackKind {
    /// The `[cols, rows]` transpose of the source (GEMM B-panel layout).
    Transposed,
    /// The source's own row-major order, merely dequantized.
    Natural,
}

/// One cached packed panel, identified by the source tensor's content id
/// (dense [`Tensor::content_id`] or [`QTensor::content_id`] — the two
/// draw from one id space) plus view shape and orientation at pack time.
#[derive(Debug)]
struct PackEntry {
    key: u64,
    kind: PackKind,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// An arena of reusable `f32` scratch buffers (see the module docs for the
/// zero-fill and `Clone` contract).
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    packs: Vec<PackEntry>,
}

impl Clone for Workspace {
    /// Cloning yields an **empty** workspace: buffers are transient scratch,
    /// and duplicating them with every model clone would defeat the
    /// per-worker memory savings the arena exists to provide.
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty workspace (no buffers until the first
    /// [`Workspace::put`]).
    pub fn new() -> Self {
        Workspace {
            pool: Vec::new(),
            packs: Vec::new(),
        }
    }

    /// The transpose of `t` (viewed as a `[rows, cols]` matrix), packed once
    /// and cached.
    ///
    /// The cache is keyed on [`Tensor::content_id`], so as long as `t` is
    /// not mutated — a weight matrix across the 40–80 Adam steps of one
    /// refine loop, say — every call after the first is a lookup, not a
    /// transpose. When `t` *is* mutated (training), its id changes and the
    /// panel is repacked; stale entries age out of the bounded cache and
    /// their buffers return to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != rows * cols`.
    pub fn packed_transpose(&mut self, t: &Tensor, rows: usize, cols: usize) -> &[f32] {
        assert_eq!(
            t.len(),
            rows * cols,
            "packed_transpose: {rows}x{cols} view of a {}-element tensor",
            t.len()
        );
        let key = t.content_id();
        let pos = match self.find_pack(key, PackKind::Transposed, rows, cols) {
            Some(p) => p,
            None => {
                let mut data = self.pack_slot(rows * cols);
                ops::transpose_into(t.data(), rows, cols, &mut data);
                self.push_pack(key, PackKind::Transposed, rows, cols, data)
            }
        };
        &self.packs[pos].data
    }

    /// The transpose of a quantized weight (viewed as `[rows, cols]`),
    /// dequantized and packed once per [`QTensor::content_id`].
    ///
    /// This is [`Workspace::packed_transpose`] for the low-precision
    /// route: the first call per content id pays one dequantization and
    /// one transpose; every later call is a cache lookup, so the refine
    /// loop's steady state has **zero** dequantization cost. `QTensor`s
    /// are immutable, so — unlike the dense panels — a cached quant panel
    /// can never go stale; it only ages out of the bounded cache.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != rows * cols`.
    pub fn packed_dequant(&mut self, q: &QTensor, rows: usize, cols: usize) -> &[f32] {
        assert_eq!(
            q.len(),
            rows * cols,
            "packed_dequant: {rows}x{cols} view of a {}-element tensor",
            q.len()
        );
        let key = q.content_id();
        let pos = match self.find_pack(key, PackKind::Transposed, rows, cols) {
            Some(p) => p,
            None => {
                let mut tmp = self.take_dirty(rows * cols);
                q.dequantize_into(&mut tmp);
                let mut data = self.pack_slot(rows * cols);
                ops::transpose_into(&tmp, rows, cols, &mut data);
                self.put(tmp);
                self.push_pack(key, PackKind::Transposed, rows, cols, data)
            }
        };
        &self.packs[pos].data
    }

    /// A quantized weight dequantized into its natural row-major order,
    /// cached once per [`QTensor::content_id`].
    ///
    /// The sibling of [`Workspace::packed_dequant`] for kernels that
    /// consume the weight untransposed (the `g·W` input-gradient GEMMs and
    /// the convolution input-backward, whose `[OC, IC·KH·KW]` layout is
    /// already the k-major panel they need).
    pub fn dequant_panel(&mut self, q: &QTensor) -> &[f32] {
        let len = q.len();
        let key = q.content_id();
        let pos = match self.find_pack(key, PackKind::Natural, len, 1) {
            Some(p) => p,
            None => {
                let mut data = self.pack_slot(len);
                q.dequantize_into(&mut data);
                self.push_pack(key, PackKind::Natural, len, 1, data)
            }
        };
        &self.packs[pos].data
    }

    fn find_pack(&self, key: u64, kind: PackKind, rows: usize, cols: usize) -> Option<usize> {
        self.packs
            .iter()
            .position(|p| p.key == key && p.kind == kind && p.rows == rows && p.cols == cols)
    }

    /// Checks out a dirty buffer for a new panel, evicting the oldest
    /// cached panel first when the cache is full (FIFO; the evicted
    /// buffer returns to the pool and is usually the one handed back).
    fn pack_slot(&mut self, len: usize) -> Vec<f32> {
        if self.packs.len() >= MAX_PACKS {
            let old = self.packs.remove(0);
            self.put(old.data);
        }
        self.take_dirty(len)
    }

    fn push_pack(
        &mut self,
        key: u64,
        kind: PackKind,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> usize {
        self.packs.push(PackEntry {
            key,
            kind,
            rows,
            cols,
            data,
        });
        self.packs.len() - 1
    }

    /// Checks out a zero-filled buffer of exactly `len` elements.
    ///
    /// Reuses the pooled buffer whose capacity fits `len` most tightly
    /// (growing the largest one when none fits), so mixed-size request
    /// sequences — a whole network's layers — converge on one allocation
    /// per distinct size class instead of growing every buffer to the
    /// maximum.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_dirty(len);
        buf.fill(0.0); // zero-fills every element: no stale data
        buf
    }

    /// Checks out a buffer of exactly `len` elements with **unspecified
    /// contents** — it may carry data from a previous checkout.
    ///
    /// For kernels that provably write every element before any read (the
    /// `_into`/`_ws` kernels and the elementwise `infer` impls), the
    /// zero fill of [`Workspace::take`] is a redundant pass over the
    /// buffer on the exact hot path the arena exists to speed up; this
    /// variant skips it. Callers that cannot guarantee a full overwrite
    /// must use `take` — the no-stale-data contract does not apply here.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        let mut pick: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let better = match pick {
                None => true,
                Some(p) => {
                    let (pc, bc) = (self.pool[p].capacity(), buf.capacity());
                    if pc >= len {
                        bc >= len && bc < pc // both fit: prefer the tighter one
                    } else {
                        bc > pc // neither fits yet: prefer the larger one
                    }
                }
            };
            if better {
                pick = Some(i);
            }
        }
        let mut buf = match pick {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        // Keep whatever reused contents fit (dirty); only growth beyond the
        // current length is zero-initialised (safe Rust has no way to hand
        // out truly uninitialised f32s, and doesn't need one here).
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a buffer to the pool for future [`Workspace::take`] calls.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Checks out a zero-filled [`Tensor`] of the given shape.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(self.take(len), shape)
    }

    /// Returns a tensor's buffer to the pool (the shape is forgotten).
    pub fn recycle(&mut self, t: Tensor) {
        self.put(t.into_vec());
    }

    /// Number of buffers currently parked in the pool (diagnostics only).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `f32` capacity currently parked in the pool (diagnostics only).
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_dirty_recycle() {
        let mut ws = Workspace::new();
        let mut t = ws.take_tensor(&[4, 4]);
        t.fill(7.5);
        ws.recycle(t);
        // Different shape, same pooled buffer: must come back all zeros.
        let u = ws.take_tensor(&[2, 3]);
        assert_eq!(u.data(), &[0.0; 6]);
        ws.recycle(u);
        // Larger than anything pooled: grows, still all zeros.
        let v = ws.take(100);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let mut ws = Workspace::new();
        let a = ws.take(64);
        ws.put(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(32); // fits in the pooled 64-capacity buffer
        assert_eq!(ws.pooled(), 0, "the pooled buffer must be checked out");
        assert!(b.capacity() >= 64, "capacity from the recycled buffer");
        ws.put(b);
    }

    #[test]
    fn best_fit_prefers_tightest_buffer() {
        let mut ws = Workspace::new();
        ws.put(Vec::with_capacity(1000));
        ws.put(Vec::with_capacity(10));
        let b = ws.take(8);
        assert!(
            b.capacity() < 1000,
            "an 8-element request must not consume the 1000-capacity buffer"
        );
        // The big buffer is still parked for big requests.
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.pooled_capacity(), 1000);
    }

    #[test]
    fn take_dirty_skips_the_zero_fill_but_has_exact_length() {
        let mut ws = Workspace::new();
        ws.put(vec![7.5f32; 10]);
        // Reused prefix may be stale; length must still be exact.
        let b = ws.take_dirty(6);
        assert_eq!(b.len(), 6);
        ws.put(b);
        // Growth beyond the pooled length is zero-initialised.
        let c = ws.take_dirty(20);
        assert_eq!(c.len(), 20);
        assert!(
            c[10..].iter().all(|&x| x == 0.0),
            "grown tail must be zeroed"
        );
        // `take` on the same pool still honours the no-stale-data contract.
        ws.put(c);
        let d = ws.take(20);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packed_transpose_caches_until_mutation() {
        let mut ws = Workspace::new();
        let mut w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let expect = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        assert_eq!(ws.packed_transpose(&w, 2, 3), &expect);

        // Second call is a cache hit: the pool is untouched.
        let pooled = ws.pooled();
        assert_eq!(ws.packed_transpose(&w, 2, 3), &expect);
        assert_eq!(ws.pooled(), pooled);

        // Mutation re-stamps the id, so the pack is rebuilt with new data.
        w.data_mut()[0] = 10.0;
        assert_eq!(
            ws.packed_transpose(&w, 2, 3),
            &[10.0, 4.0, 2.0, 5.0, 3.0, 6.0]
        );
    }

    #[test]
    fn packed_transpose_cache_is_bounded() {
        let mut ws = Workspace::new();
        for i in 0..3 * MAX_PACKS {
            let t = Tensor::full(&[2, 2], i as f32);
            let _ = ws.packed_transpose(&t, 2, 2);
        }
        assert_eq!(ws.packs.len(), MAX_PACKS);
        // Each eviction returns its buffer to the pool and the replacement
        // pack immediately reuses it, so the steady state is one buffer per
        // cache slot and an empty pool — eviction recycles, never leaks.
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn packed_dequant_caches_per_content_id() {
        use crate::quant::{Dtype, QTensor};
        let mut ws = Workspace::new();
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let q = QTensor::quantize(&w, Dtype::F16);
        // All six values are small integers: f16 encodes them exactly, so
        // the dequant panel equals the dense transpose bit-for-bit.
        let expect = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        assert_eq!(ws.packed_dequant(&q, 2, 3), &expect);
        let pooled = ws.pooled();
        assert_eq!(ws.packed_dequant(&q, 2, 3), &expect, "hit, not repack");
        assert_eq!(ws.pooled(), pooled);
        // Natural orientation coexists with the transpose in the cache.
        assert_eq!(ws.dequant_panel(&q), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ws.packed_dequant(&q, 2, 3), &expect, "still cached");
    }

    #[test]
    fn dequant_panels_never_leak_stale_data_across_evictions() {
        use crate::quant::{Dtype, QTensor};
        // Fuzz the FIFO cache: interleave many distinct quantized tensors
        // (forcing evictions into recycled dirty buffers) with dense packs
        // and re-reads, checking every returned panel against a fresh
        // dequantization. This is the no-stale-data property for panels.
        let mut ws = Workspace::new();
        let qs: Vec<QTensor> = (0..3 * MAX_PACKS)
            .map(|i| {
                let t = Tensor::from_fn(&[4, 8], |j| ((i * 37 + j) as f32 * 0.11).sin());
                QTensor::quantize(&t, if i % 2 == 0 { Dtype::Q8 } else { Dtype::F16 })
            })
            .collect();
        let mut step = 0usize;
        for round in 0..4 {
            for (i, q) in qs.iter().enumerate() {
                step = step
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(round + i);
                let mut want = vec![0.0f32; 32];
                match step % 3 {
                    0 => {
                        let mut nat = vec![0.0f32; 32];
                        q.dequantize_into(&mut nat);
                        crate::ops::transpose_into(&nat, 4, 8, &mut want);
                        assert_eq!(ws.packed_dequant(q, 4, 8), &want[..], "t-panel {i}");
                    }
                    1 => {
                        q.dequantize_into(&mut want);
                        assert_eq!(ws.dequant_panel(q), &want[..], "n-panel {i}");
                    }
                    _ => {
                        let d = Tensor::from_fn(&[4, 8], |j| (i + j) as f32);
                        crate::ops::transpose_into(d.data(), 4, 8, &mut want);
                        assert_eq!(ws.packed_transpose(&d, 4, 8), &want[..], "dense {i}");
                    }
                }
                assert!(ws.packs.len() <= MAX_PACKS);
            }
        }
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        ws.put(vec![1.0; 256]);
        let cloned = ws.clone();
        assert_eq!(cloned.pooled(), 0);
        assert_eq!(cloned.pooled_capacity(), 0);
        assert_eq!(ws.pooled(), 1, "the original keeps its buffers");
    }

    #[test]
    fn zero_length_take_and_put_are_harmless() {
        let mut ws = Workspace::new();
        let b = ws.take(0);
        assert!(b.is_empty());
        ws.put(b); // capacity 0: dropped, not pooled
        assert_eq!(ws.pooled(), 0);
    }
}
