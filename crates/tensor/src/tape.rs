//! The gradient [`Tape`]: caller-owned storage for everything a backward
//! pass needs, so the model itself can stay immutable.
//!
//! The training-style `Layer::forward`/`Layer::backward` route stashes
//! activations *inside* the layers (`cached_input`, batch-norm caches,
//! max-pool argmax tables). That makes every gradient computation
//! `&mut self` — and forced the parallel inspection engine to clone the
//! whole victim once per worker, because two threads cannot share a model
//! whose layers mutate on every pass.
//!
//! A [`Tape`] externalises that state. During a *recorded inference*
//! (`Layer::infer_recording`) each layer pushes one [`Frame`] holding
//! exactly what its gradient needs — an activation copy, an argmax table, a
//! shape — onto the tape, in traversal order. The matching backward pass
//! (`Layer::grad`) pops frames in reverse order, strict stack discipline,
//! so composites (sequential stacks, residual branches, squeeze-excite
//! blocks) nest without any bookkeeping beyond "pop what you pushed,
//! backwards". The model is only ever read: **one `&Network` serves every
//! thread**, each worker bringing its own tape (and
//! [`Workspace`](crate::Workspace) for arithmetic scratch).
//!
//! # Reuse contract
//!
//! Like the [`Workspace`](crate::Workspace) arena, a tape is built for hot
//! loops (every DeepFool step records and replays the whole network):
//!
//! * Consumed frames keep their buffers in a spare pool;
//!   [`Tape::begin`]/[`Tape::push`] hand them back out with lengths reset,
//!   so after one warm-up iteration a steady-state record→grad cycle
//!   performs **no heap allocation** in the tape.
//! * Frames are reused across *mismatched* recordings (a different model,
//!   a different batch size) without leaking: every `push` returns a frame
//!   whose `vals`/`extra`/`aux` are empty — recording layers append their
//!   own data and never observe a previous checkout's.
//! * `Clone` yields an **empty** tape, mirroring `Workspace`: recorded
//!   frames are transient, and anything that clones a holder of a tape
//!   must not duplicate dead activation buffers.
//!
//! A `Tape` is deliberately not shared between threads; each worker owns
//! its own (`Send`, used behind `&mut`).

/// One layer's recorded backward state: an activation payload, an optional
/// secondary payload, and integer metadata (shapes, argmax tables).
///
/// Which fields a layer uses is the layer's own contract — a ReLU stores
/// its input in `vals`, a squeeze-excite block stores input in `vals` and
/// gate in `extra`, a max pool stores its input shape and argmax table in
/// `aux`, a convolution stores only its input shape. [`Tape::push`] always
/// returns all three empty.
#[derive(Debug, Default)]
pub struct Frame {
    /// Primary `f32` payload (usually a copy of the layer input or output).
    pub vals: Vec<f32>,
    /// Secondary `f32` payload (e.g. the squeeze-excite gate).
    pub extra: Vec<f32>,
    /// Integer metadata: shapes, argmax routing tables.
    pub aux: Vec<usize>,
}

impl Frame {
    fn clear(&mut self) {
        self.vals.clear();
        self.extra.clear();
        self.aux.clear();
    }

    fn capacity(&self) -> usize {
        self.vals.capacity() + self.extra.capacity()
    }
}

/// A stack of per-layer activation [`Frame`]s recorded by
/// `Layer::infer_recording` and consumed by `Layer::grad` (see the module
/// docs for the reuse contract).
#[derive(Debug, Default)]
pub struct Tape {
    /// Recorded frames awaiting the backward pass (push/pop stack).
    frames: Vec<Frame>,
    /// Consumed frames parked for reuse, newest first. Because `grad` pops
    /// (and parks) frames in reverse recording order, the *next* recording
    /// pops this stack in original recording order — each traversal
    /// position gets back the very buffer it used last iteration, so
    /// capacities match exactly and the steady state allocates nothing.
    spare: Vec<Frame>,
}

impl Clone for Tape {
    /// Cloning yields an **empty** tape: recorded frames are transient
    /// backward state, never part of a model's identity.
    fn clone(&self) -> Self {
        Tape::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Starts a fresh recording, parking any frames left over from an
    /// abandoned previous one (their buffers are reused, not freed).
    pub fn begin(&mut self) {
        // Drain in reverse so the next `push` sequence hands frames back in
        // original recording order (see the `spare` field docs).
        while let Some(f) = self.frames.pop() {
            self.spare.push(f);
        }
    }

    /// Pushes a new empty frame (buffers recycled from the spare pool when
    /// available) and returns it for the recording layer to fill.
    pub fn push(&mut self) -> &mut Frame {
        let mut frame = self.spare.pop().unwrap_or_default();
        frame.clear();
        self.frames.push(frame);
        self.frames.last_mut().expect("push: frame just added")
    }

    /// Pops the most recently recorded frame, transferring ownership to the
    /// caller (hand it back with [`Tape::recycle`] so its buffers are
    /// reused by the next recording).
    ///
    /// # Panics
    ///
    /// Panics if no frame is recorded — i.e. `grad` was called without a
    /// matching `infer_recording`, or layers popped more than they pushed.
    pub fn pop(&mut self) -> Frame {
        self.frames
            .pop()
            .expect("Tape::pop: grad before infer_recording (tape is empty)")
    }

    /// Returns a consumed frame's buffers to the spare pool.
    pub fn recycle(&mut self, frame: Frame) {
        self.spare.push(frame);
    }

    /// Number of frames currently recorded and not yet consumed.
    pub fn recorded(&self) -> usize {
        self.frames.len()
    }

    /// Total `f32` capacity parked across recorded and spare frames
    /// (diagnostics: the tape's steady-state memory footprint).
    pub fn pooled_capacity(&self) -> usize {
        self.frames
            .iter()
            .chain(self.spare.iter())
            .map(Frame::capacity)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let mut tape = Tape::new();
        tape.begin();
        tape.push().aux.push(1);
        tape.push().aux.push(2);
        assert_eq!(tape.recorded(), 2);
        let b = tape.pop();
        assert_eq!(b.aux, [2]);
        let a = tape.pop();
        assert_eq!(a.aux, [1]);
        tape.recycle(b);
        tape.recycle(a);
        assert_eq!(tape.recorded(), 0);
    }

    #[test]
    fn frames_come_back_empty_after_reuse() {
        let mut tape = Tape::new();
        tape.begin();
        let f = tape.push();
        f.vals.extend_from_slice(&[1.0; 64]);
        f.extra.extend_from_slice(&[2.0; 8]);
        f.aux.extend_from_slice(&[3, 4, 5]);
        let f = tape.pop();
        tape.recycle(f);
        tape.begin();
        let f = tape.push();
        assert!(f.vals.is_empty() && f.extra.is_empty() && f.aux.is_empty());
        assert!(f.vals.capacity() >= 64, "capacity must be reused");
    }

    #[test]
    fn steady_state_preserves_per_position_capacity() {
        let mut tape = Tape::new();
        let sizes = [100usize, 7, 50];
        // Warm-up: record three frames of distinct sizes, then consume.
        tape.begin();
        for &s in &sizes {
            tape.push().vals.resize(s, 0.0);
        }
        for _ in 0..sizes.len() {
            let f = tape.pop();
            tape.recycle(f);
        }
        // Second iteration: each position must get a buffer that already
        // fits it (the same one as last time).
        tape.begin();
        for &s in &sizes {
            let f = tape.push();
            assert!(f.vals.capacity() >= s, "position lost its warm buffer");
            f.vals.resize(s, 0.0);
        }
    }

    #[test]
    fn begin_parks_abandoned_frames() {
        let mut tape = Tape::new();
        tape.begin();
        tape.push().vals.resize(32, 0.0);
        tape.push().vals.resize(16, 0.0);
        // Abandon the recording (e.g. a caller bailed before grad).
        tape.begin();
        assert_eq!(tape.recorded(), 0);
        // First push of the new recording reuses the first frame's buffer.
        let f = tape.push();
        assert!(f.vals.capacity() >= 32);
    }

    #[test]
    #[should_panic(expected = "grad before infer_recording")]
    fn pop_on_empty_tape_panics() {
        let mut tape = Tape::new();
        let _ = tape.pop();
    }

    #[test]
    fn clone_is_empty() {
        let mut tape = Tape::new();
        tape.push().vals.resize(128, 0.0);
        let cloned = tape.clone();
        assert_eq!(cloned.recorded(), 0);
        assert_eq!(cloned.pooled_capacity(), 0);
        assert_eq!(tape.recorded(), 1, "the original keeps its frames");
    }
}
