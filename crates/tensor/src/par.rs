//! Deterministic fan-out/fan-in parallelism on scoped `std::thread`s.
//!
//! The detection pipeline is embarrassingly parallel at several levels —
//! per candidate class inside one inspection, per victim model inside an
//! experiment grid, per batch inside an evaluation pass — but the build
//! environment is offline, so no `rayon`. This module provides the small
//! std-only execution substrate those loops share:
//!
//! * [`par_map`] — apply a function to every item of a slice across a
//!   worker pool, returning results **in input order**. Work is handed out
//!   through an atomic cursor, so long and short items load-balance, yet
//!   each item's result depends only on the item (never on scheduling):
//!   the output is bit-identical at any thread count.
//! * [`worker_threads`] / [`resolve_workers`] — the thread-count knob.
//!   Callers pass an explicit count from their config, `0` meaning "use
//!   the environment": the `USB_THREADS` variable when set, otherwise
//!   [`std::thread::available_parallelism`].
//!
//! Panics in a worker are propagated to the caller (the scope re-raises
//! them after joining). Once any worker panics, the others stop claiming
//! new items — in-flight items finish, then the panic surfaces, so a
//! failing item costs at most one extra item per worker rather than the
//! whole remaining queue.
//!
//! # Example
//!
//! ```rust
//! use usb_tensor::par;
//!
//! let squares = par::par_map(4, &[1u64, 2, 3, 4, 5], |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "USB_THREADS";

thread_local! {
    /// Set while this thread is a `par_map` worker, so nested auto-sized
    /// fan-outs (a grid worker's inspection spawning per-class workers,
    /// which would spawn per-batch workers...) collapse to inline instead
    /// of multiplying threads past the core count.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The default worker count: `USB_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism (at least 1).
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a config-supplied worker count: positive values are used as-is,
/// `0` defers to [`worker_threads`] (env var, then hardware) — except on a
/// thread that is itself a [`par_map`] worker, where auto resolves to 1 so
/// nested parallel loops run inline rather than oversubscribing the cores
/// the outer pool already owns. (Results never depend on the count, so the
/// collapse is invisible except in thread accounting.)
pub fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else if IN_WORKER.with(Cell::get) {
        1
    } else {
        worker_threads()
    }
}

/// Maps `f` over `items` on up to `workers` scoped threads, preserving
/// input order in the returned vector.
///
/// `f` receives `(index, &item)` so callers can derive per-item state
/// (e.g. an RNG stream) from the *position*, which is what makes results
/// independent of how items land on threads. With `workers <= 1` or a
/// single item the map runs inline on the caller's thread — no pool, no
/// overhead — and produces the same output.
///
/// # Panics
///
/// Re-raises a panic observed in a worker; once one worker panics, the
/// others stop claiming new items (in-flight items still complete).
pub fn par_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = resolve_workers(workers).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    /// Raises the shared flag if its worker unwinds, so siblings stop
    /// claiming items instead of draining the queue before the caller
    /// sees the panic.
    struct PanicFlag<'a>(&'a std::sync::atomic::AtomicBool);
    impl Drop for PanicFlag<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }
    // One slot per item; workers claim items through the cursor and write
    // results straight into their slots, so fan-in is a plain unwrap sweep
    // in input order.
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let _guard = PanicFlag(&panicked);
                loop {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *slots[i].lock().expect("par_map: poisoned result slot") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map: poisoned result slot")
                .expect("par_map: missing result (worker died)")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(4, &[] as &[u32], |_, &x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(8, &[41u32], |i, &x| (i, x + 1));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        // Skew the per-item cost so a racy fan-in would scramble results.
        let out = par_map(4, &items, |idx, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(idx, x, "index must match the item's position");
            x * 10
        });
        let expected: Vec<usize> = (0..100).map(|x| x * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for workers in [1, 2, 3, 4, 8] {
            let par = par_map(workers, &items, |_, &x| x.wrapping_mul(2654435761));
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(2, &[1u32, 2, 3, 4], |_, &x| {
                if x == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn resolve_workers_prefers_explicit_count() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn nested_auto_fanout_collapses_to_inline() {
        // Inside a worker, auto-sized (0) resolution must come back 1 so a
        // nested par_map runs inline; an explicit count is still honored.
        let resolved = par_map(2, &[(); 4], |_, _| (resolve_workers(0), resolve_workers(3)));
        for &(auto, explicit) in &resolved {
            assert_eq!(auto, 1, "auto must collapse inside a worker");
            assert_eq!(explicit, 3, "explicit counts are honored");
        }
        // Back on the caller's thread, auto resolution is restored.
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
