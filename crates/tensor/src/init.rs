//! Seeded random tensor initialisers.
//!
//! Every experiment in the reproduction is deterministic given its seed, so
//! all initialisers take an explicit [`rand::Rng`] instead of using thread
//! RNG.

use crate::Tensor;
use rand::Rng;

/// Tensor with elements drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo <= hi, "uniform: lo {lo} > hi {hi}");
    Tensor::from_fn(shape, |_| rng.gen_range(lo..=hi))
}

/// Tensor with elements drawn from `N(mean, std²)` via Box–Muller.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    assert!(std >= 0.0, "normal: negative std {std}");
    Tensor::from_fn(shape, |_| mean + std * sample_standard_normal(rng))
}

/// One standard-normal sample (Box–Muller transform).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Kaiming/He uniform initialisation for a weight tensor with the given
/// fan-in: `U(−√(6/fan_in), √(6/fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "kaiming_uniform: zero fan-in");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.max() <= 0.5 && t.min() >= -0.5);
        // Mean should be near zero for 1000 samples.
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&[4000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.15, "mean={mean}");
        assert!((var - 4.0).abs() < 0.5, "var={var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform(&[16], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        let b = uniform(&[16], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.data(), b.data());
        let c = uniform(&[16], 0.0, 1.0, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_uniform(&[512], 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.linf_norm() <= bound + 1e-6);
    }
}
