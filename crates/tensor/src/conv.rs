//! 2-D convolution kernels (dense and depthwise) built on im2col / col2im.
//!
//! Layout conventions:
//!
//! * activations: `[N, C, H, W]`
//! * dense weights: `[OC, IC, KH, KW]`
//! * depthwise weights: `[C, 1, KH, KW]`
//!
//! All functions provide forward *and* backward passes; the backward passes
//! return gradients with respect to the input as well as the parameters,
//! because the defenses in this workspace optimise over the *input space*
//! (triggers, masks, universal perturbations).

use crate::quant::WeightRef;
use crate::{ops, Tensor, Workspace};

/// Geometry of a convolution: strides and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Symmetric zero padding along both spatial axes.
    pub pad: usize,
}

impl ConvSpec {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize, pad: usize) -> Self {
        assert!(stride > 0, "ConvSpec: stride must be positive");
        ConvSpec { stride, pad }
    }

    /// Output spatial size for an input of `in_size` with kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, in_size: usize, k: usize) -> usize {
        let padded = in_size + 2 * self.pad;
        assert!(padded >= k, "kernel {k} larger than padded input {padded}");
        (padded - k) / self.stride + 1
    }
}

impl Default for ConvSpec {
    /// Stride 1, no padding.
    fn default() -> Self {
        ConvSpec { stride: 1, pad: 0 }
    }
}

/// Unfolds one `[C, H, W]` image into a `[C*KH*KW, OH*OW]` column matrix.
///
/// Column `(oy, ox)` holds the receptive field that the kernel sees when it
/// produces output pixel `(oy, ox)`; out-of-bounds taps read as zero.
///
/// # Panics
///
/// Panics if `img` is not rank-3 or the kernel does not fit.
pub fn im2col(img: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Tensor {
    assert_eq!(img.ndim(), 3, "im2col: need [C,H,W], got {:?}", img.shape());
    let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(img.data(), c, h, w, kh, kw, spec, &mut out);
    Tensor::from_vec(out, &[rows, cols])
}

/// Slice-level [`im2col`] kernel: unfolds one `[C, H, W]` image (given as a
/// flat slice) into `out` (overwritten, including the zero padding taps, so
/// dirty [`Workspace`] buffers can be handed in). Single implementation
/// behind both call paths — results are bit-identical by construction.
///
/// # Panics
///
/// Panics if a slice length disagrees with the geometry.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
pub fn im2col_into(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    out: &mut [f32],
) {
    assert_eq!(img.len(), c * h * w, "im2col_into: image length mismatch");
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    assert_eq!(
        out.len(),
        c * kh * kw * cols,
        "im2col_into: out length mismatch"
    );
    out.fill(0.0);
    im2col_strided_into(img, c, h, w, kh, kw, spec, cols, 0, out);
}

/// [`im2col_into`] writing into a column *block* of a wider matrix: row `r`
/// of the unfolding lands at `out[r * row_stride + col0 ..]`. This is how
/// the batched conv GEMM lays N images side by side into one `[C·KH·KW,
/// N·OH·OW]` matrix so a single wide GEMM replaces N skinny ones.
///
/// Only in-bounds taps are written — the caller must pre-zero the
/// destination so padding taps read as zero (exactly the zeros
/// [`im2col_into`]'s own `fill` would have produced, so results are
/// bit-identical to the per-image path). Stride-1 geometries take a
/// contiguous `copy_from_slice` fast path per kernel row.
///
/// # Panics
///
/// Panics if a slice length disagrees with the geometry or the block does
/// not fit within `row_stride`.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
pub fn im2col_strided_into(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    row_stride: usize,
    col0: usize,
    out: &mut [f32],
) {
    assert_eq!(
        img.len(),
        c * h * w,
        "im2col_strided: image length mismatch"
    );
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    assert!(
        col0 + cols <= row_stride,
        "im2col_strided: block [{col0}, {}) exceeds row stride {row_stride}",
        col0 + cols
    );
    assert!(
        out.len() >= c * kh * kw * row_stride,
        "im2col_strided: out length mismatch"
    );
    for ch in 0..c {
        let img_ch = &img[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                let out_row = &mut out[row * row_stride + col0..row * row_stride + col0 + cols];
                if spec.stride == 1 {
                    // In-bounds output range is an interval: one contiguous
                    // copy per (kernel row, output row).
                    let oy0 = spec.pad.saturating_sub(ky);
                    let oy1 = oh.min((h + spec.pad).saturating_sub(ky));
                    let ox0 = spec.pad.saturating_sub(kx);
                    let ox1 = ow.min((w + spec.pad).saturating_sub(kx));
                    if ox1 > ox0 {
                        for oy in oy0..oy1 {
                            let iy = oy + ky - spec.pad;
                            let ix0 = ox0 + kx - spec.pad;
                            out_row[oy * ow + ox0..oy * ow + ox1]
                                .copy_from_slice(&img_ch[iy * w + ix0..iy * w + ix0 + (ox1 - ox0)]);
                        }
                    }
                } else {
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src_row = &img_ch[iy as usize * w..(iy as usize + 1) * w];
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[oy * ow + ox] = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: folds a `[C*KH*KW, OH*OW]` column matrix back into
/// a `[C, H, W]` image, *summing* overlapping contributions.
///
/// # Panics
///
/// Panics if the column matrix shape is inconsistent with the geometry.
pub fn col2im(
    cols_mat: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Tensor {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    assert_eq!(
        cols_mat.shape(),
        &[c * kh * kw, oh * ow],
        "col2im: column matrix shape mismatch"
    );
    let mut out = vec![0.0f32; c * h * w];
    col2im_into(cols_mat.data(), c, h, w, kh, kw, spec, &mut out);
    Tensor::from_vec(out, &[c, h, w])
}

/// Slice-level [`col2im`] kernel folding a column matrix into `out`
/// (overwritten before the overlapping contributions are summed, so dirty
/// [`Workspace`] buffers can be handed in). Single implementation behind
/// both call paths — results are bit-identical by construction.
///
/// # Panics
///
/// Panics if a slice length disagrees with the geometry.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
pub fn col2im_into(
    cols_mat: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    out: &mut [f32],
) {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    assert_eq!(
        cols_mat.len(),
        c * kh * kw * cols,
        "col2im_into: column matrix length mismatch"
    );
    assert_eq!(out.len(), c * h * w, "col2im_into: out length mismatch");
    out.fill(0.0);
    col2im_strided_into(cols_mat, c, h, w, kh, kw, spec, cols, 0, out);
}

/// [`col2im_into`] reading one column *block* of a wider matrix (see
/// [`im2col_strided_into`] for the layout). Accumulates with `+=` into
/// `out`, which the caller must pre-zero; the (channel, kernel-row,
/// kernel-col, output-row) scatter order matches the per-image kernel
/// exactly, so overlapping contributions sum in the same order and results
/// are bit-identical. Stride-1 geometries take a contiguous vectorizable
/// fast path.
///
/// # Panics
///
/// Panics if a slice length disagrees with the geometry or the block does
/// not fit within `row_stride`.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
pub fn col2im_strided_into(
    cols_mat: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    row_stride: usize,
    col0: usize,
    out: &mut [f32],
) {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cols = oh * ow;
    assert!(
        col0 + cols <= row_stride,
        "col2im_strided: block [{col0}, {}) exceeds row stride {row_stride}",
        col0 + cols
    );
    assert!(
        cols_mat.len() >= c * kh * kw * row_stride,
        "col2im_strided: column matrix length mismatch"
    );
    assert_eq!(out.len(), c * h * w, "col2im_strided: out length mismatch");
    for ch in 0..c {
        let img_ch = &mut out[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                let src_row = &cols_mat[row * row_stride + col0..row * row_stride + col0 + cols];
                if spec.stride == 1 {
                    let oy0 = spec.pad.saturating_sub(ky);
                    let oy1 = oh.min((h + spec.pad).saturating_sub(ky));
                    let ox0 = spec.pad.saturating_sub(kx);
                    let ox1 = ow.min((w + spec.pad).saturating_sub(kx));
                    if ox1 > ox0 {
                        for oy in oy0..oy1 {
                            let iy = oy + ky - spec.pad;
                            let ix0 = ox0 + kx - spec.pad;
                            let dst = &mut img_ch[iy * w + ix0..iy * w + ix0 + (ox1 - ox0)];
                            let src = &src_row[oy * ow + ox0..oy * ow + ox1];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                } else {
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            img_ch[iy as usize * w + ix as usize] += src_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// The `dL/d input` half of [`conv2d_backward`] alone: for input-space
/// optimisation (DeepFool, trigger refinement) the parameter gradients are
/// computed and immediately discarded, so this kernel skips them — no
/// im2col of the cached input, no weight/bias GEMM — and folds
/// `Wᵀ @ grad_out` straight back into image space. The whole batch goes
/// through **one wide GEMM**: the per-image `[OC, OH·OW]` gradients are
/// interleaved into a `[OC, N·OH·OW]` matrix, multiplied once, and folded
/// back per image. Every output element still sums over `oc` in ascending
/// order and the col2im scatter order per image is unchanged, so the
/// result is **bit-identical** to the first element of the
/// [`conv2d_backward`] tuple; `h`/`w` are the spatial dims of the forward
/// input.
///
/// The returned gradient is built from a workspace buffer ([`col2im_into`]
/// fully overwrites each per-image slice, so a dirty checkout is safe);
/// callers on the hot path hand it back via [`Workspace::recycle`] to keep
/// the steady state allocation-free.
///
/// # Panics
///
/// Panics on rank or shape mismatches.
pub fn conv2d_input_backward_ws(
    weight: &Tensor,
    grad_out: &Tensor,
    h: usize,
    w: usize,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    conv2d_input_backward_ref_ws(WeightRef::Dense(weight), grad_out, h, w, spec, ws)
}

/// [`conv2d_input_backward_ws`] generalized over the weight precision.
///
/// The dense arm is the exact pre-quantization code path (bit-identical
/// results); a quantized weight goes through [`Workspace::dequant_panel`]
/// — its `[OC, IC·KH·KW]` row-major layout is already the k-major panel
/// `Wᵀ@g` consumes, so the panel is a straight dequantization, cached per
/// content id with zero steady-state cost.
///
/// # Panics
///
/// Panics on rank or shape mismatches.
pub fn conv2d_input_backward_ref_ws(
    weight: WeightRef<'_>,
    grad_out: &Tensor,
    h: usize,
    w: usize,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    let (oc, ic, kh, kw) = dims4_ref(&weight);
    let (n, goc, oh, ow) = dims4(grad_out);
    assert_eq!(goc, oc, "conv2d_input_backward: channel mismatch");
    assert_eq!(
        (oh, ow),
        (spec.out_size(h, kh), spec.out_size(w, kw)),
        "conv2d_input_backward: grad_out spatial dims mismatch"
    );
    let rows = ic * kh * kw;
    let cols = oh * ow;
    let wide = n * cols;
    let god = grad_out.data();
    // Interleave [N, OC, cols] → [OC, N·cols] so one wide GEMM covers the
    // whole batch (the per-image `cols` is tiny on deep layers, far below
    // the width a register-tiled GEMM needs).
    let mut go_wide = ws.take_dirty(oc * wide);
    for i in 0..n {
        for ch in 0..oc {
            go_wide[ch * wide + i * cols..ch * wide + (i + 1) * cols]
                .copy_from_slice(&god[(i * oc + ch) * cols..(i * oc + ch + 1) * cols]);
        }
    }
    let mut grad_cols = ws.take_dirty(rows * wide);
    // All scratch checkouts happen above: the panel borrow below must be
    // the workspace's last, ending at the GEMM call.
    let wd: &[f32] = match weight {
        // [OC, IC·KH·KW] row-major: already k-major for Wᵀ@g.
        WeightRef::Dense(t) => t.data(),
        WeightRef::Quant(q) => ws.dequant_panel(q),
    };
    ops::matmul_transa_into(wd, &go_wide, rows, oc, wide, &mut grad_cols);
    let mut grad_input = ws.take_dirty(n * ic * h * w);
    for i in 0..n {
        let gi = &mut grad_input[i * ic * h * w..(i + 1) * ic * h * w];
        gi.fill(0.0);
        col2im_strided_into(&grad_cols, ic, h, w, kh, kw, spec, wide, i * cols, gi);
    }
    ws.put(go_wide);
    ws.put(grad_cols);
    Tensor::from_vec(grad_input, &[n, ic, h, w])
}

/// The `dL/d input` half of [`depthwise_backward`] alone (see
/// [`conv2d_input_backward_ws`] for why): same window scan minus the
/// weight/bias accumulation, so the returned gradient is bit-identical to
/// the first element of the [`depthwise_backward`] tuple.
///
/// Convenience wrapper over [`depthwise_input_backward_ws`] with a
/// throwaway workspace — the two share one implementation, so results are
/// bit-identical by construction.
///
/// # Panics
///
/// Panics on rank or shape mismatches.
pub fn depthwise_input_backward(
    weight: &Tensor,
    grad_out: &Tensor,
    h: usize,
    w: usize,
    spec: ConvSpec,
) -> Tensor {
    depthwise_input_backward_ws(weight, grad_out, h, w, spec, &mut Workspace::new())
}

/// [`depthwise_input_backward`] drawing the gradient buffer from `ws`
/// (zero-filled checkout — the scatter accumulates with `+=`). Single
/// implementation behind both entry points.
///
/// # Panics
///
/// Panics on rank or shape mismatches.
pub fn depthwise_input_backward_ws(
    weight: &Tensor,
    grad_out: &Tensor,
    h: usize,
    w: usize,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    let (c, one, kh, kw) = dims4(weight);
    assert_eq!(one, 1, "depthwise: weight second dim must be 1");
    let (n, gc, oh, ow) = dims4(grad_out);
    assert_eq!(gc, c, "depthwise_input_backward: channel mismatch");
    assert_eq!(
        (oh, ow),
        (spec.out_size(h, kh), spec.out_size(w, kw)),
        "depthwise_input_backward: grad_out spatial dims mismatch"
    );
    let wd = weight.data();
    let god = grad_out.data();
    let mut grad_input = ws.take(n * c * h * w);
    for i in 0..n {
        for ch in 0..c {
            let ker = &wd[ch * kh * kw..(ch + 1) * kh * kw];
            let go = &god[(i * c + ch) * oh * ow..(i * c + ch + 1) * oh * ow];
            let gi = &mut grad_input[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let pix = iy as usize * w + ix as usize;
                            gi[pix] += g * ker[ky * kw + kx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(grad_input, &[n, c, h, w])
}

/// Dense convolution forward pass.
///
/// `input` is `[N, IC, H, W]`, `weight` is `[OC, IC, KH, KW]`, optional
/// `bias` is `[OC]`; the result is `[N, OC, OH, OW]`.
///
/// # Panics
///
/// Panics on any rank or channel-count mismatch.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Tensor {
    conv2d_forward_ws(input, weight, bias, spec, &mut Workspace::new())
}

/// [`conv2d_forward`] drawing every scratch buffer — the im2col columns and
/// the output itself — from `ws` instead of the allocator.
///
/// This is the single dense-conv forward implementation
/// ([`conv2d_forward`] wraps it with a throwaway workspace), so the two
/// entry points are bit-identical by construction. The batch is fused into
/// **one wide GEMM**: all N images are unfolded side by side into a
/// `[IC·KH·KW, N·OH·OW]` column matrix and multiplied by the weight panel
/// in a single call — each output element is still the same ascending-`k`
/// dot product, so results are bit-identical to the per-image loop. The
/// weight is packed k-major once per weight version via
/// [`Workspace::packed_transpose`] and the panel is reused across every
/// subsequent call (every Adam step of a refine loop).
///
/// After the first call at a given geometry, repeat calls with the same
/// (warm) workspace perform no heap allocation inside the kernel; the
/// returned output tensor is built from a workspace buffer, so callers
/// that hand it back via [`Workspace::recycle`] keep the steady state
/// allocation-free.
///
/// # Panics
///
/// Panics on any rank or channel-count mismatch.
pub fn conv2d_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    conv2d_forward_ref_ws(input, WeightRef::Dense(weight), bias, spec, ws)
}

/// [`conv2d_forward_ws`] generalized over the weight precision.
///
/// The dense arm is the exact pre-quantization code path (bit-identical
/// results, pinned by `tests/kernel_reference.rs`); a quantized weight
/// goes through [`Workspace::packed_dequant`], which unpacks + transposes
/// the panel once per content id — the GEMM tiles themselves see the same
/// unit-stride f32 panels either way, so the steady-state dequantization
/// cost is zero.
///
/// # Panics
///
/// Panics on any rank or channel-count mismatch.
pub fn conv2d_forward_ref_ws(
    input: &Tensor,
    weight: WeightRef<'_>,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d: input must be [N,IC,H,W]");
    let (n, ic, h, w) = dims4(input);
    let (oc, wic, kh, kw) = dims4_ref(&weight);
    assert_eq!(
        ic, wic,
        "conv2d: input channels {ic} != weight channels {wic}"
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), oc, "conv2d: bias length mismatch");
    }
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let rows = ic * kh * kw;
    let cols = oh * ow;
    let wide = n * cols;
    let id = input.data();
    // All N images side by side: padding taps must read as zero, so the
    // wide column matrix is blanket-zeroed once before the strided writes.
    let mut cols_all = ws.take_dirty(rows * wide);
    cols_all.fill(0.0);
    for i in 0..n {
        let img = &id[i * ic * h * w..(i + 1) * ic * h * w];
        im2col_strided_into(img, ic, h, w, kh, kw, spec, wide, i * cols, &mut cols_all);
    }
    let mut out_wide = ws.take_dirty(oc * wide);
    let mut out = ws.take_dirty(n * oc * cols);
    // weight is [OC, IC, KH, KW] row-major == the [OC, IC·KH·KW] GEMM
    // matrix; packed k-major once per weight version, then one wide GEMM.
    // (The panel fetch is the workspace's last borrow before the GEMM.)
    let wt: &[f32] = match weight {
        WeightRef::Dense(t) => ws.packed_transpose(t, oc, rows),
        WeightRef::Quant(q) => ws.packed_dequant(q, oc, rows),
    };
    ops::matmul_transa_into(wt, &cols_all, oc, rows, wide, &mut out_wide);
    // Un-interleave [OC, N·cols] → [N, OC, cols], fusing the bias add.
    for i in 0..n {
        for ch in 0..oc {
            let src = &out_wide[ch * wide + i * cols..ch * wide + (i + 1) * cols];
            let dst = &mut out[(i * oc + ch) * cols..(i * oc + ch + 1) * cols];
            match bias {
                Some(b) => {
                    let bv = b.data()[ch];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bv;
                    }
                }
                None => dst.copy_from_slice(src),
            }
        }
    }
    ws.put(cols_all);
    ws.put(out_wide);
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Gradients of a dense convolution.
///
/// Given `grad_out = dL/d output` of shape `[N, OC, OH, OW]`, returns
/// `(grad_input, grad_weight, grad_bias)` with the shapes of `input`,
/// `weight`, and `[OC]` respectively.
///
/// # Panics
///
/// Panics on any rank or shape mismatch.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor, Tensor) {
    conv2d_backward_ws(input, weight, grad_out, spec, &mut Workspace::new())
}

/// [`conv2d_backward`] drawing its im2col / GEMM scratch buffers from `ws`.
///
/// Single implementation behind both entry points ([`conv2d_backward`]
/// wraps it with a throwaway workspace): the per-image accumulation order
/// is unchanged, so gradients are bit-identical by construction. The
/// training path holds a layer-owned workspace across steps so the im2col
/// columns — the dominant transient of the backward pass — are allocated
/// once per geometry instead of once per call.
///
/// # Panics
///
/// Panics on any rank or shape mismatch.
pub fn conv2d_backward_ws(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Tensor) {
    let (n, ic, h, w) = dims4(input);
    let (oc, _, kh, kw) = dims4(weight);
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    assert_eq!(
        grad_out.shape(),
        &[n, oc, oh, ow],
        "conv2d_backward: grad_out shape mismatch"
    );
    let rows = ic * kh * kw;
    let cols = oh * ow;
    let id = input.data();
    let wd = weight.data(); // [OC, IC·KH·KW] row-major, no reshape copy
    let god = grad_out.data();
    let mut grad_input = Tensor::zeros(&[n, ic, h, w]);
    let mut grad_w_mat = Tensor::zeros(&[oc, rows]);
    let mut grad_bias = Tensor::zeros(&[oc]);
    let mut cols_buf = ws.take_dirty(rows * cols);
    let mut gw_buf = ws.take_dirty(oc * rows);
    let mut grad_cols = ws.take_dirty(rows * cols);
    for i in 0..n {
        let img = &id[i * ic * h * w..(i + 1) * ic * h * w];
        im2col_into(img, ic, h, w, kh, kw, spec, &mut cols_buf);
        let go = &god[i * oc * cols..(i + 1) * oc * cols];
        // dL/dW += grad_out_i @ cols^T
        ops::matmul_transb_into(go, &cols_buf, oc, cols, rows, &mut gw_buf);
        for (acc, &g) in grad_w_mat.data_mut().iter_mut().zip(&gw_buf) {
            *acc += g;
        }
        // dL/dbias += row sums
        for ch in 0..oc {
            let s: f32 = go[ch * cols..(ch + 1) * cols].iter().sum();
            grad_bias.data_mut()[ch] += s;
        }
        // dL/dcols = W^T @ grad_out_i, then fold back.
        ops::matmul_transa_into(wd, go, rows, oc, cols, &mut grad_cols);
        let gi = &mut grad_input.data_mut()[i * ic * h * w..(i + 1) * ic * h * w];
        col2im_into(&grad_cols, ic, h, w, kh, kw, spec, gi);
    }
    ws.put(cols_buf);
    ws.put(gw_buf);
    ws.put(grad_cols);
    (grad_input, grad_w_mat.reshape(weight.shape()), grad_bias)
}

/// Depthwise convolution forward pass: each channel is convolved with its own
/// single-channel kernel.
///
/// `input` is `[N, C, H, W]`, `weight` is `[C, 1, KH, KW]`, optional `bias`
/// is `[C]`; the result is `[N, C, OH, OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Tensor {
    depthwise_forward_ws(input, weight, bias, spec, &mut Workspace::new())
}

/// [`depthwise_forward`] drawing the output buffer from `ws`.
///
/// Single implementation behind both entry points — bit-identical by
/// construction. The per-pixel kernel fully overwrites the output, so a
/// dirty workspace buffer is fine; recycling the returned tensor keeps
/// steady-state inference allocation-free.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(input.ndim(), 4, "depthwise: input must be [N,C,H,W]");
    assert_eq!(weight.ndim(), 4, "depthwise: weight must be [C,1,KH,KW]");
    let (n, c, h, w) = dims4(input);
    let (wc, one, kh, kw) = dims4(weight);
    assert_eq!(c, wc, "depthwise: channel mismatch {c} vs {wc}");
    assert_eq!(one, 1, "depthwise: weight second dim must be 1");
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let mut out = ws.take_dirty(n * c * oh * ow);
    let id = input.data();
    let wd = weight.data();
    for i in 0..n {
        for ch in 0..c {
            let img = &id[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let ker = &wd[ch * kh * kw..(ch + 1) * kh * kw];
            let bv = bias.map(|b| b.data()[ch]).unwrap_or(0.0);
            let o = &mut out[(i * c + ch) * oh * ow..(i * c + ch + 1) * oh * ow];
            conv_single_into(img, h, w, ker, kh, kw, spec, bv, o);
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Gradients of a depthwise convolution; returns
/// `(grad_input, grad_weight, grad_bias)`.
///
/// # Panics
///
/// Panics on rank or shape mismatches.
pub fn depthwise_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = dims4(input);
    let (_, _, kh, kw) = dims4(weight);
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    assert_eq!(
        grad_out.shape(),
        &[n, c, oh, ow],
        "depthwise_backward: grad_out shape mismatch"
    );
    let mut grad_input = vec![0.0f32; n * c * h * w];
    let mut grad_weight = vec![0.0f32; c * kh * kw];
    let mut grad_bias = vec![0.0f32; c];
    let id = input.data();
    let wd = weight.data();
    let god = grad_out.data();
    for i in 0..n {
        for ch in 0..c {
            let img = &id[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let ker = &wd[ch * kh * kw..(ch + 1) * kh * kw];
            let go = &god[(i * c + ch) * oh * ow..(i * c + ch + 1) * oh * ow];
            let gi = &mut grad_input[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let gw = &mut grad_weight[ch * kh * kw..(ch + 1) * kh * kw];
            grad_bias[ch] += go.iter().sum::<f32>();
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go[oy * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let pix = iy as usize * w + ix as usize;
                            gi[pix] += g * ker[ky * kw + kx];
                            gw[ky * kw + kx] += g * img[pix];
                        }
                    }
                }
            }
        }
    }
    (
        Tensor::from_vec(grad_input, &[n, c, h, w]),
        Tensor::from_vec(grad_weight, weight.shape()),
        Tensor::from_vec(grad_bias, &[c]),
    )
}

/// Convolves a single-channel image with a single kernel (used by SSIM's
/// gaussian blur and the depthwise kernels). Writes into `out`.
///
/// The unpadded case (SSIM's "valid" blur on every refine step) takes a
/// branch-free tight loop; the accumulation order over `(ky, kx)` is the
/// same in both branches, so results are bit-identical.
#[allow(clippy::too_many_arguments)] // flat scalar kernel signature, hot path
pub(crate) fn conv_single_into(
    img: &[f32],
    h: usize,
    w: usize,
    ker: &[f32],
    kh: usize,
    kw: usize,
    spec: ConvSpec,
    bias: f32,
    out: &mut [f32],
) {
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    debug_assert_eq!(out.len(), oh * ow);
    if spec.pad == 0 {
        for oy in 0..oh {
            let iy0 = oy * spec.stride;
            for ox in 0..ow {
                let ix0 = ox * spec.stride;
                let mut acc = bias;
                for ky in 0..kh {
                    let irow = &img[(iy0 + ky) * w + ix0..(iy0 + ky) * w + ix0 + kw];
                    for (&iv, &kv) in irow.iter().zip(&ker[ky * kw..(ky + 1) * kw]) {
                        acc += iv * kv;
                    }
                }
                out[oy * ow + ox] = acc;
            }
        }
        return;
    }
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = bias;
            for ky in 0..kh {
                let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kx in 0..kw {
                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    acc += img[iy as usize * w + ix as usize] * ker[ky * kw + kx];
                }
            }
            out[oy * ow + ox] = acc;
        }
    }
}

/// Valid (no padding, stride 1) convolution of one `[H, W]` plane with a
/// `[KH, KW]` kernel; the result is `[H-KH+1, W-KW+1]`.
///
/// # Panics
///
/// Panics if either tensor is not rank-2 or the kernel does not fit.
pub fn conv2d_valid_single(img: &Tensor, ker: &Tensor) -> Tensor {
    assert_eq!(img.ndim(), 2, "conv2d_valid_single: image must be rank-2");
    assert_eq!(ker.ndim(), 2, "conv2d_valid_single: kernel must be rank-2");
    let (h, w) = (img.shape()[0], img.shape()[1]);
    let (kh, kw) = (ker.shape()[0], ker.shape()[1]);
    let spec = ConvSpec::new(1, 0);
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let mut out = vec![0.0f32; oh * ow];
    conv_single_into(img.data(), h, w, ker.data(), kh, kw, spec, 0.0, &mut out);
    Tensor::from_vec(out, &[oh, ow])
}

/// Slice-level [`conv2d_valid_single_adjoint`]: scatters the `[OH, OW]`
/// gradient back onto the zero-filled-by-this-call `[H, W]` plane `out`
/// (dirty workspace buffers are fine). Same scatter order as the tensor
/// entry point, which wraps it — bit-identical by construction.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
pub(crate) fn conv_valid_adjoint_into(
    grad: &[f32],
    oh: usize,
    ow: usize,
    ker: &[f32],
    kh: usize,
    kw: usize,
    w: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    for oy in 0..oh {
        for ox in 0..ow {
            let g = grad[oy * ow + ox];
            if g == 0.0 {
                continue;
            }
            for ky in 0..kh {
                for kx in 0..kw {
                    out[(oy + ky) * w + (ox + kx)] += g * ker[ky * kw + kx];
                }
            }
        }
    }
}

/// Adjoint of [`conv2d_valid_single`] with respect to the image: scatters an
/// output-sized gradient back onto an `[H, W]` input-gradient plane
/// ("full" correlation with the same kernel).
///
/// # Panics
///
/// Panics on rank mismatches or if `grad.shape()` is inconsistent with
/// `(h, w)` and the kernel.
pub fn conv2d_valid_single_adjoint(grad: &Tensor, ker: &Tensor, h: usize, w: usize) -> Tensor {
    assert_eq!(grad.ndim(), 2, "adjoint: grad must be rank-2");
    assert_eq!(ker.ndim(), 2, "adjoint: kernel must be rank-2");
    let (kh, kw) = (ker.shape()[0], ker.shape()[1]);
    let (oh, ow) = (grad.shape()[0], grad.shape()[1]);
    assert_eq!(oh, h + 1 - kh, "adjoint: grad height mismatch");
    assert_eq!(ow, w + 1 - kw, "adjoint: grad width mismatch");
    let mut out = vec![0.0f32; h * w];
    conv_valid_adjoint_into(grad.data(), oh, ow, ker.data(), kh, kw, w, &mut out);
    Tensor::from_vec(out, &[h, w])
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "expected rank-4 tensor, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

fn dims4_ref(w: &WeightRef<'_>) -> (usize, usize, usize, usize) {
    let s = w.shape();
    assert_eq!(s.len(), 4, "expected rank-4 weight, got {s:?}");
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: &[usize]) -> Tensor {
        Tensor::from_fn(shape, |i| (i as f32 * 0.37).sin())
    }

    #[test]
    fn out_size_math() {
        let s = ConvSpec::new(1, 0);
        assert_eq!(s.out_size(5, 3), 3);
        let s = ConvSpec::new(2, 1);
        assert_eq!(s.out_size(8, 3), 4);
        let s = ConvSpec::new(1, 1);
        assert_eq!(s.out_size(4, 3), 4); // 'same' for 3x3
    }

    #[test]
    fn identity_kernel_preserves_image() {
        // 1x1 kernel of value 1 with stride 1 pad 0 is the identity.
        let img = seq_tensor(&[1, 2, 4, 4]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let out = conv2d_forward(&img, &w, None, ConvSpec::default());
        assert_eq!(out.shape(), img.shape());
        for (a, b) in out.data().iter().zip(img.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv_matches_manual_3x3() {
        // Single-channel 3x3 image, 2x2 averaging kernel.
        let img = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::full(&[1, 1, 2, 2], 0.25);
        let out = conv2d_forward(&img, &w, None, ConvSpec::default());
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let img = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[3, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = conv2d_forward(&img, &w, Some(&b), ConvSpec::default());
        assert_eq!(out.index_axis0(0).index_axis0(2).data(), &[3.0; 4]);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the pair is a
        // true adjoint, which is exactly what backprop needs.
        let spec = ConvSpec::new(2, 1);
        let x = seq_tensor(&[2, 5, 5]);
        let cols_mat = im2col(&x, 3, 3, spec);
        let y = Tensor::from_fn(cols_mat.shape(), |i| ((i * 13 % 7) as f32) - 3.0);
        let lhs = cols_mat.dot(&y);
        let folded = col2im(&y, 2, 5, 5, 3, 3, spec);
        let rhs = x.dot(&folded);
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv2d_gradients_match_finite_differences() {
        let spec = ConvSpec::new(1, 1);
        let x = seq_tensor(&[2, 2, 4, 4]);
        let w = seq_tensor(&[3, 2, 3, 3]).scale(0.5);
        let b = seq_tensor(&[3]);
        // Loss = sum(conv(x)); dL/d out = ones.
        let out = conv2d_forward(&x, &w, Some(&b), spec);
        let go = Tensor::ones(out.shape());
        let (gi, gw, gb) = conv2d_backward(&x, &w, &go, spec);
        let eps = 1e-3;
        // Check a handful of input coordinates.
        for &flat in &[0usize, 7, 19, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fp = conv2d_forward(&xp, &w, Some(&b), spec).sum();
            let fm = conv2d_forward(&xm, &w, Some(&b), spec).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 1e-2,
                "input grad mismatch at {flat}: num={num} ana={}",
                gi.data()[flat]
            );
        }
        // Check weight coordinates.
        for &flat in &[0usize, 11, 33, 53] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let fp = conv2d_forward(&x, &wp, Some(&b), spec).sum();
            let fm = conv2d_forward(&x, &wm, Some(&b), spec).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gw.data()[flat]).abs() < 1e-2,
                "weight grad mismatch at {flat}: num={num} ana={}",
                gw.data()[flat]
            );
        }
        // Bias gradient is the number of output pixels per channel.
        let expected = (out.len() / 3) as f32;
        for ch in 0..3 {
            assert!((gb.data()[ch] - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn depthwise_matches_dense_with_diagonal_weights() {
        // A depthwise conv equals a dense conv whose weight is diagonal in
        // the channel dimensions.
        let spec = ConvSpec::new(1, 1);
        let x = seq_tensor(&[1, 3, 5, 5]);
        let dw = seq_tensor(&[3, 1, 3, 3]);
        let out_dw = depthwise_forward(&x, &dw, None, spec);
        let mut dense = Tensor::zeros(&[3, 3, 3, 3]);
        for c in 0..3 {
            for k in 0..9 {
                let v = dw.data()[c * 9 + k];
                dense.data_mut()[((c * 3 + c) * 9) + k] = v;
            }
        }
        let out_dense = conv2d_forward(&x, &dense, None, spec);
        assert_eq!(out_dw.shape(), out_dense.shape());
        for (a, b) in out_dw.data().iter().zip(out_dense.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn depthwise_gradients_match_finite_differences() {
        let spec = ConvSpec::new(1, 1);
        let x = seq_tensor(&[1, 2, 4, 4]);
        let w = seq_tensor(&[2, 1, 3, 3]);
        let out = depthwise_forward(&x, &w, None, spec);
        let go = Tensor::ones(out.shape());
        let (gi, gw, _gb) = depthwise_backward(&x, &w, &go, spec);
        let eps = 1e-3;
        for &flat in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (depthwise_forward(&xp, &w, None, spec).sum()
                - depthwise_forward(&xm, &w, None, spec).sum())
                / (2.0 * eps);
            assert!((num - gi.data()[flat]).abs() < 1e-2);
        }
        for &flat in &[0usize, 8, 12] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let num = (depthwise_forward(&x, &wp, None, spec).sum()
                - depthwise_forward(&x, &wm, None, spec).sum())
                / (2.0 * eps);
            assert!((num - gw.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn valid_single_and_adjoint_are_adjoint() {
        let img = seq_tensor(&[6, 7]);
        let ker = seq_tensor(&[3, 3]);
        let out = conv2d_valid_single(&img, &ker);
        assert_eq!(out.shape(), &[4, 5]);
        let y = Tensor::from_fn(out.shape(), |i| (i as f32 % 5.0) - 2.0);
        let lhs = out.dot(&y);
        let back = conv2d_valid_single_adjoint(&y, &ker, 6, 7);
        let rhs = img.dot(&back);
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn strided_conv_shapes() {
        let x = seq_tensor(&[2, 3, 8, 8]);
        let w = seq_tensor(&[4, 3, 3, 3]);
        let out = conv2d_forward(&x, &w, None, ConvSpec::new(2, 1));
        assert_eq!(out.shape(), &[2, 4, 4, 4]);
        let (gi, gw, gb) = conv2d_backward(&x, &w, &Tensor::ones(out.shape()), ConvSpec::new(2, 1));
        assert_eq!(gi.shape(), x.shape());
        assert_eq!(gw.shape(), w.shape());
        assert_eq!(gb.shape(), &[4]);
    }
}
