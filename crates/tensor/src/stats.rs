//! Robust statistics used by the backdoor detectors.
//!
//! Every reverse-engineering defense in the paper (NC, TABOR, USB) reduces a
//! model to one scalar per class — the L1 norm of that class's reversed
//! trigger — and then asks: *is any class an outlier on the small side?*
//! The outlier test is the median-absolute-deviation (MAD) based anomaly
//! index of Neural Cleanse: `|x − median| / (1.4826 · MAD)`, flagged when it
//! exceeds 2.0 *and* the value sits below the median.

use std::cmp::Ordering;

/// Consistency constant that makes the MAD an unbiased estimator of the
/// standard deviation under normality (Neural Cleanse uses the same value).
pub const MAD_CONSISTENCY: f64 = 1.4826;

/// Default anomaly-index threshold above which a class is flagged.
pub const DEFAULT_ANOMALY_THRESHOLD: f64 = 2.0;

/// Median of a slice (averaged middle pair for even lengths).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation (not yet scaled by [`MAD_CONSISTENCY`]).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mad(values: &[f64]) -> f64 {
    let med = median(values);
    let dev: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&dev)
}

/// Per-value anomaly indices: `|x − median| / (MAD_CONSISTENCY · mad)`.
///
/// When the MAD is zero (all values identical) the indices are all zero, so
/// nothing is flagged — the degenerate case of a perfectly uniform profile.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn anomaly_indices(values: &[f64]) -> Vec<f64> {
    let med = median(values);
    let m = mad(values);
    let denom = MAD_CONSISTENCY * m;
    values
        .iter()
        .map(|v| {
            if denom <= f64::EPSILON {
                0.0
            } else {
                (v - med).abs() / denom
            }
        })
        .collect()
}

/// The outlier decision used by all three defenses.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierReport {
    /// Anomaly index per class.
    pub indices: Vec<f64>,
    /// Classes flagged as suspiciously *small* outliers (candidate backdoor
    /// target classes), in ascending class order.
    pub flagged: Vec<usize>,
    /// Median of the input values.
    pub median: f64,
}

/// Flags classes whose value is an abnormally **small** outlier.
///
/// A class `t` is flagged when `anomaly_index(t) > threshold` and
/// `values[t] < median`, following Neural Cleanse: a backdoor shortcut makes
/// the reversed trigger of the target class much *smaller* than the others,
/// while abnormally large values are irrelevant.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// ```rust
/// # use usb_tensor::stats::flag_small_outliers;
/// let norms = [50.0, 52.0, 4.5, 49.0, 51.0, 48.0, 50.5, 49.5, 52.5, 47.0];
/// let report = flag_small_outliers(&norms, 2.0);
/// assert_eq!(report.flagged, vec![2]);
/// ```
pub fn flag_small_outliers(values: &[f64], threshold: f64) -> OutlierReport {
    let med = median(values);
    let indices = anomaly_indices(values);
    let flagged = indices
        .iter()
        .enumerate()
        .filter(|&(i, &idx)| idx > threshold && values[i] < med)
        .map(|(i, _)| i)
        .collect();
    OutlierReport {
        indices,
        flagged,
        median: med,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 8]), 0.0);
    }

    #[test]
    fn mad_known_value() {
        // values: 1..=7, median 4, deviations {3,2,1,0,1,2,3}, median 2.
        let v: Vec<f64> = (1..=7).map(f64::from).collect();
        assert_eq!(mad(&v), 2.0);
    }

    #[test]
    fn anomaly_indices_zero_for_uniform() {
        let idx = anomaly_indices(&[3.0; 10]);
        assert!(idx.iter().all(|&i| i == 0.0));
    }

    #[test]
    fn flags_only_small_outliers() {
        // One small outlier (index 2) and one large outlier (index 7): only
        // the small one is a backdoor signature.
        let v = [50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 200.0, 49.0, 51.0];
        let rep = flag_small_outliers(&v, 2.0);
        assert_eq!(rep.flagged, vec![2]);
        assert!(rep.indices[7] > 2.0, "large outlier has big index too");
    }

    #[test]
    fn clean_profile_unflagged() {
        let v = [50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0];
        let rep = flag_small_outliers(&v, 2.0);
        assert!(rep.flagged.is_empty(), "flagged {:?}", rep.flagged);
    }

    #[test]
    fn multiple_small_outliers_all_flagged() {
        let v = [50.0, 5.0, 47.0, 6.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0];
        let rep = flag_small_outliers(&v, 2.0);
        assert_eq!(rep.flagged, vec![1, 3]);
    }

    #[test]
    fn threshold_is_respected() {
        let v = [10.0, 10.5, 9.5, 8.0, 10.2, 9.8, 10.1, 9.9, 10.3, 9.7];
        let strict = flag_small_outliers(&v, 100.0);
        assert!(strict.flagged.is_empty());
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn anomaly_indices_empty_panics() {
        let _ = anomaly_indices(&[]);
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn flag_small_outliers_empty_panics() {
        let _ = flag_small_outliers(&[], 2.0);
    }

    #[test]
    fn single_element_is_its_own_median_and_never_flagged() {
        assert_eq!(median(&[42.0]), 42.0);
        assert_eq!(mad(&[42.0]), 0.0);
        assert_eq!(anomaly_indices(&[42.0]), vec![0.0]);
        let rep = flag_small_outliers(&[42.0], 2.0);
        assert!(rep.flagged.is_empty());
        assert_eq!(rep.median, 42.0);
    }

    #[test]
    fn all_equal_values_are_degenerate_but_unflagged() {
        // MAD = 0: the anomaly index must degrade to 0 everywhere instead
        // of dividing by zero, so a perfectly uniform profile is clean.
        let v = [3.25; 9];
        assert_eq!(mad(&v), 0.0);
        let rep = flag_small_outliers(&v, 2.0);
        assert!(rep.indices.iter().all(|&i| i == 0.0));
        assert!(rep.flagged.is_empty());
    }

    #[test]
    fn two_elements_are_never_small_outliers() {
        // With two values each sits 1 MAD from the median — indices are
        // equal, so neither can cross a sane threshold alone.
        let rep = flag_small_outliers(&[1.0, 100.0], 2.0);
        assert!(rep.flagged.is_empty());
        assert!((rep.indices[0] - rep.indices[1]).abs() < 1e-12);
    }

    #[test]
    fn flagging_survives_huge_magnitudes() {
        // Values near the top of the f64 range: deviations and indices must
        // stay finite and the tiny entry must still be flagged.
        let v = [1.00e300, 1.0, 0.90e300, 1.10e300, 0.95e300, 1.05e300];
        let rep = flag_small_outliers(&v, 2.0);
        assert!(rep.indices.iter().all(|i| i.is_finite()));
        assert_eq!(rep.flagged, vec![1]);
    }

    #[test]
    fn majority_identical_values_give_zero_mad_and_no_flags() {
        // MAD collapses to 0 when more than half the values coincide; the
        // degenerate path must yield zero indices, not a division by zero.
        let v = [5.0, 1.0, 5.0, 5.0, 5.0];
        let rep = flag_small_outliers(&v, 2.0);
        assert!(rep.indices.iter().all(|&i| i == 0.0));
        assert!(rep.flagged.is_empty());
    }
}
