//! Versioned binary serialization for [`Tensor`] plus the shared little-
//! endian read/write primitives the higher persistence layers
//! (`usb_nn::serde`, `usb_attacks::persist`) are built from.
//!
//! # On-disk tensor record (format version 2)
//!
//! All multi-byte values are **little-endian**; the payload encoding is
//! selected by the dtype tag — `f32` payloads are the tensor's row-major
//! buffer, bit-exact (no quantisation, no compression); `f16`/`q8`
//! payloads are the [`crate::quant`] codecs' byte streams:
//!
//! ```text
//! offset  size        field
//! 0       4           magic b"USBT"
//! 4       2           u16 format version (currently 2)
//! 6       2           u16 dtype tag: 0 f32, 1 f16, 2 q8
//! 8       4           u32 ndim
//! 12      8 * ndim    u64 dims, outermost first
//! ...     varies      payload (f32: 4·numel bytes row-major;
//!                              f16: 2·numel; q8: 36·⌈numel/32⌉)
//! end     4           u32 CRC-32 (IEEE) over bytes [8, end-4)
//! ```
//!
//! Version 1 had a reserved always-zero `u16 flags` field where the dtype
//! tag now lives; an f32 v2 record is therefore byte-identical to its v1
//! twin except for the version field itself. Readers are exact (v1 is
//! rejected), per the PERSISTENCE.md policy.
//!
//! The checksum covers the shape and payload but not the preamble, so a
//! version bump never changes how the checksum is computed. Readers must
//! reject unknown magic, unknown versions, unknown dtype tags, truncated
//! records, and checksum mismatches with a clean [`IoError`] — never a
//! panic. See the repository's `PERSISTENCE.md` for the full format and
//! compatibility policy.
//!
//! # Example
//!
//! ```rust
//! use usb_tensor::{io, Tensor};
//!
//! let t = Tensor::from_vec(vec![1.0, -2.5, 3.25, 0.0], &[2, 2]);
//! let mut buf = Vec::new();
//! io::write_tensor(&mut buf, &t).unwrap();
//! let back = io::read_tensor(&mut buf.as_slice()).unwrap();
//! assert_eq!(back.shape(), t.shape());
//! assert_eq!(back.data(), t.data());
//! ```

use crate::quant::{Dtype, QTensor};
use crate::Tensor;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every tensor record.
pub const TENSOR_MAGIC: [u8; 4] = *b"USBT";

/// Current tensor-record format version.
///
/// Version 2 repurposed the reserved v1 flags field as the dtype tag
/// (f32 / f16 / q8); see the module docs for the layout.
pub const TENSOR_VERSION: u16 = 2;

/// Error produced by the persistence layer: either an underlying I/O
/// failure or a malformed/incompatible byte stream.
#[derive(Debug)]
pub enum IoError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The bytes do not form a valid record of the expected format/version
    /// (bad magic, unknown version, truncation, checksum mismatch, ...).
    Format(String),
}

impl IoError {
    /// Convenience constructor for format violations.
    pub fn format(msg: impl Into<String>) -> Self {
        IoError::Format(msg.into())
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        // Unexpected EOF while decoding is a truncation, i.e. a format
        // violation of the record, not an environment failure.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IoError::Format("unexpected end of data (truncated record)".to_owned())
        } else {
            IoError::Io(e)
        }
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 (IEEE) accumulator used to checksum records as they
/// stream through a writer or reader.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = CRC32_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Finalises and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// FNV-1a 64-bit hash — the workspace's cheap content hash for fixture
/// cache keys (config + seed fingerprints). Not cryptographic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Little-endian scalar + string primitives
// ---------------------------------------------------------------------

/// Writes a `u16` little-endian.
pub fn write_u16(w: &mut impl Write, v: u16) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes()).map_err(IoError::from)
}

/// Writes a `u32` little-endian.
pub fn write_u32(w: &mut impl Write, v: u32) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes()).map_err(IoError::from)
}

/// Writes a `u64` little-endian.
pub fn write_u64(w: &mut impl Write, v: u64) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes()).map_err(IoError::from)
}

/// Writes an `f32` as its little-endian IEEE-754 bits (bit-exact).
pub fn write_f32(w: &mut impl Write, v: f32) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes()).map_err(IoError::from)
}

/// Writes an `f64` as its little-endian IEEE-754 bits (bit-exact).
pub fn write_f64(w: &mut impl Write, v: f64) -> Result<(), IoError> {
    w.write_all(&v.to_le_bytes()).map_err(IoError::from)
}

/// Writes a UTF-8 string as `u16` byte length + bytes.
///
/// # Errors
///
/// Returns [`IoError::Format`] if the string exceeds 65535 bytes.
pub fn write_str(w: &mut impl Write, s: &str) -> Result<(), IoError> {
    let len: u16 = s
        .len()
        .try_into()
        .map_err(|_| IoError::format(format!("string too long to serialize: {} bytes", s.len())))?;
    write_u16(w, len)?;
    w.write_all(s.as_bytes()).map_err(IoError::from)
}

/// Reads a `u16` little-endian.
pub fn read_u16(r: &mut impl Read) -> Result<u16, IoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Reads a `u32` little-endian.
pub fn read_u32(r: &mut impl Read) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a `u64` little-endian.
pub fn read_u64(r: &mut impl Read) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads an `f32` from little-endian IEEE-754 bits.
pub fn read_f32(r: &mut impl Read) -> Result<f32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Reads an `f64` from little-endian IEEE-754 bits.
pub fn read_f64(r: &mut impl Read) -> Result<f64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Reads a `u16`-length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`IoError::Format`] on truncation or invalid UTF-8.
pub fn read_str(r: &mut impl Read) -> Result<String, IoError> {
    let len = read_u16(r)? as usize;
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| IoError::format("string is not valid UTF-8"))
}

/// Reads and checks a 4-byte magic; `what` names the record kind in the
/// error message.
pub fn expect_magic(r: &mut impl Read, magic: &[u8; 4], what: &str) -> Result<(), IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    if &b != magic {
        return Err(IoError::format(format!(
            "bad magic for {what}: expected {:?}, found {:?}",
            String::from_utf8_lossy(magic),
            String::from_utf8_lossy(&b)
        )));
    }
    Ok(())
}

/// Reads and checks a version field; `what` names the record kind.
pub fn expect_version(r: &mut impl Read, supported: u16, what: &str) -> Result<(), IoError> {
    let v = read_u16(r)?;
    if v != supported {
        return Err(IoError::format(format!(
            "unsupported {what} format version {v} (this build reads version {supported})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Tensor records
// ---------------------------------------------------------------------

/// One decoded tensor record: dense f32 or quantized, by the dtype tag.
#[derive(Debug, Clone)]
pub enum TensorRecord {
    /// A bit-exact f32 record (dtype tag 0).
    Dense(Tensor),
    /// A quantized record (dtype tag 1 or 2), payload kept encoded.
    Quant(QTensor),
}

/// Writes `t` as one self-delimiting dense (f32) tensor record (see
/// module docs for the byte layout).
pub fn write_tensor(w: &mut impl Write, t: &Tensor) -> Result<(), IoError> {
    w.write_all(&TENSOR_MAGIC)?;
    write_u16(w, TENSOR_VERSION)?;
    write_u16(w, Dtype::F32.tag() as u16)?;
    let mut crc = Crc32::new();
    let mut emit = |w: &mut dyn Write, bytes: &[u8]| -> Result<(), IoError> {
        crc.update(bytes);
        w.write_all(bytes).map_err(IoError::from)
    };
    emit(w, &(t.ndim() as u32).to_le_bytes())?;
    for &d in t.shape() {
        emit(w, &(d as u64).to_le_bytes())?;
    }
    // Stream the payload through a bounded buffer: one write per 64 KiB
    // chunk rather than a second full copy of the tensor in memory.
    const CHUNK_ELEMS: usize = 16 * 1024;
    let mut buf = Vec::with_capacity(4 * CHUNK_ELEMS.min(t.len()));
    for chunk in t.data().chunks(CHUNK_ELEMS) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        emit(w, &buf)?;
    }
    write_u32(w, crc.finish())
}

/// Writes a quantized tensor as one self-delimiting record (dtype tag
/// f16 or q8; the payload is the codec's byte stream, verbatim).
pub fn write_qtensor(w: &mut impl Write, q: &QTensor) -> Result<(), IoError> {
    w.write_all(&TENSOR_MAGIC)?;
    write_u16(w, TENSOR_VERSION)?;
    write_u16(w, q.dtype().tag() as u16)?;
    let mut crc = Crc32::new();
    let mut emit = |w: &mut dyn Write, bytes: &[u8]| -> Result<(), IoError> {
        crc.update(bytes);
        w.write_all(bytes).map_err(IoError::from)
    };
    emit(w, &(q.shape().len() as u32).to_le_bytes())?;
    for &d in q.shape() {
        emit(w, &(d as u64).to_le_bytes())?;
    }
    emit(w, q.bytes())?;
    write_u32(w, crc.finish())
}

/// Reads one tensor record of any dtype (dense or quantized).
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic, unknown version, unknown
/// dtype tag, truncation, an implausible shape, or checksum mismatch; the
/// reader never panics on malformed input.
pub fn read_tensor_record(r: &mut impl Read) -> Result<TensorRecord, IoError> {
    expect_magic(r, &TENSOR_MAGIC, "tensor record")?;
    expect_version(r, TENSOR_VERSION, "tensor record")?;
    let tag = read_u16(r)?;
    let dtype = u8::try_from(tag)
        .ok()
        .and_then(Dtype::from_tag)
        .ok_or_else(|| IoError::format(format!("tensor record has unknown dtype tag {tag}")))?;
    let mut crc = Crc32::new();
    let ndim_bytes = {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        b
    };
    crc.update(&ndim_bytes);
    let ndim = u32::from_le_bytes(ndim_bytes) as usize;
    if ndim > 8 {
        return Err(IoError::format(format!(
            "tensor rank {ndim} exceeds the supported maximum of 8"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut numel: u64 = 1;
    for _ in 0..ndim {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        crc.update(&b);
        let d = u64::from_le_bytes(b);
        numel = numel.saturating_mul(d);
        shape.push(d as usize);
    }
    // 1 GiB of f32s is far beyond any model in this workspace; treat larger
    // claims as corruption rather than attempting the allocation.
    if numel > (1 << 28) {
        return Err(IoError::format(format!(
            "tensor claims {numel} elements — rejecting as corrupt"
        )));
    }
    let mut payload = vec![0u8; dtype.encoded_len(numel as usize)];
    r.read_exact(&mut payload)?;
    crc.update(&payload);
    let stored = read_u32(r)?;
    let computed = crc.finish();
    if stored != computed {
        return Err(IoError::format(format!(
            "tensor checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    match dtype {
        Dtype::F32 => {
            let data: Vec<f32> = payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Tensor::try_from_vec(data, &shape)
                .map(TensorRecord::Dense)
                .map_err(|e| IoError::format(format!("tensor record inconsistent: {e}")))
        }
        _ => QTensor::from_bytes(dtype, &shape, payload)
            .map(TensorRecord::Quant)
            .map_err(|e| IoError::format(format!("tensor record inconsistent: {e}"))),
    }
}

/// Reads one **dense f32** tensor record written by [`write_tensor`].
///
/// Records whose payload the caller expects to be exact — triggers, IAD
/// generator state, batch-norm buffers — go through this; a quantized
/// record where an f32 one is required is a format error, not a silent
/// dequantization.
///
/// # Errors
///
/// Same contract as [`read_tensor_record`], plus [`IoError::Format`] when
/// the record is quantized.
pub fn read_tensor(r: &mut impl Read) -> Result<Tensor, IoError> {
    match read_tensor_record(r)? {
        TensorRecord::Dense(t) => Ok(t),
        TensorRecord::Quant(q) => Err(IoError::format(format!(
            "expected an f32 tensor record, found {}",
            q.dtype()
        ))),
    }
}

/// Saves one tensor to `path` (creating parent directories).
pub fn save_tensor(path: &Path, t: &Tensor) -> Result<(), IoError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    write_tensor(&mut f, t)
}

/// Loads one tensor from `path`.
pub fn load_tensor(path: &Path) -> Result<Tensor, IoError> {
    let mut f = fs::File::open(path)?;
    let t = read_tensor(&mut f)?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_fn(&[2, 3, 4], |i| ((i as f32) * 0.37 - 2.0).sin() * 7.5)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let t = sample();
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(&mut buf.as_slice()).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_preserves_special_values() {
        let t = Tensor::from_vec(
            vec![
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                -0.0,
                f32::MIN_POSITIVE,
            ],
            &[5],
        );
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(&mut buf.as_slice()).unwrap();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_magic_is_a_clean_error() {
        let mut buf = Vec::new();
        write_tensor(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        let err = read_tensor(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "{err}");
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn unknown_version_is_a_clean_error() {
        let mut buf = Vec::new();
        write_tensor(&mut buf, &sample()).unwrap();
        buf[4] = 0xFF;
        buf[5] = 0xFF;
        let err = read_tensor(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_is_a_clean_error_at_every_length() {
        let mut buf = Vec::new();
        write_tensor(&mut buf, &sample()).unwrap();
        for len in 0..buf.len() {
            let err = read_tensor(&mut &buf[..len]).unwrap_err();
            assert!(matches!(err, IoError::Format(_)), "len {len}: {err}");
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut buf = Vec::new();
        write_tensor(&mut buf, &sample()).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_tensor(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn implausible_shape_is_rejected_without_allocation() {
        // magic + version + flags + ndim=1 + dim=u64::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(&TENSOR_MAGIC);
        buf.extend_from_slice(&TENSOR_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_tensor(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("rejecting"), "{err}");
    }

    #[test]
    fn quantized_records_roundtrip_their_encoded_bytes() {
        use crate::quant::Dtype;
        let t = sample();
        for dtype in [Dtype::F16, Dtype::Q8] {
            let q = QTensor::quantize(&t, dtype);
            let mut buf = Vec::new();
            write_qtensor(&mut buf, &q).unwrap();
            let TensorRecord::Quant(back) = read_tensor_record(&mut buf.as_slice()).unwrap() else {
                panic!("{dtype} record decoded as dense");
            };
            assert_eq!(back.dtype(), dtype);
            assert_eq!(back.shape(), q.shape());
            assert_eq!(back.bytes(), q.bytes(), "payload must survive verbatim");
        }
    }

    #[test]
    fn dense_records_decode_through_the_record_reader_too() {
        let t = sample();
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let TensorRecord::Dense(back) = read_tensor_record(&mut buf.as_slice()).unwrap() else {
            panic!("f32 record decoded as quantized");
        };
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn unknown_dtype_tag_is_a_clean_error() {
        let mut buf = Vec::new();
        write_tensor(&mut buf, &sample()).unwrap();
        buf[6] = 9; // dtype tag bytes live where the v1 flags did
        let err = read_tensor_record(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("dtype"), "{err}");
    }

    #[test]
    fn f32_strict_reader_rejects_quantized_records() {
        use crate::quant::Dtype;
        let q = QTensor::quantize(&sample(), Dtype::F16);
        let mut buf = Vec::new();
        write_qtensor(&mut buf, &q).unwrap();
        let err = read_tensor(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("expected an f32"), "{err}");
    }

    #[test]
    fn quantized_payload_corruption_fails_the_checksum() {
        use crate::quant::Dtype;
        let q = QTensor::quantize(&sample(), Dtype::Q8);
        let mut buf = Vec::new();
        write_qtensor(&mut buf, &q).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_tensor_record(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn quantized_truncation_is_a_clean_error_at_every_length() {
        use crate::quant::Dtype;
        let q = QTensor::quantize(&sample(), Dtype::Q8);
        let mut buf = Vec::new();
        write_qtensor(&mut buf, &q).unwrap();
        for len in 0..buf.len() {
            let err = read_tensor_record(&mut &buf[..len]).unwrap_err();
            assert!(matches!(err, IoError::Format(_)), "len {len}: {err}");
        }
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("usb_io_test");
        let path = dir.join("t.usbt");
        let t = sample();
        save_tensor(&path, &t).unwrap();
        let back = load_tensor(&path).unwrap();
        assert_eq!(back.data(), t.data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn scalar_primitives_roundtrip() {
        let mut buf = Vec::new();
        write_u16(&mut buf, 0xBEEF).unwrap();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 7).unwrap();
        write_f32(&mut buf, -0.0).unwrap();
        write_f64(&mut buf, std::f64::consts::PI).unwrap();
        write_str(&mut buf, "conv2d").unwrap();
        let r = &mut buf.as_slice();
        assert_eq!(read_u16(r).unwrap(), 0xBEEF);
        assert_eq!(read_u32(r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(r).unwrap(), u64::MAX - 7);
        assert_eq!(read_f32(r).unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(read_f64(r).unwrap(), std::f64::consts::PI);
        assert_eq!(read_str(r).unwrap(), "conv2d");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
