//! Structural similarity index (SSIM) with an analytic input gradient.
//!
//! The USB paper's Alg. 2 optimises `L = CE(f(x'), t) − SSIM(x, x') +
//! ‖mask‖₁`, so the trigger-refinement loop needs `∂SSIM/∂x'`. This module
//! implements the classic windowed SSIM of Wang et al. (2004) — gaussian
//! window, valid convolution — and derives the gradient in closed form.
//!
//! With `G` the gaussian blur, `p = G*x`, `q = G*(x∘x)`, `r = G*(x∘y)`,
//! `u_y = G*y`, `v_y = G*(y∘y) − u_y²`:
//!
//! ```text
//! A1 = 2·p·u_y + C1        B1 = p² + u_y² + C1
//! A2 = 2·(r − p·u_y) + C2  B2 = (q − p²) + v_y + C2
//! S  = (A1·A2)/(B1·B2)     ssim = mean(S)
//! ```
//!
//! and the chain rule through the three blurs gives
//!
//! ```text
//! ∂ssim/∂x = Gᵀ(∂S/∂p)/|S| + 2x∘Gᵀ(∂S/∂q)/|S| + y∘Gᵀ(∂S/∂r)/|S|
//! ```
//!
//! where `Gᵀ` is the adjoint blur ([`crate::conv::conv2d_valid_single_adjoint`]).
//! The gradient is verified against finite differences in the tests.

use crate::conv::{conv_single_into, conv_valid_adjoint_into, ConvSpec};
use crate::{Tensor, Workspace};
use std::cell::RefCell;

/// Stabilisation constants `(C1, C2)` from the SSIM paper, for a dynamic
/// range `L`: `C1 = (0.01 L)²`, `C2 = (0.03 L)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConstants {
    /// Luminance stabiliser `C1`.
    pub c1: f32,
    /// Contrast stabiliser `C2`.
    pub c2: f32,
}

impl SsimConstants {
    /// Constants for images with values in `[0, range]`.
    pub fn for_range(range: f32) -> Self {
        SsimConstants {
            c1: (0.01 * range).powi(2),
            c2: (0.03 * range).powi(2),
        }
    }
}

impl Default for SsimConstants {
    /// Constants for the unit dynamic range `[0, 1]` used throughout this
    /// workspace.
    fn default() -> Self {
        Self::for_range(1.0)
    }
}

/// A normalised 2-D gaussian window of odd side `size` and bandwidth `sigma`.
///
/// # Panics
///
/// Panics if `size` is zero or even, or `sigma` is not positive.
pub fn gaussian_window(size: usize, sigma: f32) -> Tensor {
    assert!(
        size % 2 == 1 && size > 0,
        "gaussian window size must be odd"
    );
    assert!(sigma > 0.0, "gaussian sigma must be positive");
    let half = (size / 2) as isize;
    let mut data = Vec::with_capacity(size * size);
    for y in -half..=half {
        for x in -half..=half {
            let d2 = (x * x + y * y) as f32;
            data.push((-d2 / (2.0 * sigma * sigma)).exp());
        }
    }
    let sum: f32 = data.iter().sum();
    for v in &mut data {
        *v /= sum;
    }
    Tensor::from_vec(data, &[size, size])
}

/// Picks the largest odd window `<= 11` that fits both spatial dims.
fn fitting_window(h: usize, w: usize) -> usize {
    let mut k = 11.min(h).min(w);
    if k % 2 == 0 {
        k -= 1;
    }
    k.max(1)
}

/// Mean SSIM between two `[C, H, W]` (or `[N, C, H, W]`) tensors.
///
/// Channels (and batch items) are treated as independent planes and
/// averaged. Values are expected in `[0, 1]`; identical images give `1.0`.
///
/// # Panics
///
/// Panics if the shapes differ or the rank is not 3 or 4.
pub fn ssim(x: &Tensor, y: &Tensor) -> f32 {
    ssim_with_constants(x, y, SsimConstants::default())
}

/// [`ssim`] with explicit stabilisation constants.
///
/// # Panics
///
/// Panics if the shapes differ or the rank is not 3 or 4.
pub fn ssim_with_constants(x: &Tensor, y: &Tensor, k: SsimConstants) -> f32 {
    let (val, _) = ssim_impl_ws(x, y, k, false, &mut Workspace::new());
    val
}

/// Mean SSIM and its gradient with respect to `x`.
///
/// Returns `(ssim, d ssim / d x)` where the gradient has `x`'s shape.
///
/// # Panics
///
/// Panics if the shapes differ or the rank is not 3 or 4.
pub fn ssim_with_grad(x: &Tensor, y: &Tensor) -> (f32, Tensor) {
    ssim_with_grad_ws(x, y, &mut Workspace::new())
}

/// [`ssim_with_grad`] drawing every intermediate from `ws`.
///
/// The hot refine loop calls this once per Adam step; all window
/// statistics, adjoint planes and the product scratch come from (and
/// return to) the workspace pool, so steady-state calls allocate only the
/// returned gradient tensor — which callers can in turn [`Workspace::recycle`].
/// Results are bit-identical to [`ssim_with_grad`], which wraps this.
///
/// # Panics
///
/// Panics if the shapes differ or the rank is not 3 or 4.
pub fn ssim_with_grad_ws(x: &Tensor, y: &Tensor, ws: &mut Workspace) -> (f32, Tensor) {
    let (val, grad) = ssim_impl_ws(x, y, SsimConstants::default(), true, ws);
    (val, grad.expect("gradient requested"))
}

fn plane_views(t: &Tensor) -> (usize, usize, usize) {
    match t.ndim() {
        3 => (t.shape()[0], t.shape()[1], t.shape()[2]),
        4 => (t.shape()[0] * t.shape()[1], t.shape()[2], t.shape()[3]),
        r => panic!("ssim: expected rank-3 or rank-4 tensor, got rank {r}"),
    }
}

thread_local! {
    /// Per-thread cache of the normalised gaussian windows, one slot per
    /// odd size `1, 3, …, 11` that [`fitting_window`] can produce
    /// (index `size / 2`).
    static WINDOW_CACHE: RefCell<[Option<Box<[f32]>>; 6]> =
        const { RefCell::new([None, None, None, None, None, None]) };
}

/// Copies the σ = 1.5 gaussian window of odd side `win` into `out`,
/// computing it at most once per thread per size. [`gaussian_window`] is
/// deterministic, so the cached copy is bit-identical to a fresh one.
fn window_into(win: usize, out: &mut [f32]) {
    debug_assert!(win % 2 == 1 && win <= 11, "unexpected window size {win}");
    WINDOW_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let slot = &mut cache[win / 2];
        if slot.is_none() {
            *slot = Some(gaussian_window(win, 1.5).data().into());
        }
        out.copy_from_slice(slot.as_ref().expect("filled above"));
    });
}

/// Slice-level SSIM over the planes of `x`/`y`, with all scratch drawn
/// from `ws`.
///
/// Per plane this evaluates the same chain the original tensor-based
/// implementation did — five valid blurs, the per-pixel `S`/`dS` formulas,
/// three adjoint blurs, then `gp + gq∘2x + gr∘y` — with each elementwise
/// tensor op replaced by the identical per-element float expression in the
/// same order, so values and gradients are bit-identical (verified by
/// `matches_tensor_reference_bitwise` below).
fn ssim_impl_ws(
    x: &Tensor,
    y: &Tensor,
    k: SsimConstants,
    want_grad: bool,
    ws: &mut Workspace,
) -> (f32, Option<Tensor>) {
    assert_eq!(x.shape(), y.shape(), "ssim: shape mismatch");
    let (planes, h, w) = plane_views(x);
    let win = fitting_window(h, w);
    let mut g = ws.take_dirty(win * win);
    window_into(win, &mut g);
    let spec = ConvSpec::new(1, 0);
    let (oh, ow) = (h - win + 1, w - win + 1);
    let out_len = oh * ow;
    let plane_len = h * w;
    let grad_len = if want_grad { out_len } else { 0 };

    let mut prod = ws.take_dirty(plane_len); // x², xy, y² in turn
    let mut p = ws.take_dirty(out_len);
    let mut u_y = ws.take_dirty(out_len);
    let mut q = ws.take_dirty(out_len);
    let mut r = ws.take_dirty(out_len);
    let mut yy = ws.take_dirty(out_len);
    let mut d_p = ws.take_dirty(grad_len);
    let mut d_q = ws.take_dirty(grad_len);
    let mut d_r = ws.take_dirty(grad_len);
    let mut gp = ws.take_dirty(if want_grad { plane_len } else { 0 });
    let mut gq = ws.take_dirty(if want_grad { plane_len } else { 0 });
    let mut gr = ws.take_dirty(if want_grad { plane_len } else { 0 });
    // Zeroed: gradients accumulate across planes.
    let mut gacc = ws.take(if want_grad { x.len() } else { 0 });

    let mut total = 0.0f64;
    let n_out = out_len as f32;
    for pl in 0..planes {
        let xs = &x.data()[pl * plane_len..(pl + 1) * plane_len];
        let ys = &y.data()[pl * plane_len..(pl + 1) * plane_len];
        conv_single_into(xs, h, w, &g, win, win, spec, 0.0, &mut p); // G*x
        conv_single_into(ys, h, w, &g, win, win, spec, 0.0, &mut u_y); // G*y
        for (o, &v) in prod.iter_mut().zip(xs) {
            *o = v * v;
        }
        conv_single_into(&prod, h, w, &g, win, win, spec, 0.0, &mut q); // G*(x²)
        for (o, (&a, &b)) in prod.iter_mut().zip(xs.iter().zip(ys)) {
            *o = a * b;
        }
        conv_single_into(&prod, h, w, &g, win, win, spec, 0.0, &mut r); // G*(xy)
        for (o, &v) in prod.iter_mut().zip(ys) {
            *o = v * v;
        }
        conv_single_into(&prod, h, w, &g, win, win, spec, 0.0, &mut yy); // G*(y²)

        let mut ssim_sum = 0.0f64;
        for i in 0..out_len {
            let pv = p[i];
            let uy = u_y[i];
            let qv = q[i];
            let rv = r[i];
            let vy = yy[i] - uy * uy;
            let a1 = 2.0 * pv * uy + k.c1;
            let a2 = 2.0 * (rv - pv * uy) + k.c2;
            let b1 = pv * pv + uy * uy + k.c1;
            let b2 = (qv - pv * pv) + vy + k.c2;
            let s = (a1 * a2) / (b1 * b2);
            ssim_sum += s as f64;
            if want_grad {
                // dS/dp = 2 u_y (A2 − A1)/(B1 B2) − 2 p S (1/B1 − 1/B2)
                let dp = 2.0 * uy * (a2 - a1) / (b1 * b2) - 2.0 * pv * s * (1.0 / b1 - 1.0 / b2);
                let dq = -s / b2;
                let dr = 2.0 * a1 / (b1 * b2);
                d_p[i] = dp / n_out;
                d_q[i] = dq / n_out;
                d_r[i] = dr / n_out;
            }
        }
        let val = (ssim_sum / n_out as f64) as f32;
        total += val as f64;
        if want_grad {
            // Pull the three window-statistic gradients back through the blur.
            conv_valid_adjoint_into(&d_p, oh, ow, &g, win, win, w, &mut gp);
            conv_valid_adjoint_into(&d_q, oh, ow, &g, win, win, w, &mut gq);
            conv_valid_adjoint_into(&d_r, oh, ow, &g, win, win, w, &mut gr);
            let ga = &mut gacc[pl * plane_len..(pl + 1) * plane_len];
            for i in 0..plane_len {
                let b = (gp[i] + gq[i] * (xs[i] * 2.0)) + gr[i] * ys[i];
                ga[i] += b / planes as f32;
            }
        }
    }
    let val = (total / planes as f64) as f32;
    for buf in [g, prod, p, u_y, q, r, yy, d_p, d_q, d_r, gp, gq, gr] {
        ws.put(buf);
    }
    let grad = if want_grad {
        Some(Tensor::from_vec(gacc, x.shape()))
    } else {
        ws.put(gacc);
        None
    };
    (val, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_valid_single, conv2d_valid_single_adjoint};

    fn image(shape: &[usize], phase: f32) -> Tensor {
        Tensor::from_fn(shape, |i| 0.5 + 0.4 * ((i as f32) * 0.13 + phase).sin())
    }

    /// The pre-workspace implementation, kept verbatim as the reference the
    /// slice-based path must match bit for bit.
    fn ssim_impl_reference(
        x: &Tensor,
        y: &Tensor,
        k: SsimConstants,
        want_grad: bool,
    ) -> (f32, Option<Tensor>) {
        assert_eq!(x.shape(), y.shape(), "ssim: shape mismatch");
        let (planes, h, w) = plane_views(x);
        let win = fitting_window(h, w);
        let g = gaussian_window(win, 1.5);
        let mut total = 0.0f64;
        let mut grad = if want_grad {
            Some(vec![0.0f32; x.len()])
        } else {
            None
        };
        let plane_len = h * w;
        for pl in 0..planes {
            let xp = Tensor::from_vec(
                x.data()[pl * plane_len..(pl + 1) * plane_len].to_vec(),
                &[h, w],
            );
            let yp = Tensor::from_vec(
                y.data()[pl * plane_len..(pl + 1) * plane_len].to_vec(),
                &[h, w],
            );
            let (s, gpl) = ssim_plane_reference(&xp, &yp, &g, k, want_grad);
            total += s as f64;
            if let (Some(gacc), Some(gp)) = (grad.as_mut(), gpl) {
                gacc[pl * plane_len..(pl + 1) * plane_len]
                    .iter_mut()
                    .zip(gp.data())
                    .for_each(|(a, &b)| *a += b / planes as f32);
            }
        }
        let val = (total / planes as f64) as f32;
        let grad = grad.map(|gv| Tensor::from_vec(gv, x.shape()));
        (val, grad)
    }

    fn ssim_plane_reference(
        x: &Tensor,
        y: &Tensor,
        g: &Tensor,
        k: SsimConstants,
        want_grad: bool,
    ) -> (f32, Option<Tensor>) {
        let (h, w) = (x.shape()[0], x.shape()[1]);
        let p = conv2d_valid_single(x, g); // G*x
        let u_y = conv2d_valid_single(y, g); // G*y
        let q = conv2d_valid_single(&x.mul(x), g); // G*(x²)
        let r = conv2d_valid_single(&x.mul(y), g); // G*(xy)
        let yy = conv2d_valid_single(&y.mul(y), g); // G*(y²)
        let v_y = yy.sub(&u_y.mul(&u_y));

        let n_out = p.len() as f32;
        let mut ssim_sum = 0.0f64;
        let mut d_p = Tensor::zeros(p.shape());
        let mut d_q = Tensor::zeros(p.shape());
        let mut d_r = Tensor::zeros(p.shape());
        for i in 0..p.len() {
            let pv = p.data()[i];
            let uy = u_y.data()[i];
            let qv = q.data()[i];
            let rv = r.data()[i];
            let vy = v_y.data()[i];
            let a1 = 2.0 * pv * uy + k.c1;
            let a2 = 2.0 * (rv - pv * uy) + k.c2;
            let b1 = pv * pv + uy * uy + k.c1;
            let b2 = (qv - pv * pv) + vy + k.c2;
            let s = (a1 * a2) / (b1 * b2);
            ssim_sum += s as f64;
            if want_grad {
                let dp = 2.0 * uy * (a2 - a1) / (b1 * b2) - 2.0 * pv * s * (1.0 / b1 - 1.0 / b2);
                let dq = -s / b2;
                let dr = 2.0 * a1 / (b1 * b2);
                d_p.data_mut()[i] = dp / n_out;
                d_q.data_mut()[i] = dq / n_out;
                d_r.data_mut()[i] = dr / n_out;
            }
        }
        let val = (ssim_sum / n_out as f64) as f32;
        if !want_grad {
            return (val, None);
        }
        let gp = conv2d_valid_single_adjoint(&d_p, g, h, w);
        let gq = conv2d_valid_single_adjoint(&d_q, g, h, w);
        let gr = conv2d_valid_single_adjoint(&d_r, g, h, w);
        let grad = gp.add(&gq.mul(&x.scale(2.0))).add(&gr.mul(y));
        (val, Some(grad))
    }

    #[test]
    fn matches_tensor_reference_bitwise() {
        // The workspace path must reproduce the historical tensor-based
        // implementation bit for bit — value and gradient — across ranks,
        // window sizes (5×5 forces win=5, 12×12 win=11, 8×9 win=7 with a
        // non-square output) and a reused dirty workspace.
        let mut ws = Workspace::new();
        let shapes: &[&[usize]] = &[
            &[1, 5, 5],
            &[3, 12, 12],
            &[2, 8, 9],
            &[2, 3, 10, 10],
            &[1, 1, 11, 7],
        ];
        for (i, shape) in shapes.iter().enumerate() {
            let x = image(shape, 0.3 * i as f32);
            let y = image(shape, 1.1 + 0.2 * i as f32);
            let (rv, rg) = ssim_impl_reference(&x, &y, SsimConstants::default(), true);
            let (wv, wg) = ssim_with_grad_ws(&x, &y, &mut ws);
            assert_eq!(rv.to_bits(), wv.to_bits(), "value drifted for {shape:?}");
            let rg = rg.expect("gradient requested");
            assert_eq!(rg.shape(), wg.shape());
            for (j, (a, b)) in rg.data().iter().zip(wg.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "grad bit drift at {j} for {shape:?}: {a} vs {b}"
                );
            }
            // Value-only path goes through the same kernels.
            let (rv2, _) = ssim_impl_reference(&x, &y, SsimConstants::default(), false);
            assert_eq!(rv2.to_bits(), ssim(&x, &y).to_bits());
            ws.recycle(wg);
        }
    }

    #[test]
    fn gaussian_window_normalised_and_symmetric() {
        let g = gaussian_window(11, 1.5);
        assert!((g.sum() - 1.0).abs() < 1e-5);
        let (n, _) = (g.shape()[0], g.shape()[1]);
        for y in 0..n {
            for x in 0..n {
                let a = g.at(&[y, x]);
                let b = g.at(&[n - 1 - y, n - 1 - x]);
                assert!((a - b).abs() < 1e-7);
            }
        }
        // Peak at centre.
        assert_eq!(g.argmax(), (n / 2) * n + n / 2);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn gaussian_window_rejects_even_size() {
        let _ = gaussian_window(4, 1.5);
    }

    #[test]
    fn identical_images_have_unit_ssim() {
        let x = image(&[1, 16, 16], 0.0);
        let s = ssim(&x, &x);
        assert!((s - 1.0).abs() < 1e-4, "ssim(x,x)={s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let x = image(&[1, 16, 16], 0.0);
        let y = image(&[1, 16, 16], 1.3);
        let a = ssim(&x, &y);
        let b = ssim(&y, &x);
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn ssim_decreases_with_perturbation() {
        let x = image(&[3, 16, 16], 0.0);
        let small = x.add(&Tensor::full(x.shape(), 0.01));
        let large = x.add(&Tensor::from_fn(x.shape(), |i| {
            0.3 * ((i * 7 % 13) as f32 / 13.0 - 0.5)
        }));
        let s_small = ssim(&x, &small);
        let s_large = ssim(&x, &large);
        assert!(s_small > s_large, "small={s_small} large={s_large}");
        assert!(s_small <= 1.0 + 1e-5);
    }

    #[test]
    fn ssim_handles_tiny_images() {
        // Window shrinks to fit 5x5.
        let x = image(&[1, 5, 5], 0.0);
        let s = ssim(&x, &x);
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ssim_is_bounded_for_arbitrary_unit_images() {
        // SSIM of unit-range images must stay in [-1, 1] whatever the pair.
        let phases = [0.0f32, 0.7, 1.3, 2.9];
        for (i, &pa) in phases.iter().enumerate() {
            for &pb in &phases[i..] {
                let a = image(&[3, 10, 10], pa);
                let b = image(&[3, 10, 10], pb);
                let s = ssim(&a, &b);
                assert!((-1.0..=1.0 + 1e-5).contains(&s), "out of range: {s}");
            }
        }
    }

    #[test]
    fn ssim_extremes_stay_bounded() {
        // Constant black vs constant white: structure is undefined, the
        // stabilising constants must keep the score finite and in range.
        let black = Tensor::zeros(&[1, 10, 10]);
        let white = Tensor::ones(&[1, 10, 10]);
        let s = ssim(&black, &white);
        assert!(s.is_finite());
        assert!((-1.0..1.0).contains(&s), "black/white ssim: {s}");
        // Identical constants are perfectly similar.
        let s_same = ssim(&white, &white);
        assert!((s_same - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ssim_gradient_is_finite_everywhere_sampled() {
        let x = image(&[1, 8, 8], 0.4);
        let grey = Tensor::full(&[1, 8, 8], 0.5);
        let (s, g) = ssim_with_grad(&x, &grey);
        assert!(s.is_finite());
        assert!(g.data().iter().all(|v| v.is_finite()));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn batch_rank4_matches_mean_of_planes() {
        let a = image(&[1, 12, 12], 0.0);
        let b = image(&[1, 12, 12], 0.9);
        let ya = image(&[1, 12, 12], 0.2);
        let yb = image(&[1, 12, 12], 0.5);
        let batch_x = Tensor::stack(&[a.clone(), b.clone()]);
        let batch_y = Tensor::stack(&[ya.clone(), yb.clone()]);
        let joint = ssim(&batch_x, &batch_y);
        let sep = 0.5 * (ssim(&a, &ya) + ssim(&b, &yb));
        assert!((joint - sep).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = image(&[1, 10, 10], 0.4);
        let y = image(&[1, 10, 10], 1.1);
        let (_, grad) = ssim_with_grad(&x, &y);
        let eps = 1e-3;
        for &flat in &[0usize, 13, 47, 55, 99] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (ssim(&xp, &y) - ssim(&xm, &y)) / (2.0 * eps);
            let ana = grad.data()[flat];
            assert!(
                (num - ana).abs() < 2e-3,
                "flat={flat}: numeric={num} analytic={ana}"
            );
        }
    }

    #[test]
    fn gradient_at_identity_is_near_zero() {
        // SSIM is maximised at x == y, so the gradient there must vanish.
        let x = image(&[1, 12, 12], 0.0);
        let (s, grad) = ssim_with_grad(&x, &x);
        assert!((s - 1.0).abs() < 1e-4);
        assert!(grad.linf_norm() < 1e-3, "grad max={}", grad.linf_norm());
    }

    #[test]
    fn gradient_points_toward_reference() {
        // Moving x a small step along the gradient must not decrease SSIM.
        let x = image(&[1, 12, 12], 0.0);
        let y = image(&[1, 12, 12], 0.8);
        let (s0, grad) = ssim_with_grad(&x, &y);
        let stepped = x.add(&grad.scale(0.5));
        let s1 = ssim(&stepped, &y);
        assert!(s1 >= s0, "s0={s0} s1={s1}");
    }
}
