//! Spatial pooling (average, max, global-average) with backward passes,
//! plus `_ws` / `_infer` variants that draw their output buffers from a
//! [`Workspace`] for the allocation-free inference path.

use crate::{Tensor, Workspace};

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "expected rank-4 tensor, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

/// Average pooling over non-overlapping-or-strided `k x k` windows.
///
/// `input` is `[N, C, H, W]`; the result is `[N, C, OH, OW]` with
/// `OH = (H - k)/stride + 1`.
///
/// # Panics
///
/// Panics if the window does not fit or `stride == 0`.
pub fn avg_pool2d_forward(input: &Tensor, k: usize, stride: usize) -> Tensor {
    avg_pool2d_forward_ws(input, k, stride, &mut Workspace::new())
}

/// [`avg_pool2d_forward`] drawing the output buffer from `ws` — the single
/// implementation behind both entry points, so results are bit-identical
/// by construction. The kernel fully overwrites the output, so dirty
/// workspace buffers are fine.
///
/// # Panics
///
/// Panics if the window does not fit or `stride == 0`.
pub fn avg_pool2d_forward_ws(
    input: &Tensor,
    k: usize,
    stride: usize,
    ws: &mut Workspace,
) -> Tensor {
    assert!(stride > 0, "avg_pool2d: stride must be positive");
    let (n, c, h, w) = dims4(input);
    assert!(k <= h && k <= w, "avg_pool2d: window {k} larger than input");
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let inv = 1.0 / (k * k) as f32;
    let mut out = ws.take_dirty(n * c * oh * ow);
    let id = input.data();
    for plane in 0..n * c {
        let img = &id[plane * h * w..(plane + 1) * h * w];
        let o = &mut out[plane * oh * ow..(plane + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..k {
                    let row = &img[(oy * stride + ky) * w..(oy * stride + ky) * w + w];
                    for kx in 0..k {
                        acc += row[ox * stride + kx];
                    }
                }
                o[oy * ow + ox] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d_forward`]: spreads each output gradient
/// uniformly over its window.
///
/// Convenience wrapper over [`avg_pool2d_backward_ws`] with a throwaway
/// workspace — one implementation behind both entry points, bit-identical
/// by construction.
///
/// # Panics
///
/// Panics if `grad_out`'s shape is inconsistent with the geometry.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) -> Tensor {
    avg_pool2d_backward_ws(grad_out, h, w, k, stride, &mut Workspace::new())
}

/// [`avg_pool2d_backward`] drawing the gradient buffer from `ws`
/// (zero-filled checkout — overlapping windows accumulate with `+=`).
///
/// # Panics
///
/// Panics if `grad_out`'s shape is inconsistent with the geometry.
pub fn avg_pool2d_backward_ws(
    grad_out: &Tensor,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    ws: &mut Workspace,
) -> Tensor {
    let (n, c, oh, ow) = dims4(grad_out);
    assert_eq!(oh, (h - k) / stride + 1, "avg_pool2d_backward: bad OH");
    assert_eq!(ow, (w - k) / stride + 1, "avg_pool2d_backward: bad OW");
    let inv = 1.0 / (k * k) as f32;
    let mut gi = ws.take(n * c * h * w);
    let gd = grad_out.data();
    for plane in 0..n * c {
        let go = &gd[plane * oh * ow..(plane + 1) * oh * ow];
        let g = &mut gi[plane * h * w..(plane + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let v = go[oy * ow + ox] * inv;
                for ky in 0..k {
                    for kx in 0..k {
                        g[(oy * stride + ky) * w + ox * stride + kx] += v;
                    }
                }
            }
        }
    }
    Tensor::from_vec(gi, &[n, c, h, w])
}

/// Max pooling; returns the pooled tensor and the flat argmax index of each
/// window (needed for the backward pass).
///
/// Convenience wrapper over [`max_pool2d_forward_rec`] with a throwaway
/// workspace — one implementation of the window scan (and its
/// first-maximum tie-breaking, which gradient bit-exactness depends on)
/// behind both entry points.
///
/// # Panics
///
/// Panics if the window does not fit or `stride == 0`.
pub fn max_pool2d_forward(input: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let mut arg = Vec::new();
    let y = max_pool2d_forward_rec(input, k, stride, &mut Workspace::new(), &mut arg);
    (y, arg)
}

/// Inference-only max pooling: the pooled values of
/// [`max_pool2d_forward`] — identical window scan, identical results —
/// without materialising the argmax routing table (which only the backward
/// pass needs) and with the output buffer drawn from `ws`.
///
/// # Panics
///
/// Panics if the window does not fit or `stride == 0`.
pub fn max_pool2d_infer(input: &Tensor, k: usize, stride: usize, ws: &mut Workspace) -> Tensor {
    assert!(stride > 0, "max_pool2d: stride must be positive");
    let (n, c, h, w) = dims4(input);
    assert!(k <= h && k <= w, "max_pool2d: window {k} larger than input");
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = ws.take_dirty(n * c * oh * ow);
    let id = input.data();
    for plane in 0..n * c {
        let img = &id[plane * h * w..(plane + 1) * h * w];
        let base = plane * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = (oy * stride + ky) * w + ox * stride + kx;
                        if img[idx] > best {
                            best = img[idx];
                        }
                    }
                }
                out[base + oy * ow + ox] = best;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`max_pool2d_forward`]: routes each output gradient to
/// the stored argmax position.
///
/// Convenience wrapper over [`max_pool2d_backward_ws`] with a throwaway
/// workspace — one implementation behind both entry points.
///
/// # Panics
///
/// Panics if `argmax.len()` differs from `grad_out.len()`.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    max_pool2d_backward_ws(grad_out, argmax, input_shape, &mut Workspace::new())
}

/// [`max_pool2d_backward`] drawing the gradient buffer from `ws`
/// (zero-filled checkout — the scatter accumulates with `+=`).
///
/// # Panics
///
/// Panics if `argmax.len()` differs from `grad_out.len()`.
pub fn max_pool2d_backward_ws(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "max_pool2d_backward: argmax length mismatch"
    );
    let mut gi = ws.take(input_shape.iter().product());
    for (&idx, &v) in argmax.iter().zip(grad_out.data()) {
        gi[idx] += v;
    }
    Tensor::from_vec(gi, input_shape)
}

/// Recording variant of [`max_pool2d_forward`]: the same window scan (same
/// `>` comparisons, so values **and** argmax choices are bit-identical),
/// with the pooled values drawn from `ws` and the flat argmax indices
/// appended to `argmax` (cleared first) instead of freshly allocated —
/// the shape the gradient-tape route stores its routing table in.
///
/// # Panics
///
/// Panics if the window does not fit or `stride == 0`.
pub fn max_pool2d_forward_rec(
    input: &Tensor,
    k: usize,
    stride: usize,
    ws: &mut Workspace,
    argmax: &mut Vec<usize>,
) -> Tensor {
    assert!(stride > 0, "max_pool2d: stride must be positive");
    let (n, c, h, w) = dims4(input);
    assert!(k <= h && k <= w, "max_pool2d: window {k} larger than input");
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = ws.take_dirty(n * c * oh * ow);
    argmax.clear();
    argmax.reserve(n * c * oh * ow);
    let id = input.data();
    for plane in 0..n * c {
        let img = &id[plane * h * w..(plane + 1) * h * w];
        let base = plane * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..k {
                    for kx in 0..k {
                        let idx = (oy * stride + ky) * w + ox * stride + kx;
                        if img[idx] > best {
                            best = img[idx];
                            best_idx = idx;
                        }
                    }
                }
                out[base + oy * ow + ox] = best;
                argmax.push(plane * h * w + best_idx);
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
///
/// # Panics
///
/// Panics if `input` is not rank-4.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    global_avg_pool_forward_ws(input, &mut Workspace::new())
}

/// [`global_avg_pool_forward`] drawing the output buffer from `ws` — the
/// single implementation behind both entry points, bit-identical by
/// construction.
///
/// # Panics
///
/// Panics if `input` is not rank-4.
pub fn global_avg_pool_forward_ws(input: &Tensor, ws: &mut Workspace) -> Tensor {
    let (n, c, h, w) = dims4(input);
    let inv = 1.0 / (h * w) as f32;
    let mut out = ws.take_dirty(n * c);
    for (plane, o) in out.iter_mut().enumerate() {
        *o = input.data()[plane * h * w..(plane + 1) * h * w]
            .iter()
            .sum::<f32>()
            * inv;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of [`global_avg_pool_forward`].
///
/// Convenience wrapper over [`global_avg_pool_backward_ws`] with a
/// throwaway workspace — one implementation behind both entry points.
///
/// # Panics
///
/// Panics if `grad_out` is not `[N, C]`.
pub fn global_avg_pool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    global_avg_pool_backward_ws(grad_out, h, w, &mut Workspace::new())
}

/// [`global_avg_pool_backward`] drawing the gradient buffer from `ws` (the
/// fill fully overwrites every element, so a dirty checkout is safe).
///
/// # Panics
///
/// Panics if `grad_out` is not `[N, C]`.
pub fn global_avg_pool_backward_ws(
    grad_out: &Tensor,
    h: usize,
    w: usize,
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(grad_out.ndim(), 2, "global_avg_pool_backward: need [N,C]");
    let (n, c) = (grad_out.shape()[0], grad_out.shape()[1]);
    let inv = 1.0 / (h * w) as f32;
    let mut gi = ws.take_dirty(n * c * h * w);
    for plane in 0..n * c {
        let v = grad_out.data()[plane] * inv;
        for g in &mut gi[plane * h * w..(plane + 1) * h * w] {
            *g = v;
        }
    }
    Tensor::from_vec(gi, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_values() {
        let x = Tensor::from_vec((1..=16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d_forward(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let go = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]);
        let gi = avg_pool2d_backward(&go, 2, 2, 2, 2);
        assert_eq!(gi.data(), &[1.0; 4]);
    }

    #[test]
    fn avg_pool_gradient_matches_finite_differences() {
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.3).cos());
        let y = avg_pool2d_forward(&x, 2, 2);
        let gi = avg_pool2d_backward(&Tensor::ones(y.shape()), 4, 4, 2, 2);
        let eps = 1e-3;
        for &flat in &[0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (avg_pool2d_forward(&xp, 2, 2).sum() - avg_pool2d_forward(&xm, 2, 2).sum())
                / (2.0 * eps);
            assert!((num - gi.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn max_pool_values_and_routing() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, 3.0, 0.0, 1.0, 2.0, 7.0, 1.0, 0.0, 3.0, 2.0, 4.0, 2.0, 1.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = max_pool2d_forward(&x, 2, 2);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 3.0]);
        let gi = max_pool2d_backward(&Tensor::ones(y.shape()), &arg, &[1, 1, 4, 4]);
        // Exactly one 1.0 routed per window, at the max position.
        assert_eq!(gi.data()[4], 1.0); // 3.0 at flat index 4
        assert_eq!(gi.data()[2], 1.0); // 5.0 at flat index 2
        assert_eq!(gi.data()[8], 1.0); // 7.0 at flat index 8
        assert_eq!(gi.data()[11], 1.0); // 3.0 at flat index 11
        assert_eq!(gi.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avg_pool_forward(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let gi = global_avg_pool_backward(&Tensor::ones(&[1, 2]), 2, 2);
        assert_eq!(gi.shape(), x.shape());
        assert_eq!(gi.data(), &[0.25; 8]);
    }

    #[test]
    fn strided_max_pool_shape() {
        let x = Tensor::zeros(&[2, 3, 9, 9]);
        let (y, _) = max_pool2d_forward(&x, 3, 2);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
    }
}
