//! Low-precision weight storage: an f16 codec, a Q8 block format, and the
//! [`QTensor`] container the inference kernels dequantize on the fly.
//!
//! Inspection is read-only over frozen victim weights — the pipeline only
//! ever needs forward passes and *input* gradients, never weight updates —
//! so weights can be stored and served in half precision or 8-bit
//! block-quantized form at 2–4× less memory with proportionally better
//! cache behaviour on the GEMM-bound refine hot path. Both codecs are
//! hand-rolled and std-only:
//!
//! * **f16** — IEEE-754 binary16. Encoding rounds to nearest-even
//!   (including the subnormal range and the overflow-to-infinity edge);
//!   decoding is exact, because every binary16 value is representable as
//!   an `f32`.
//! * **Q8** — blocks of [`Q8_BLOCK`] elements share one `f32` scale
//!   (`amax / 127`); each element stores `round(x / scale)` clamped to
//!   `[-127, 127]` in an `i8`. Dequantization is `q * scale`. The final
//!   partial block is zero-padded, so the encoded length depends only on
//!   the element count.
//!
//! A [`QTensor`] is immutable after construction and carries a
//! [`QTensor::content_id`] drawn from the same source as
//! [`Tensor::content_id`], so the [`crate::Workspace`] panel cache can key
//! dequantized panels on it without ever colliding with a dense tensor.

use crate::tensor::new_tensor_id;
use crate::Tensor;
use std::fmt;

/// Elements per Q8 quantization block (one shared `f32` scale each).
pub const Q8_BLOCK: usize = 32;

/// Element storage format of a weight payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit IEEE float — the exact, bit-preserving default.
    F32,
    /// 16-bit IEEE float (round-to-nearest-even encode, exact decode).
    F16,
    /// 8-bit block quantization: [`Q8_BLOCK`] elements per `f32` scale.
    Q8,
}

impl Dtype {
    /// Wire tag used by the persistence layer (`USBT` version 2).
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::F16 => 1,
            Dtype::Q8 => 2,
        }
    }

    /// Inverse of [`Dtype::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Dtype::F32),
            1 => Some(Dtype::F16),
            2 => Some(Dtype::Q8),
            _ => None,
        }
    }

    /// Canonical lowercase name (`"f32"`, `"f16"`, `"q8"`).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F16 => "f16",
            Dtype::Q8 => "q8",
        }
    }

    /// Parses a name as produced by [`Dtype::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Dtype::F32),
            "f16" => Some(Dtype::F16),
            "q8" => Some(Dtype::Q8),
            _ => None,
        }
    }

    /// Encoded payload size in bytes for `numel` elements.
    ///
    /// `F32` is 4 bytes per element, `F16` 2; `Q8` stores whole blocks of
    /// [`Q8_BLOCK`] `i8`s behind one `f32` scale each, the last block
    /// zero-padded.
    pub fn encoded_len(self, numel: usize) -> usize {
        match self {
            Dtype::F32 => numel * 4,
            Dtype::F16 => numel * 2,
            Dtype::Q8 => numel.div_ceil(Q8_BLOCK) * (4 + Q8_BLOCK),
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Encodes an `f32` as IEEE-754 binary16 bits, rounding to nearest-even.
///
/// NaN stays NaN (a quiet NaN keeping the top mantissa bits), infinities
/// stay infinities, values beyond the f16 range round to ±∞, and values
/// below the smallest subnormal round to ±0. The largest finite f16 is
/// 65504; 65520 and above round to infinity.
pub fn f16_encode(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // Inf or NaN. Keep NaN-ness; a payload of zero would turn a NaN
        // into an infinity, so force the quiet bit on.
        return if abs > 0x7F80_0000 {
            sign | 0x7E00 | ((abs >> 13) & 0x03FF) as u16 | 0x0200
        } else {
            sign | 0x7C00
        };
    }
    let exp = (abs >> 23) as i32 - 127;
    if exp >= 16 {
        return sign | 0x7C00; // overflows the f16 exponent range: ±∞
    }
    if exp < -25 {
        return sign; // below half the smallest subnormal: ±0
    }
    let mant = abs & 0x007F_FFFF;
    let (half_mant, exp_field, shift) = if exp >= -14 {
        // Normal f16: 10 explicit mantissa bits survive of the 23.
        (mant, (exp + 15) as u32, 13u32)
    } else {
        // Subnormal f16: restore the implicit leading 1, then shift it
        // into place for the fixed 2^-14 exponent.
        ((mant | 0x0080_0000), 0u32, (-exp - 1) as u32)
    };
    let kept = half_mant >> shift;
    let dropped = half_mant & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    let round_up = dropped > halfway || (dropped == halfway && (kept & 1) == 1);
    // Adding (not or-ing) the rounded mantissa lets a carry roll into the
    // exponent field, which is exactly right: the largest subnormal rounds
    // up into the smallest normal, and 65504+ rounds up into infinity.
    let half = (exp_field << 10) + kept + u32::from(round_up);
    sign | half as u16
}

/// Decodes IEEE-754 binary16 bits into the `f32` with the same value.
///
/// Exact for every input: normals, subnormals, zeros, infinities, and
/// NaNs (payload preserved in the top 10 mantissa bits).
pub fn f16_decode(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value is m * 2^-24, exactly representable as an
            // f32 (m < 2^10, and 2^-24 is a power of two).
            let mag = (m as f32) * (1.0 / 16_777_216.0);
            return f32::from_bits(sign | mag.to_bits());
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Encodes `data` into `dtype`'s byte layout (see the module docs).
///
/// # Panics
///
/// Panics on [`Dtype::F32`]: dense tensors are never routed through the
/// quantized codec — the f32 path stays bit-exact and separate.
fn encode(data: &[f32], dtype: Dtype) -> Vec<u8> {
    let mut out = Vec::with_capacity(dtype.encoded_len(data.len()));
    match dtype {
        Dtype::F32 => panic!("f32 payloads use the dense Tensor route, not QTensor"),
        Dtype::F16 => {
            for &x in data {
                out.extend_from_slice(&f16_encode(x).to_le_bytes());
            }
        }
        Dtype::Q8 => {
            for block in data.chunks(Q8_BLOCK) {
                let amax = block.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let scale = if amax == 0.0 { 0.0 } else { amax / 127.0 };
                out.extend_from_slice(&scale.to_le_bytes());
                let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                for &x in block {
                    let q = (x * inv).round().clamp(-127.0, 127.0) as i8;
                    out.push(q as u8);
                }
                // Zero-pad the final partial block to the fixed stride.
                out.extend(std::iter::repeat_n(0u8, Q8_BLOCK - block.len()));
            }
        }
    }
    out
}

/// A quantized, immutable tensor: shape + encoded payload + dtype.
///
/// Built either by quantizing a dense [`Tensor`] ([`QTensor::quantize`])
/// or from stored bytes ([`QTensor::from_bytes`]). There is no mutable
/// access — quantized weights are inference-only — so the
/// [`QTensor::content_id`] assigned at construction is stable for the
/// value's whole lifetime, which is what lets the [`crate::Workspace`]
/// panel cache hold dequantized panels with zero steady-state cost.
#[derive(Clone)]
pub struct QTensor {
    dtype: Dtype,
    shape: Vec<usize>,
    bytes: Vec<u8>,
    id: u64,
}

impl fmt::Debug for QTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QTensor(dtype={}, shape={:?}, {} bytes)",
            self.dtype,
            self.shape,
            self.bytes.len()
        )
    }
}

impl QTensor {
    /// Quantizes a dense tensor into `dtype`.
    ///
    /// # Panics
    ///
    /// Panics if `dtype` is [`Dtype::F32`] — the dense route already *is*
    /// f32, bit-exactly; quantizing to it would only blur that line.
    pub fn quantize(t: &Tensor, dtype: Dtype) -> Self {
        QTensor {
            dtype,
            shape: t.shape().to_vec(),
            bytes: encode(t.data(), dtype),
            id: new_tensor_id(),
        }
    }

    /// Wraps stored bytes (the persistence layer's decode path).
    ///
    /// # Errors
    ///
    /// Returns a message when `dtype` is [`Dtype::F32`] or `bytes` is not
    /// exactly [`Dtype::encoded_len`] for the shape's element count.
    pub fn from_bytes(dtype: Dtype, shape: &[usize], bytes: Vec<u8>) -> Result<Self, String> {
        if dtype == Dtype::F32 {
            return Err("f32 payloads use the dense Tensor route, not QTensor".to_string());
        }
        let numel: usize = shape.iter().product();
        let want = dtype.encoded_len(numel);
        if bytes.len() != want {
            return Err(format!(
                "{dtype} payload for shape {shape:?} must be {want} bytes, got {}",
                bytes.len()
            ));
        }
        Ok(QTensor {
            dtype,
            shape: shape.to_vec(),
            bytes,
            id: new_tensor_id(),
        })
    }

    /// Storage format of the payload.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Logical shape (row-major, like [`Tensor::shape`]).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoded payload, exactly as stored on disk.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Cache key for dequantized panels; same id space as
    /// [`Tensor::content_id`], and stable because a `QTensor` is immutable.
    pub fn content_id(&self) -> u64 {
        self.id
    }

    /// Dequantizes the payload into `out` (row-major logical order).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.len(),
            "dequantize_into: {} elements into a {}-element buffer",
            self.len(),
            out.len()
        );
        match self.dtype {
            Dtype::F32 => unreachable!("QTensor is never f32"),
            Dtype::F16 => {
                if !crate::kernels::try_f16_decode(&self.bytes, out) {
                    for (o, h) in out.iter_mut().zip(self.bytes.chunks_exact(2)) {
                        *o = f16_decode(u16::from_le_bytes([h[0], h[1]]));
                    }
                }
            }
            Dtype::Q8 => {
                if !crate::kernels::try_q8_decode(&self.bytes, out) {
                    for (ob, block) in out
                        .chunks_mut(Q8_BLOCK)
                        .zip(self.bytes.chunks_exact(4 + Q8_BLOCK))
                    {
                        let scale = f32::from_le_bytes([block[0], block[1], block[2], block[3]]);
                        for (o, &q) in ob.iter_mut().zip(&block[4..]) {
                            *o = (q as i8) as f32 * scale;
                        }
                    }
                }
            }
        }
    }

    /// Dequantizes into a freshly allocated dense [`Tensor`].
    pub fn dequantize(&self) -> Tensor {
        let mut data = vec![0.0f32; self.len()];
        self.dequantize_into(&mut data);
        Tensor::from_vec(data, &self.shape)
    }
}

/// A borrowed weight for kernel dispatch: dense f32 or quantized.
///
/// The `_ws` kernels take this where they used to take `&Tensor`, so one
/// kernel body serves both precisions — the dense arm is byte-for-byte
/// the pre-quantization code path (bit-exactness preserved), the quant
/// arm goes through the [`crate::Workspace`] dequant panel cache.
#[derive(Clone, Copy)]
pub enum WeightRef<'a> {
    /// A dense f32 weight (the exact route).
    Dense(&'a Tensor),
    /// A quantized weight, dequantized on the fly by the kernels.
    Quant(&'a QTensor),
}

impl WeightRef<'_> {
    /// Logical element count of the referenced weight.
    pub fn len(&self) -> usize {
        match self {
            WeightRef::Dense(t) => t.len(),
            WeightRef::Quant(q) => q.len(),
        }
    }

    /// Whether the referenced weight has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical shape of the referenced weight.
    pub fn shape(&self) -> &[usize] {
        match self {
            WeightRef::Dense(t) => t.shape(),
            WeightRef::Quant(q) => q.shape(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference f16 encoder: arithmetic (not bit-twiddling), used to
    /// cross-check the production encoder on every interesting input.
    fn f16_encode_reference(x: f32) -> u16 {
        if x.is_nan() {
            // Any quiet NaN is acceptable; callers compare via is_nan.
            return 0x7E00 | if x.is_sign_negative() { 0x8000 } else { 0 };
        }
        let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
        let a = x.abs();
        if a.is_infinite() {
            return sign | 0x7C00;
        }
        // Brute force: decode every finite candidate (plus ∞) and pick the
        // nearest, breaking ties toward the even mantissa.
        let mut best: Option<(u16, f64)> = None;
        for h in 0..=0x7C00u16 {
            let v = f16_decode(h) as f64;
            let d = (v - a as f64).abs();
            let better = match best {
                None => true,
                Some((bh, bd)) => d < bd || (d == bd && (h & 1) == 0 && (bh & 1) == 1),
            };
            if better {
                best = Some((h, d));
            }
        }
        sign | best.unwrap().0
    }

    #[test]
    fn f16_decode_matches_known_constants() {
        assert_eq!(f16_decode(0x0000), 0.0);
        assert!(f16_decode(0x8000).is_sign_negative());
        assert_eq!(f16_decode(0x3C00), 1.0);
        assert_eq!(f16_decode(0xC000), -2.0);
        assert_eq!(f16_decode(0x7BFF), 65504.0);
        assert_eq!(f16_decode(0x0400), 6.103_515_6e-5); // smallest normal
        assert_eq!(f16_decode(0x0001), 5.960_464_5e-8); // smallest subnormal
        assert_eq!(f16_decode(0x7C00), f32::INFINITY);
        assert_eq!(f16_decode(0xFC00), f32::NEG_INFINITY);
        assert!(f16_decode(0x7E00).is_nan());
    }

    #[test]
    fn f16_roundtrip_is_identity_on_all_finite_halfs() {
        // decode → encode is the identity for every non-NaN half value:
        // the decode is exact and the re-encode has nothing to round.
        for h in 0..=0xFFFFu16 {
            let v = f16_decode(h);
            if v.is_nan() {
                assert!(f16_decode(f16_encode(v)).is_nan(), "NaN bits {h:#06x}");
                continue;
            }
            let back = f16_encode(v);
            // ±0 canonicalize; everything else must round-trip bit-exactly.
            assert_eq!(back, h, "half bits {h:#06x} (value {v})");
        }
    }

    #[test]
    fn f16_encode_matches_exhaustive_nearest_even_search() {
        // Spot-check the RNE encoder against a brute-force nearest-even
        // search over all finite halfs, on values chosen to hit every
        // branch: exact, halfway-up, halfway-down, subnormal, boundaries.
        let cases = [
            0.0f32,
            -0.0,
            1.0,
            1.5,
            -2.75,
            0.1,
            0.2,
            0.3,
            1.0 / 3.0,
            65503.9,
            65504.0,
            65519.9,        // just below the ∞ cut: rounds to 65504
            6.103_515_6e-5, // smallest normal
            6.0e-5,         // subnormal range
            5.960_464_5e-8, // smallest subnormal
            8.940_697e-8,   // 1.5 × smallest subnormal (tie)
            2.980_232_2e-8, // exactly half the smallest subnormal (tie → 0)
            2.9e-8,         // just below the tie: → 0
            3.0e-8,         // just above the tie: → smallest subnormal
            123.456,
            -0.000_123,
            9.77e-4,
        ];
        for &x in &cases {
            assert_eq!(
                f16_encode(x),
                f16_encode_reference(x),
                "RNE mismatch for {x:e}"
            );
        }
    }

    #[test]
    fn f16_encode_special_values() {
        assert_eq!(f16_encode(f32::INFINITY), 0x7C00);
        assert_eq!(f16_encode(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f16_encode(65520.0), 0x7C00, "overflow rounds to ∞");
        assert_eq!(f16_encode(65519.0), 0x7BFF, "just under the cut");
        assert_eq!(f16_encode(1e30), 0x7C00);
        assert_eq!(f16_encode(-1e30), 0xFC00);
        assert_eq!(f16_encode(0.0), 0x0000);
        assert_eq!(f16_encode(-0.0), 0x8000);
        let n = f16_encode(f32::NAN);
        assert_eq!(n & 0x7C00, 0x7C00);
        assert_ne!(n & 0x03FF, 0, "NaN must keep a non-zero payload");
        assert!(f16_decode(n).is_nan());
    }

    #[test]
    fn f16_relative_error_is_bounded_for_normals() {
        // For values in the f16 normal range the RNE relative error is at
        // most 2^-11 (half an ulp of a 10-bit mantissa).
        let mut x = 6.2e-5f32;
        while x < 60000.0 {
            let err = (f16_decode(f16_encode(x)) - x).abs() / x;
            assert!(err <= 1.0 / 2048.0, "relative error {err} at {x}");
            x *= 1.37;
        }
    }

    #[test]
    fn q8_roundtrip_error_is_within_half_scale() {
        let data: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.7).sin() * 3.0).collect();
        let t = Tensor::from_vec(data.clone(), &[10, 100]);
        let q = QTensor::quantize(&t, Dtype::Q8);
        let back = q.dequantize();
        assert_eq!(back.shape(), &[10, 100]);
        for (block, bb) in data.chunks(Q8_BLOCK).zip(back.data().chunks(Q8_BLOCK)) {
            let amax = block.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let half_scale = amax / 127.0 / 2.0 + 1e-12;
            for (&x, &y) in block.iter().zip(bb) {
                assert!(
                    (x - y).abs() <= half_scale * 1.001,
                    "Q8 error {} exceeds half a scale ({half_scale}) at {x}",
                    (x - y).abs()
                );
            }
        }
    }

    #[test]
    fn q8_all_zero_block_has_zero_scale_and_roundtrips() {
        let t = Tensor::zeros(&[64]);
        let q = QTensor::quantize(&t, Dtype::Q8);
        assert_eq!(q.dequantize().data(), &[0.0f32; 64]);
    }

    #[test]
    fn q8_partial_final_block_is_padded_and_exact_length() {
        let t = Tensor::from_fn(&[37], |i| i as f32 - 18.0);
        let q = QTensor::quantize(&t, Dtype::Q8);
        assert_eq!(q.byte_len(), Dtype::Q8.encoded_len(37));
        assert_eq!(q.byte_len(), 2 * (4 + Q8_BLOCK));
        let back = q.dequantize();
        assert_eq!(back.len(), 37);
        // ±18 over 37 integers: scale 18/127, max error half a step.
        for (&x, &y) in t.data().iter().zip(back.data()) {
            assert!((x - y).abs() <= 18.0 / 127.0 / 2.0 + 1e-6);
        }
    }

    #[test]
    fn q8_extremes_saturate_cleanly() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 127.0, -127.0, 64.0, -5.0], &[6]);
        let q = QTensor::quantize(&t, Dtype::Q8);
        let back = q.dequantize();
        // amax 127 → scale 1.0 → all six integers are exact.
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn encoded_len_matches_actual_encodings() {
        for numel in [0usize, 1, 31, 32, 33, 64, 100, 1024] {
            let t = Tensor::from_fn(&[numel.max(1)], |i| (i as f32).cos());
            let t = if numel == 0 { Tensor::zeros(&[0]) } else { t };
            for dtype in [Dtype::F16, Dtype::Q8] {
                let q = QTensor::quantize(&t, dtype);
                assert_eq!(q.byte_len(), dtype.encoded_len(numel), "{dtype} × {numel}");
            }
        }
    }

    #[test]
    fn from_bytes_validates_length_and_dtype() {
        assert!(QTensor::from_bytes(Dtype::F32, &[4], vec![0; 16]).is_err());
        assert!(QTensor::from_bytes(Dtype::F16, &[4], vec![0; 7]).is_err());
        assert!(QTensor::from_bytes(Dtype::F16, &[4], vec![0; 8]).is_ok());
        assert!(QTensor::from_bytes(Dtype::Q8, &[32], vec![0; 35]).is_err());
        assert!(QTensor::from_bytes(Dtype::Q8, &[32], vec![0; 36]).is_ok());
    }

    #[test]
    fn from_bytes_roundtrips_quantize_bytes_bit_exactly() {
        let t = Tensor::from_fn(&[3, 40], |i| ((i as f32) * 0.31).sin());
        for dtype in [Dtype::F16, Dtype::Q8] {
            let q = QTensor::quantize(&t, dtype);
            let r = QTensor::from_bytes(dtype, q.shape(), q.bytes().to_vec()).unwrap();
            assert_eq!(r.dequantize().data(), q.dequantize().data());
        }
    }

    #[test]
    fn content_ids_are_unique_even_across_tensor_kinds() {
        let t = Tensor::zeros(&[8]);
        let a = QTensor::quantize(&t, Dtype::F16);
        let b = QTensor::quantize(&t, Dtype::F16);
        assert_ne!(a.content_id(), b.content_id());
        assert_ne!(a.content_id(), t.content_id());
    }

    #[test]
    fn dtype_tags_and_names_roundtrip() {
        for d in [Dtype::F32, Dtype::F16, Dtype::Q8] {
            assert_eq!(Dtype::from_tag(d.tag()), Some(d));
            assert_eq!(Dtype::parse(d.name()), Some(d));
        }
        assert_eq!(Dtype::from_tag(3), None);
        assert_eq!(Dtype::parse("int4"), None);
    }
}
