//! The core [`Tensor`] type: a contiguous, row-major `f32` n-d array.

use std::fmt;

/// Error returned by fallible tensor constructors and reshapes.
///
/// The infallible counterparts (e.g. [`Tensor::from_vec`]) panic with the
/// same message instead; see each method's `# Panics` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// Maximum rank stored without a heap allocation; everything in this
/// workspace is rank ≤ 4 (`[N, C, H, W]`), so the `Heap` fallback is for
/// generality only.
const INLINE_DIMS: usize = 4;

/// Shape storage for [`Tensor`]: inline for rank ≤ [`INLINE_DIMS`].
///
/// Keeping the common shapes inline makes wrapping a recycled `Vec<f32>` in
/// a `Tensor` (the `Workspace::take_dirty` → `Tensor::from_vec` pattern on
/// every hot path) completely allocation-free.
#[derive(Clone)]
enum Dims {
    Inline { len: u8, d: [usize; INLINE_DIMS] },
    Heap(Vec<usize>),
}

impl Dims {
    #[inline]
    fn from_slice(s: &[usize]) -> Self {
        if s.len() <= INLINE_DIMS {
            let mut d = [0usize; INLINE_DIMS];
            d[..s.len()].copy_from_slice(s);
            Dims::Inline {
                len: s.len() as u8,
                d,
            }
        } else {
            Dims::Heap(s.to_vec())
        }
    }

    #[inline]
    fn as_slice(&self) -> &[usize] {
        match self {
            Dims::Inline { len, d } => &d[..*len as usize],
            Dims::Heap(v) => v,
        }
    }
}

/// Source of fresh [`Tensor::content_id`] values.
static NEXT_TENSOR_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

#[inline]
pub(crate) fn new_tensor_id() -> u64 {
    NEXT_TENSOR_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A contiguous, row-major, `f32` n-dimensional array.
///
/// `Tensor` is the single numeric currency of the whole workspace: images are
/// `[N, C, H, W]`, convolution weights `[OC, IC, KH, KW]`, logits `[N, K]`,
/// masks `[H, W]`, and so on. All arithmetic is eager and allocates the
/// result; in-place `_assign` variants exist for the hot paths used by the
/// optimizers.
///
/// # Example
///
/// ```rust
/// use usb_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone)]
pub struct Tensor {
    shape: Dims,
    data: Vec<f32>,
    /// Content-identity token for caches keyed on tensor data (see
    /// [`Tensor::content_id`]). A clone keeps the id (same bytes); any
    /// `&mut` access re-stamps it.
    id: u64,
}

impl PartialEq for Tensor {
    /// Value equality: same shape and same element bytes. The
    /// [`Tensor::content_id`] is deliberately ignored — two tensors built
    /// independently from equal data compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, len={}, data[..{}]={:?}{})",
            self.shape(),
            self.data.len(),
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor with zero elements.
    fn default() -> Self {
        Tensor {
            shape: Dims::from_slice(&[0]),
            data: Vec::new(),
            id: new_tensor_id(),
        }
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor of `shape` filled with zeros.
    ///
    /// ```rust
    /// # use usb_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert_eq!(t.data(), &[0.0; 4]);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of `shape` filled with ones.
    ///
    /// ```rust
    /// # use usb_tensor::Tensor;
    /// assert_eq!(Tensor::ones(&[2]).sum(), 2.0);
    /// ```
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor of `shape` with every element set to `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: Dims::from_slice(shape),
            data: vec![value; numel(shape)],
            id: new_tensor_id(),
        }
    }

    /// Wraps an existing buffer in a tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    ///
    /// ```rust
    /// # use usb_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
    /// assert_eq!(t.at(&[1, 0]), 2.0);
    /// ```
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("Tensor::from_vec")
    }

    /// Fallible version of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len()` does not equal the product of
    /// `shape`.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        if data.len() != numel(shape) {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot have shape {:?} ({} elements)",
                data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            shape: Dims::from_slice(shape),
            data,
            id: new_tensor_id(),
        })
    }

    /// Builds a tensor by calling `f(flat_index)` for every element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f(i));
        }
        Tensor {
            shape: Dims::from_slice(shape),
            data,
            id: new_tensor_id(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The dimensions of the tensor.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.shape().len()
    }

    /// An opaque token identifying this tensor's current contents.
    ///
    /// Two tensors with the same id are guaranteed to hold the same bytes:
    /// ids are globally unique per construction, a clone keeps the id of
    /// its source (same bytes by definition), and every `&mut` accessor
    /// re-stamps a fresh id before handing out mutable access. The converse
    /// does not hold — equal data under different ids is common and fine.
    ///
    /// [`crate::Workspace::packed_transpose`] keys its pack cache on this,
    /// which is what lets a weight matrix be packed once and reused across
    /// every step of a refine loop without any staleness hazard.
    pub fn content_id(&self) -> u64 {
        self.id
    }

    /// Re-stamps [`Tensor::content_id`]; called by every `&mut` accessor.
    #[inline]
    fn touch(&mut self) {
        self.id = new_tensor_id();
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.touch();
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.ndim()` or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.ndim(),
            "index rank {} != tensor rank {}",
            index.len(),
            self.ndim()
        );
        let mut off = 0;
        for (d, (&i, &s)) in index.iter().zip(self.shape()).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            off = off * s + i;
        }
        off
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        self.touch();
        &mut self.data[off]
    }

    // ------------------------------------------------------------------
    // Shape algebra
    // ------------------------------------------------------------------

    /// Returns a tensor with the same buffer and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        self.try_reshape(shape).expect("Tensor::reshape")
    }

    /// Fallible version of [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the element counts differ.
    pub fn try_reshape(&self, shape: &[usize]) -> Result<Tensor, ShapeError> {
        if numel(shape) != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) to {:?} ({} elements)",
                self.shape(),
                self.data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            shape: Dims::from_slice(shape),
            data: self.data.clone(),
            id: new_tensor_id(),
        })
    }

    /// Extracts the `i`-th slice along the first axis (e.g. one image from a
    /// batch). The result has the remaining dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.ndim() >= 1, "index_axis0 on rank-0 tensor");
        let n = self.shape()[0];
        assert!(i < n, "index {i} out of bounds for axis 0 of size {n}");
        let inner: usize = self.shape()[1..].iter().product();
        let data = self.data[i * inner..(i + 1) * inner].to_vec();
        Tensor {
            shape: Dims::from_slice(&self.shape()[1..]),
            data,
            id: new_tensor_id(),
        }
    }

    /// Writes `src` into the `i`-th slice along the first axis.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `i` is out of bounds.
    pub fn set_axis0(&mut self, i: usize, src: &Tensor) {
        let n = self.shape()[0];
        assert!(i < n, "index {i} out of bounds for axis 0 of size {n}");
        let inner: usize = self.shape()[1..].iter().product();
        assert_eq!(src.len(), inner, "slice length mismatch in set_axis0");
        self.touch();
        self.data[i * inner..(i + 1) * inner].copy_from_slice(&src.data);
    }

    /// Stacks rank-`r` tensors of identical shape into one rank-`r+1` tensor
    /// along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "Tensor::stack of zero tensors");
        let inner_shape = items[0].shape().to_vec();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape(), &inner_shape[..], "Tensor::stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&inner_shape);
        Tensor {
            shape: Dims::from_slice(&shape),
            data,
            id: new_tensor_id(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (allocating)
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard). Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient. Panics on shape mismatch.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "div");
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|a| -a)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|a| a.clamp(lo, hi))
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
            id: new_tensor_id(),
        }
    }

    /// Applies `f` pairwise, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            id: new_tensor_id(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (in place, used by optimizers)
    // ------------------------------------------------------------------

    /// `self += other`. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        self.touch();
        if crate::kernels::try_add_assign(&mut self.data, &other.data) {
            return;
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`. Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "sub_assign");
        self.touch();
        if crate::kernels::try_sub_assign(&mut self.data, &other.data) {
            return;
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self += s * other` (axpy). Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        self.touch();
        if crate::kernels::try_axpy(&mut self.data, s, &other.data) {
            return;
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// `self *= s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        self.touch();
        if crate::kernels::try_scale(&mut self.data, s) {
            return;
        }
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero (keeps the allocation).
    pub fn fill(&mut self, value: f32) {
        self.touch();
        for a in &mut self.data {
            *a = value;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        self.touch();
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of absolute values (the L1 norm of the flattened tensor).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|a| a.abs()).sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Maximum absolute value (the L∞ norm).
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().map(|a| a.abs()).fold(0.0, f32::max)
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Flat index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// `true` when every element is finite (no NaN / ±inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3]).sum(), 3.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.offset(&[1, 0]), 3);
    }

    #[test]
    fn try_from_vec_rejects_bad_shape() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    #[should_panic(expected = "Tensor::from_vec")]
    fn from_vec_panics_on_mismatch() {
        let _ = Tensor::from_vec(vec![0.0; 3], &[2, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.try_reshape(&[4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, -8.0]);
        assert_eq!(b.div(&a).data(), &[3.0, -2.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
        assert_eq!(a.clamp(-1.0, 0.5).data(), &[0.5, -1.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[3.0, 6.0]);
        a.fill(0.0);
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert!((t.mean()).abs() < 1e-7);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.l1_norm(), 6.0);
        assert!((t.l2_norm() - 14.0_f32.sqrt()).abs() < 1e-6);
        assert_eq!(t.linf_norm(), 3.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn axis0_slicing() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 2, 2]);
        let s = t.index_axis0(1);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
        let mut t2 = t.clone();
        t2.set_axis0(0, &Tensor::full(&[2, 2], 9.0));
        assert_eq!(t2.at(&[0, 1, 1]), 9.0);
        assert_eq!(t2.at(&[1, 0, 0]), 4.0);
    }

    #[test]
    fn stack_builds_batch() {
        let a = Tensor::full(&[2, 2], 1.0);
        let b = Tensor::full(&[2, 2], 2.0);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(1).data(), &[2.0; 4]);
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn content_id_tracks_mutation() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_ne!(
            a.content_id(),
            b.content_id(),
            "fresh tensors get fresh ids"
        );
        assert_eq!(a, b, "equality ignores the id");

        let mut c = a.clone();
        assert_eq!(
            a.content_id(),
            c.content_id(),
            "a clone shares its source's id (same bytes)"
        );
        c.data_mut()[0] = 5.0;
        assert_ne!(
            a.content_id(),
            c.content_id(),
            "&mut access re-stamps the id"
        );

        let before = c.content_id();
        c.fill(0.0);
        assert_ne!(before, c.content_id());
    }

    #[test]
    fn shapes_above_inline_rank_still_work() {
        let t = Tensor::zeros(&[2, 1, 3, 1, 2]);
        assert_eq!(t.shape(), &[2, 1, 3, 1, 2]);
        assert_eq!(t.len(), 12);
        assert_eq!(t.index_axis0(1).shape(), &[1, 3, 1, 2]);
        assert_eq!(t.offset(&[1, 0, 2, 0, 1]), 11);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 4.0], &[2]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 16.0]);
        let b = Tensor::from_vec(vec![2.0, 2.0], &[2]);
        assert_eq!(a.zip_map(&b, f32::max).data(), &[2.0, 4.0]);
    }
}
