//! Linear-algebra and classification helper operations on [`Tensor`]s.

use crate::Tensor;

/// Register-tile height: rows of the output each micro-kernel call produces.
pub const MR: usize = 4;
/// Register-tile width: output columns per micro-kernel call. `MR × NR`
/// accumulators are 8 SSE vectors at the default x86-64 target, leaving
/// half the register file for the `b` row and the `a` broadcasts.
pub const NR: usize = 8;

/// Full `MR × NR` register tile of `out[i0.., j0..] = Σ_k a ⊙ b`.
///
/// `a` is addressed as `a[abase + r*ars + kk*aks]` so the same kernel serves
/// both the row-major (`ars = k, aks = 1`) and the transposed / k-major
/// (`ars = 1, aks = m`) left operand without a copy. The accumulators live
/// in a fixed-size array for the whole `k` sweep and are stored exactly
/// once, and every output element still accumulates in ascending-`k` order,
/// so results are bit-identical to the naive triple loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tile_full(
    a: &[f32],
    abase: usize,
    ars: usize,
    aks: usize,
    b: &[f32],
    j0: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    obase: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let b0 = kk * n + j0;
        let brow: [f32; NR] = b[b0..b0 + NR].try_into().unwrap();
        let a0 = abase + kk * aks;
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[a0 + r * ars];
            for (o, &bv) in accr.iter_mut().zip(&brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let o0 = obase + r * n + j0;
        out[o0..o0 + NR].copy_from_slice(accr);
    }
}

/// Partial tile (`rows ≤ MR`, `jw ≤ NR`) for the ragged right/bottom edges.
/// Same accumulation order as [`gemm_tile_full`], just with runtime bounds.
/// Crate-visible: the AVX2 driver in [`crate::kernels`] reuses it for its
/// own edges — per output element the chain is identical either way.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tile_edge(
    a: &[f32],
    abase: usize,
    ars: usize,
    aks: usize,
    b: &[f32],
    j0: usize,
    jw: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    obase: usize,
    rows: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let b0 = kk * n + j0;
        let a0 = abase + kk * aks;
        for (r, accr) in acc.iter_mut().enumerate().take(rows) {
            let av = a[a0 + r * ars];
            for (o, &bv) in accr.iter_mut().zip(&b[b0..b0 + jw]) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(rows) {
        let o0 = obase + r * n + j0;
        out[o0..o0 + jw].copy_from_slice(&accr[..jw]);
    }
}

/// Register-blocked GEMM driver shared by [`matmul_into`] (`ars = k,
/// aks = 1`) and [`matmul_transa_into`] (`ars = 1, aks = m`). Walks the
/// output in `MR × NR` tiles; every element of `out` is written exactly
/// once, so dirty scratch buffers are fine without a pre-fill.
#[allow(clippy::too_many_arguments)] // flat scalar geometry, hot path
fn gemm_strided_a(
    a: &[f32],
    ars: usize,
    aks: usize,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    if crate::kernels::try_gemm_strided_a(a, ars, aks, b, m, k, n, out) {
        return;
    }
    let mut i = 0;
    while i < m {
        let rows = (m - i).min(MR);
        let abase = i * ars;
        let obase = i * n;
        let mut j = 0;
        if rows == MR {
            while j + NR <= n {
                gemm_tile_full(a, abase, ars, aks, b, j, k, n, out, obase);
                j += NR;
            }
        }
        while j < n {
            let jw = (n - j).min(NR);
            gemm_tile_edge(a, abase, ars, aks, b, j, jw, k, n, out, obase, rows);
            j += NR;
        }
        i += MR;
    }
}

/// Dense matrix product `a @ b` for 2-D tensors `[m, k] x [k, n] -> [m, n]`.
///
/// Uses `MR × NR` register tiles (`gemm_tile_full`): the accumulators
/// for one output tile live in registers across the whole `k` sweep and are
/// stored once, with fixed-width inner loops the autovectorizer turns into
/// SSE rank-1 updates — the access pattern the im2col GEMM in
/// `conv::conv2d_forward_ws` / `conv::conv2d_backward` hits on every layer
/// of every forward and backward pass.
///
/// For any fixed output element the `k`-accumulation order is ascending
/// regardless of the blocking, so results are bit-identical to the naive
/// triple loop — blocking is a pure layout optimisation, invisible to the
/// deterministic-seeding guarantees.
///
/// # Panics
///
/// Panics if either argument is not rank-2 or the inner dimensions differ.
///
/// ```rust
/// # use usb_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(ops::matmul(&a, &i).data(), a.data());
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.ndim(),
        2,
        "matmul: lhs must be rank-2, got {:?}",
        a.shape()
    );
    assert_eq!(
        b.ndim(),
        2,
        "matmul: rhs must be rank-2, got {:?}",
        b.shape()
    );
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul: inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Slice-level [`matmul`] kernel writing `a @ b` into `out` (overwritten,
/// so scratch buffers from [`crate::Workspace`] can be handed in dirty).
///
/// `a` is `[m, k]` row-major, `b` is `[k, n]` row-major, `out` is `[m, n]`.
/// This *is* the [`matmul`] kernel — the tensor entry point wraps it — so
/// the accumulation order (ascending `k` per output element) and therefore
/// the results are bit-identical between the allocating and workspace-backed
/// call paths.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "matmul_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_into: out length mismatch");
    gemm_strided_a(a, k, 1, b, m, k, n, out);
}

/// `a @ b^T` for 2-D tensors `[m, k] x [n, k] -> [m, n]` without
/// materialising the transpose.
///
/// # Panics
///
/// Panics if either argument is not rank-2 or the `k` dimensions differ.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_transb: lhs must be rank-2");
    assert_eq!(b.ndim(), 2, "matmul_transb: rhs must be rank-2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_transb: inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_transb_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Slice-level [`matmul_transb`] kernel writing `a @ bᵀ` into `out`
/// (overwritten; dirty [`crate::Workspace`] buffers are fine).
///
/// `a` is `[m, k]`, `b` is `[n, k]`, `out` is `[m, n]`. As with
/// [`matmul_into`], this is the single implementation behind both call
/// paths, so results are bit-identical by construction.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_transb_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_transb_into: lhs length mismatch");
    assert_eq!(b.len(), n * k, "matmul_transb_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_transb_into: out length mismatch");
    if crate::kernels::try_gemm_transb(a, b, m, k, n, out) {
        return;
    }
    // Both operands are k-contiguous, so each output element is one dot
    // product; a 4×2 tile runs eight independent accumulator chains to hide
    // FP-add latency (the old single-chain loop serialised on it). Each
    // chain still sums in ascending `k`, so results are bit-identical.
    const MRT: usize = 4;
    const NRT: usize = 2;
    let mut i = 0;
    while i < m {
        let rows = (m - i).min(MRT);
        let mut j = 0;
        while j < n {
            let cols = (n - j).min(NRT);
            let mut acc = [[0.0f32; NRT]; MRT];
            for kk in 0..k {
                let mut bv = [0.0f32; NRT];
                for (c, bvc) in bv.iter_mut().enumerate().take(cols) {
                    *bvc = b[(j + c) * k + kk];
                }
                for (r, accr) in acc.iter_mut().enumerate().take(rows) {
                    let av = a[(i + r) * k + kk];
                    for (o, &bvc) in accr.iter_mut().zip(&bv).take(cols) {
                        *o += av * bvc;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(rows) {
                for (c, &v) in accr.iter().enumerate().take(cols) {
                    out[(i + r) * n + j + c] = v;
                }
            }
            j += NRT;
        }
        i += MRT;
    }
}

/// `a^T @ b` for 2-D tensors `[k, m] x [k, n] -> [m, n]` without
/// materialising the transpose.
///
/// Shares the `MR × NR` register-tiled driver with [`matmul`] — the left
/// operand is simply addressed k-major (`a[kk * m + i]`), which makes the
/// `MR` per-row loads of one tile contiguous (this is the `Wᵀ @ grad` step
/// of the conv backward pass, and the packed-panel forward GEMM). As in
/// [`matmul`], the per-element accumulation order is unchanged, so results
/// are bit-identical to the unblocked loop.
///
/// # Panics
///
/// Panics if either argument is not rank-2 or the `k` dimensions differ.
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_transa: lhs must be rank-2");
    assert_eq!(b.ndim(), 2, "matmul_transa: rhs must be rank-2");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_transa: inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    matmul_transa_into(a.data(), b.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Slice-level [`matmul_transa`] kernel writing `aᵀ @ b` into `out`
/// (overwritten; dirty [`crate::Workspace`] buffers are fine).
///
/// `a` is `[k, m]`, `b` is `[k, n]`, `out` is `[m, n]`. Single
/// implementation behind both call paths — results are bit-identical by
/// construction.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_transa_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "matmul_transa_into: lhs length mismatch");
    assert_eq!(b.len(), k * n, "matmul_transa_into: rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_transa_into: out length mismatch");
    gemm_strided_a(a, 1, m, b, m, k, n, out);
}

/// Writes the transpose of `src` (`[rows, cols]` row-major) into `out`
/// (`[cols, rows]` row-major, fully overwritten — dirty buffers are fine).
///
/// This is the packing primitive behind [`crate::Workspace::packed_transpose`]:
/// a row-major weight matrix transposed once into a k-major panel lets the
/// GEMM address it with unit-stride tile loads.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert_eq!(
        src.len(),
        rows * cols,
        "transpose_into: src length mismatch"
    );
    assert_eq!(
        out.len(),
        rows * cols,
        "transpose_into: out length mismatch"
    );
    for i in 0..rows {
        for (j, &v) in src[i * cols..(i + 1) * cols].iter().enumerate() {
            out[j * rows + i] = v;
        }
    }
}

/// Transpose of a 2-D tensor.
///
/// # Panics
///
/// Panics if the argument is not rank-2.
pub fn transpose2d(a: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "transpose2d: need rank-2, got {:?}", a.shape());
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(a.data(), m, n, &mut out);
    Tensor::from_vec(out, &[n, m])
}

/// Numerically stable row-wise softmax of a `[n, k]` logits tensor.
///
/// Each row of the result is a probability distribution.
///
/// # Panics
///
/// Panics if the argument is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax_rows: need rank-2 logits");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = vec![0.0f32; n * k];
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for (o, &v) in out[i * k..(i + 1) * k].iter_mut().zip(row) {
            let e = (v - m).exp();
            *o = e;
            z += e;
        }
        let row_out = &mut out[i * k..(i + 1) * k];
        if !crate::kernels::try_div(row_out, z) {
            for o in row_out {
                *o /= z;
            }
        }
    }
    Tensor::from_vec(out, &[n, k])
}

/// Row-wise argmax of a `[n, k]` tensor: the predicted class per sample.
///
/// # Panics
///
/// Panics if the argument is not rank-2 or has zero columns.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    assert_eq!(logits.ndim(), 2, "argmax_rows: need rank-2 logits");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert!(k > 0, "argmax_rows: zero classes");
    let mut preds = Vec::with_capacity(n);
    for i in 0..n {
        preds.push(argmax_row(&logits.data()[i * k..(i + 1) * k]));
    }
    preds
}

/// Index of the largest element of one logits row; ties resolve to the
/// first (lowest-index) maximum, matching [`argmax_rows`] — which is built
/// on this helper, as is the predicted-class lookup inside DeepFool.
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn argmax_row(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax_row: empty row");
    let mut best = 0;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// Fraction of rows whose argmax equals the paired label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), labels.len(), "accuracy: label count mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f64 / preds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]);
        let i = Tensor::from_fn(&[3, 3], |k| if k % 4 == 0 { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &i).data(), a.data());
        assert_eq!(matmul(&i, &a).data(), a.data());
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[4, 3]);
        let direct = matmul_transb(&a, &b);
        let explicit = matmul(&a, &transpose2d(&b));
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| (i as f32).cos()).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let direct = matmul_transa(&a, &b);
        let explicit = matmul(&transpose2d(&a), &b);
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// Reference naive i-k-j product with the same ascending-`k`
    /// accumulation order as the blocked kernels.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    #[test]
    fn blocked_matmul_is_bitwise_identical_to_naive() {
        // Sizes straddling the MR×NR register tiles, including non-multiples,
        // so every partial-tile edge case is exercised.
        for &(m, k, n) in &[
            (3, 5, 7),
            (2, 64, 64),
            (5, 65, 130),
            (1, 200, 3),
            (17, 100, 129),
            (4, 3, 8),
            (5, 1, 9),
            (9, 7, 17),
        ] {
            let a = Tensor::from_fn(&[m, k], |i| ((i as f32) * 0.61).sin());
            let b = Tensor::from_fn(&[k, n], |i| ((i as f32) * 0.37).cos());
            let blocked = matmul(&a, &b);
            let naive = matmul_naive(&a, &b);
            assert_eq!(
                blocked.data(),
                naive.data(),
                "matmul ({m}x{k}x{n}) must be bit-identical to the naive order"
            );
            let ta = transpose2d(&a);
            let blocked_ta = matmul_transa(&ta, &b);
            assert_eq!(
                blocked_ta.data(),
                naive.data(),
                "matmul_transa ({m}x{k}x{n}) must be bit-identical to the naive order"
            );
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let tt = transpose2d(&transpose2d(&a));
        assert_eq!(tt.shape(), a.shape());
        assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax_rows(&l);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(p.at(&[0, 2]) > p.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let l = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let p = softmax_rows(&l);
        assert!(p.all_finite());
        assert!((p.data()[0] + p.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_and_accuracy() {
        let l = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(argmax_rows(&l), vec![1, 0]);
        assert_eq!(accuracy(&l, &[1, 0]), 1.0);
        assert_eq!(accuracy(&l, &[0, 0]), 0.5);
    }
}
