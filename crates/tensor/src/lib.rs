//! # usb-tensor
//!
//! CPU tensor substrate for the Universal Soldier (USB) backdoor-detection
//! reproduction.
//!
//! This crate provides everything the neural-network layer above
//! ([`usb-nn`](../usb_nn/index.html)) and the defense algorithms need from a
//! numerical library:
//!
//! * [`Tensor`] — a contiguous, row-major, `f32` n-dimensional array with
//!   elementwise arithmetic, reductions, and shape algebra.
//! * [`ops`] — matrix multiplication, transposition, softmax, argmax.
//! * [`kernels`] — the runtime-dispatched SIMD tier: probes the CPU once
//!   (`USB_KERNEL=scalar|avx2|auto` overridable) and routes the hot GEMM /
//!   dequant / elementwise loops through AVX2 twins that are bit-identical
//!   to the scalar reference loops.
//! * [`conv`] — im2col/col2im based 2-D convolution kernels (dense and
//!   depthwise) with full forward and backward (input, weight, and bias
//!   gradients).
//! * [`pool`] — average / max pooling with backward passes.
//! * [`ssim`] — the structural similarity index (SSIM) with an *analytic
//!   input gradient*, required by the paper's Alg. 2 loss
//!   `CE − SSIM + ‖mask‖₁`.
//! * [`stats`] — median / MAD / anomaly-index statistics used by every
//!   reverse-engineering defense to flag outlier classes.
//! * [`init`] — seeded random initialisers (uniform, normal, Kaiming).
//! * [`io`] — versioned binary (de)serialization of tensors (magic,
//!   shape, bit-exact `f32` payload, CRC-32) plus the little-endian
//!   primitives the model/victim persistence layers above are built on.
//! * [`par`] — std-only scoped-thread worker pool with a deterministic,
//!   order-preserving [`par::par_map`]; the execution substrate behind the
//!   per-class, per-model, and per-batch parallel loops higher up the
//!   stack.
//! * [`scratch`] — the [`Workspace`] arena of reusable scratch buffers
//!   behind the allocation-free inference path: the `_ws` kernel variants
//!   here and `Layer::infer` in `usb-nn` draw their im2col / matmul / pool
//!   buffers from it instead of the allocator.
//! * [`quant`] — low-precision weight storage: an f16 codec, a Q8 block
//!   format, and the [`QTensor`] container the kernels dequantize on the
//!   fly through the [`Workspace`] panel cache (inspection is read-only,
//!   so frozen victims can live at 2–4× less memory).
//! * [`tape`] — the [`Tape`] of per-layer activation frames behind the
//!   read-only gradient path: `Layer::infer_recording` in `usb-nn` records
//!   backward state into a caller-owned tape instead of the layers, so one
//!   immutable model serves every worker thread.
//!
//! # Example
//!
//! ```rust
//! use usb_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.add(&b);
//! assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
//! ```

// `unsafe` is denied, not forbidden: the one exception is the [`kernels`]
// module, which opts back in locally for the AVX2 intrinsics behind the
// runtime-dispatched SIMD tier. Everything else stays safe Rust.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod conv;
pub mod init;
pub mod io;
pub mod kernels;
pub mod ops;
pub mod par;
pub mod pool;
pub mod quant;
pub mod scratch;
pub mod ssim;
pub mod stats;
pub mod tape;
mod tensor;

pub use quant::{Dtype, QTensor, WeightRef};
pub use scratch::Workspace;
pub use tape::Tape;
pub use tensor::{ShapeError, Tensor};
