//! Runtime-dispatched SIMD kernel tier.
//!
//! Every hot f32 kernel in the crate — the three GEMM orientations in
//! [`crate::ops`], the Q8/f16 decoders in [`crate::quant`], and the
//! refine-loop elementwise ops — has two implementations: the scalar Rust
//! loop (the *reference*, always compiled, the only one on non-x86
//! targets) and an AVX2 variant behind `#[target_feature(enable =
//! "avx2")]`. This module picks between them **once per process** and
//! exposes `try_*` entry points the scalar call sites consult first:
//! `true` means the active tier handled the slice, `false` means the
//! caller must run its scalar loop.
//!
//! # Tier selection
//!
//! The tier is probed on first use and cached for the process lifetime:
//!
//! | `USB_KERNEL` | resolved tier |
//! |--------------|---------------|
//! | unset / `auto` | `avx2` if `is_x86_feature_detected!("avx2")`, else `scalar` |
//! | `scalar`     | `scalar` (reference path, any machine) |
//! | `avx2`       | `avx2`, **panics** if the CPU lacks AVX2 |
//!
//! Any other value panics — a silently ignored typo would invalidate an
//! A/B measurement.
//!
//! # Bit-exactness contract
//!
//! The AVX2 kernels are *transcriptions*, not re-derivations, of the
//! scalar loops: each output element performs the identical floating-point
//! operation sequence (same ops, same operand order, ascending-`k`
//! accumulation, **no FMA contraction, no reassociation**), with lanes
//! laid across independent output elements only. Reductions whose scalar
//! form is a single serial chain (softmax row sums, max folds) stay
//! scalar. IEEE-754 arithmetic is deterministic per operation, so both
//! tiers produce bit-identical results — enforced by the unit tests here
//! and by running `kernel_reference` / `refine_alloc` / the determinism
//! suite under both `USB_KERNEL=scalar` and the default tier in CI.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// The kernel implementation a process routes its hot loops through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// Portable scalar Rust loops — the reference implementation.
    Scalar,
    /// AVX2 256-bit lanes across independent output elements.
    Avx2,
}

impl Tier {
    /// Stable lowercase name, recorded in the BENCH json `kernel` field.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
        }
    }
}

static TIER: OnceLock<Tier> = OnceLock::new();

/// The active kernel tier, probed once per process (see module docs).
///
/// # Panics
///
/// Panics if `USB_KERNEL` holds an unknown value, or forces `avx2` on a
/// CPU without AVX2.
pub fn tier() -> Tier {
    *TIER.get_or_init(|| {
        let request = std::env::var("USB_KERNEL");
        resolve(request.as_deref().unwrap_or("auto"), avx2_supported())
    })
}

/// [`Tier::name`] of the active tier — the BENCH json `kernel` field.
pub fn tier_name() -> &'static str {
    tier().name()
}

/// Maps a `USB_KERNEL` request onto a tier given the probed CPU support.
fn resolve(request: &str, avx2: bool) -> Tier {
    match request {
        "" | "auto" => {
            if avx2 {
                Tier::Avx2
            } else {
                Tier::Scalar
            }
        }
        "scalar" => Tier::Scalar,
        "avx2" => {
            assert!(
                avx2,
                "USB_KERNEL=avx2 requested but this CPU does not support AVX2"
            );
            Tier::Avx2
        }
        other => panic!("USB_KERNEL: expected scalar|avx2|auto, got {other:?}"),
    }
}

/// Whether the running CPU supports AVX2 (always `false` off x86-64).
fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn avx2_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        tier() == Tier::Avx2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Scalar Adam hyper-parameters handed to [`try_adam_step`] as one bundle.
///
/// `bc1`/`bc2` are the bias corrections `1 − βᵢᵗ`, computed scalar by the
/// caller exactly as the reference loop does.
#[derive(Clone, Copy, Debug)]
pub struct AdamParams {
    /// First-moment decay β₁.
    pub b1: f32,
    /// Second-moment decay β₂.
    pub b2: f32,
    /// First-moment bias correction `1 − β₁ᵗ`.
    pub bc1: f32,
    /// Second-moment bias correction `1 − β₂ᵗ`.
    pub bc2: f32,
    /// Learning rate.
    pub lr: f32,
    /// Denominator fuzz ε.
    pub eps: f32,
    /// Decoupled weight decay added into the gradient.
    pub decay: f32,
}

// ---------------------------------------------------------------------
// try_* dispatch entry points. Each returns `true` when the active tier
// handled the work (bit-identically to the caller's scalar loop) and
// `false` when the caller must run its scalar reference loop.
// ---------------------------------------------------------------------

/// GEMM driver for the shared strided-`a` orientation (`matmul_into` /
/// `matmul_transa_into`). Geometry is the caller's: `a[abase + r*ars +
/// kk*aks]`, `b` row-major `[k, n]`, `out` row-major `[m, n]`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn try_gemm_strided_a(
    a: &[f32],
    ars: usize,
    aks: usize,
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::gemm_strided_a(a, ars, aks, b, m, k, n, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (a, ars, aks, b, m, k, n, out);
    false
}

/// GEMM driver for `a @ bᵀ` (`matmul_transb_into`): `a` is `[m, k]`,
/// `b` is `[n, k]`, both k-contiguous, `out` is `[m, n]`.
#[inline]
pub fn try_gemm_transb(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::gemm_transb(a, b, m, k, n, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (a, b, m, k, n, out);
    false
}

/// Decodes a little-endian f16 byte stream (`2 · out.len()` bytes) into
/// `out`, bit-identical to [`crate::quant::f16_decode`] per element.
#[inline]
pub fn try_f16_decode(bytes: &[u8], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::f16_decode_slice(bytes, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (bytes, out);
    false
}

/// Decodes Q8 blocks (`4`-byte scale + [`crate::quant::Q8_BLOCK`] signed
/// bytes per block) into `out`, bit-identical to the scalar decoder.
#[inline]
pub fn try_q8_decode(bytes: &[u8], out: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::q8_decode_blocks(bytes, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (bytes, out);
    false
}

/// `y[i] += s * x[i]` over paired slices (panics on length mismatch).
#[inline]
pub fn try_axpy(y: &mut [f32], s: f32, x: &[f32]) -> bool {
    assert_eq!(y.len(), x.len(), "try_axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::axpy(y, s, x) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (y, s, x);
    false
}

/// `y[i] += x[i]` over paired slices (panics on length mismatch).
#[inline]
pub fn try_add_assign(y: &mut [f32], x: &[f32]) -> bool {
    assert_eq!(y.len(), x.len(), "try_add_assign: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::add_assign(y, x) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (y, x);
    false
}

/// `y[i] -= x[i]` over paired slices (panics on length mismatch).
#[inline]
pub fn try_sub_assign(y: &mut [f32], x: &[f32]) -> bool {
    assert_eq!(y.len(), x.len(), "try_sub_assign: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::sub_assign(y, x) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (y, x);
    false
}

/// `y[i] *= s` in place.
#[inline]
pub fn try_scale(y: &mut [f32], s: f32) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::scale(y, s) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (y, s);
    false
}

/// `y[i] /= z` in place — the per-lane normalisation pass of softmax /
/// cross-entropy (the preceding row-sum reduction stays scalar).
#[inline]
pub fn try_div(y: &mut [f32], z: f32) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::div_assign(y, z) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (y, z);
    false
}

/// One trigger-blend plane: `out[j] = batch[j]*(1 − m[j]) + p[j]*m[j]`
/// (`TriggerVar::apply_ws`). All four slices must share one length.
#[inline]
pub fn try_trigger_blend(out: &mut [f32], batch: &[f32], m: &[f32], p: &[f32]) -> bool {
    assert!(
        batch.len() == out.len() && m.len() == out.len() && p.len() == out.len(),
        "try_trigger_blend: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::trigger_blend(out, batch, m, p) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (out, batch, m, p);
    false
}

/// One trigger-backward plane (`TriggerVar::backward_ws`): where
/// `g[j] != 0.0`, accumulates `d_pattern[j] += g[j]*m[j]` and
/// `d_mask[j] += g[j]*(p[j] − x[j])`; where `g[j] == 0.0` both
/// accumulators keep their exact old bits (the scalar loop `continue`s,
/// so even a `-0.0` accumulator must not be rewritten).
#[inline]
pub fn try_trigger_backward(
    g: &[f32],
    x: &[f32],
    m: &[f32],
    p: &[f32],
    d_pattern: &mut [f32],
    d_mask: &mut [f32],
) -> bool {
    assert!(
        x.len() == g.len()
            && m.len() == g.len()
            && p.len() == g.len()
            && d_pattern.len() == g.len()
            && d_mask.len() == g.len(),
        "try_trigger_backward: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::trigger_backward(g, x, m, p, d_pattern, d_mask) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (g, x, m, p, d_pattern, d_mask);
    false
}

/// One Adam update over paired param / grad / moment slices, identical
/// per element to the reference loop in `usb_nn::optim::TensorAdam`.
#[inline]
pub fn try_adam_step(
    pd: &mut [f32],
    gd: &[f32],
    md: &mut [f32],
    vd: &mut [f32],
    params: &AdamParams,
) -> bool {
    assert!(
        gd.len() == pd.len() && md.len() == pd.len() && vd.len() == pd.len(),
        "try_adam_step: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: `avx2_active` is true only after runtime AVX2 detection.
        unsafe { avx2::adam_step(pd, gd, md, vd, params) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (pd, gd, md, vd, params);
    false
}

/// The AVX2 transcriptions of the scalar reference loops.
///
/// Lane layout is always "8 independent output elements"; every lane
/// executes the scalar op sequence for its element verbatim (mul then
/// add — `vmulps`/`vaddps`, never `vfmadd`), so results are bit-identical
/// to the scalar tier. `unsafe` here is confined to (a) the raw-pointer
/// `loadu`/`storeu` helpers, each guarded by a `debug_assert!` and called
/// only with in-bounds geometry, and (b) the `try_*` call boundary above,
/// justified by runtime feature detection.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(clippy::too_many_arguments)]

    use crate::ops::{MR, NR};
    use crate::quant::Q8_BLOCK;
    use core::arch::x86_64::*;

    /// Unaligned 8-lane load of `s[at..at + 8]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load8(s: &[f32], at: usize) -> __m256 {
        debug_assert!(at + 8 <= s.len());
        // SAFETY: callers pass `at + 8 <= s.len()` (debug-asserted).
        unsafe { _mm256_loadu_ps(s.as_ptr().add(at)) }
    }

    /// Unaligned 8-lane store into `s[at..at + 8]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store8(s: &mut [f32], at: usize, v: __m256) {
        debug_assert!(at + 8 <= s.len());
        // SAFETY: callers pass `at + 8 <= s.len()` (debug-asserted).
        unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(at), v) }
    }

    /// Loads 8 consecutive bytes of `s` into the low half of a 128-bit reg.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load_bytes8(s: &[u8], at: usize) -> __m128i {
        debug_assert!(at + 8 <= s.len());
        // SAFETY: callers pass `at + 8 <= s.len()` (debug-asserted).
        unsafe { _mm_loadl_epi64(s.as_ptr().add(at) as *const __m128i) }
    }

    /// Loads 16 consecutive bytes of `s` (8 little-endian u16 lanes).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load_bytes16(s: &[u8], at: usize) -> __m128i {
        debug_assert!(at + 16 <= s.len());
        // SAFETY: callers pass `at + 16 <= s.len()` (debug-asserted).
        unsafe { _mm_loadu_si128(s.as_ptr().add(at) as *const __m128i) }
    }

    /// AVX2 width of one full GEMM tile: two 8-lane column vectors per
    /// row, so four rows fill 8 of the 16 ymm registers with accumulators.
    const NR_AVX: usize = 16;

    /// AVX2 twin of `ops::gemm_strided_a` — same geometry contract.
    #[target_feature(enable = "avx2")]
    pub(super) fn gemm_strided_a(
        a: &[f32],
        ars: usize,
        aks: usize,
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < m {
            let rows = (m - i).min(MR);
            let abase = i * ars;
            let obase = i * n;
            let mut j = 0;
            if rows == MR {
                while j + NR_AVX <= n {
                    tile_full(a, abase, ars, aks, b, j, k, n, out, obase);
                    j += NR_AVX;
                }
            }
            // Ragged right/bottom edges reuse the scalar edge tile: per
            // output element it is the same ascending-k chain either way.
            while j < n {
                let jw = (n - j).min(NR);
                crate::ops::gemm_tile_edge(a, abase, ars, aks, b, j, jw, k, n, out, obase, rows);
                j += NR;
            }
            i += MR;
        }
    }

    /// Full `MR × NR_AVX` register tile: per `k` step, two `b` vector
    /// loads and `MR` scalar broadcasts feed 8 mul+add pairs. Each lane
    /// is one output element's ascending-`k` chain — no FMA, no
    /// cross-lane math — so the tile is a transcription of
    /// `ops::gemm_tile_full` at twice the width.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn tile_full(
        a: &[f32],
        abase: usize,
        ars: usize,
        aks: usize,
        b: &[f32],
        j0: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        obase: usize,
    ) {
        let mut lo = [_mm256_setzero_ps(); MR];
        let mut hi = [_mm256_setzero_ps(); MR];
        for kk in 0..k {
            let b0 = kk * n + j0;
            let blo = load8(b, b0);
            let bhi = load8(b, b0 + 8);
            let a0 = abase + kk * aks;
            for r in 0..MR {
                let av = _mm256_set1_ps(a[a0 + r * ars]);
                lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(av, blo));
                hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(av, bhi));
            }
        }
        for r in 0..MR {
            let o0 = obase + r * n + j0;
            store8(out, o0, lo[r]);
            store8(out, o0 + 8, hi[r]);
        }
    }

    /// AVX2 twin of the `matmul_transb_into` kernel: both operands
    /// k-contiguous, columns vectorized 8 wide via strided gathers.
    #[target_feature(enable = "avx2")]
    pub(super) fn gemm_transb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        const MRT: usize = 4;
        let mut i = 0;
        while i < m {
            let rows = (m - i).min(MRT);
            let mut j = 0;
            if rows == MRT {
                while j + 8 <= n {
                    let mut acc = [_mm256_setzero_ps(); MRT];
                    for kk in 0..k {
                        // One column-strided gather of b[(j..j+8) * k + kk];
                        // set_ps takes lanes high-to-low.
                        let bv = _mm256_set_ps(
                            b[(j + 7) * k + kk],
                            b[(j + 6) * k + kk],
                            b[(j + 5) * k + kk],
                            b[(j + 4) * k + kk],
                            b[(j + 3) * k + kk],
                            b[(j + 2) * k + kk],
                            b[(j + 1) * k + kk],
                            b[j * k + kk],
                        );
                        for r in 0..MRT {
                            let av = _mm256_set1_ps(a[(i + r) * k + kk]);
                            acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, bv));
                        }
                    }
                    for (r, &accr) in acc.iter().enumerate() {
                        store8(out, (i + r) * n + j, accr);
                    }
                    j += 8;
                }
            }
            // Ragged edge: independent ascending-k dot products, the same
            // per-element op sequence every tile shape produces.
            for r in 0..rows {
                for c in j..n {
                    let mut s = 0.0f32;
                    for kk in 0..k {
                        s += a[(i + r) * k + kk] * b[c * k + kk];
                    }
                    out[(i + r) * n + c] = s;
                }
            }
            i += MRT;
        }
    }

    /// AVX2 twin of the scalar Q8 block decoder: sign-extend 8 quants,
    /// exact int→float convert, one multiply by the block scale.
    #[target_feature(enable = "avx2")]
    pub(super) fn q8_decode_blocks(bytes: &[u8], out: &mut [f32]) {
        for (ob, block) in out
            .chunks_mut(Q8_BLOCK)
            .zip(bytes.chunks_exact(4 + Q8_BLOCK))
        {
            let scale = f32::from_le_bytes([block[0], block[1], block[2], block[3]]);
            if ob.len() == Q8_BLOCK {
                let sv = _mm256_set1_ps(scale);
                let mut off = 0;
                while off < Q8_BLOCK {
                    let q = load_bytes8(block, 4 + off);
                    // Exact: |q| ≤ 127 converts without rounding, so the
                    // only rounding step is the scale multiply — same as
                    // the scalar `(q as i8) as f32 * scale`.
                    let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
                    store8(ob, off, _mm256_mul_ps(f, sv));
                    off += 8;
                }
            } else {
                // Final partial logical block (padding bytes are ignored).
                for (o, &q) in ob.iter_mut().zip(&block[4..]) {
                    *o = (q as i8) as f32 * scale;
                }
            }
        }
    }

    /// AVX2 twin of `quant::f16_decode` over a little-endian byte stream.
    ///
    /// Branchless integer decode instead of F16C's `vcvtph2ps`, which
    /// quiets signalling NaNs and would diverge from the scalar decoder's
    /// payload-preserving semantics. Per lane: normals rebias the
    /// exponent, subnormals convert the mantissa exactly (`m · 2⁻²⁴`,
    /// both factors exact in f32), Inf/NaN keep the shifted payload; the
    /// three cases are blended by exponent-field compares.
    #[target_feature(enable = "avx2")]
    pub(super) fn f16_decode_slice(bytes: &[u8], out: &mut [f32]) {
        debug_assert!(bytes.len() >= 2 * out.len());
        let full = out.len() / 8 * 8;
        let mut i = 0;
        while i < full {
            let h = _mm256_cvtepu16_epi32(load_bytes16(bytes, 2 * i));
            let sign = _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
            let exp = _mm256_and_si256(_mm256_srli_epi32(h, 10), _mm256_set1_epi32(0x1F));
            let mant = _mm256_and_si256(h, _mm256_set1_epi32(0x03FF));
            let m13 = _mm256_slli_epi32(mant, 13);
            // Normal: sign | ((e + 112) << 23) | (m << 13).
            let normal = _mm256_or_si256(
                _mm256_slli_epi32(_mm256_add_epi32(exp, _mm256_set1_epi32(112)), 23),
                m13,
            );
            // Inf/NaN (e = 31): max exponent, payload in the top bits.
            let infnan = _mm256_or_si256(_mm256_set1_epi32(0x7F80_0000), m13);
            // Subnormal/zero (e = 0): m · 2⁻²⁴ exactly, sign OR-ed on —
            // m = 0 yields +0.0 bits, so ±0 falls out of the same lane.
            let mag = _mm256_mul_ps(_mm256_cvtepi32_ps(mant), _mm256_set1_ps(1.0 / 16_777_216.0));
            let sub = _mm256_castps_si256(mag);
            let is_e0 = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());
            let is_e31 = _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0x1F));
            let mut bits = _mm256_blendv_epi8(normal, infnan, is_e31);
            bits = _mm256_blendv_epi8(bits, sub, is_e0);
            bits = _mm256_or_si256(sign, bits);
            store8(out, i, _mm256_castsi256_ps(bits));
            i += 8;
        }
        for (o, h) in out[full..]
            .iter_mut()
            .zip(bytes[2 * full..].chunks_exact(2))
        {
            *o = crate::quant::f16_decode(u16::from_le_bytes([h[0], h[1]]));
        }
    }

    /// `y[i] += s * x[i]`.
    #[target_feature(enable = "avx2")]
    pub(super) fn axpy(y: &mut [f32], s: f32, x: &[f32]) {
        let full = y.len() / 8 * 8;
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i < full {
            store8(
                y,
                i,
                _mm256_add_ps(load8(y, i), _mm256_mul_ps(sv, load8(x, i))),
            );
            i += 8;
        }
        for (a, &b) in y[full..].iter_mut().zip(&x[full..]) {
            *a += s * b;
        }
    }

    /// `y[i] += x[i]`.
    #[target_feature(enable = "avx2")]
    pub(super) fn add_assign(y: &mut [f32], x: &[f32]) {
        let full = y.len() / 8 * 8;
        let mut i = 0;
        while i < full {
            store8(y, i, _mm256_add_ps(load8(y, i), load8(x, i)));
            i += 8;
        }
        for (a, &b) in y[full..].iter_mut().zip(&x[full..]) {
            *a += b;
        }
    }

    /// `y[i] -= x[i]`.
    #[target_feature(enable = "avx2")]
    pub(super) fn sub_assign(y: &mut [f32], x: &[f32]) {
        let full = y.len() / 8 * 8;
        let mut i = 0;
        while i < full {
            store8(y, i, _mm256_sub_ps(load8(y, i), load8(x, i)));
            i += 8;
        }
        for (a, &b) in y[full..].iter_mut().zip(&x[full..]) {
            *a -= b;
        }
    }

    /// `y[i] *= s`.
    #[target_feature(enable = "avx2")]
    pub(super) fn scale(y: &mut [f32], s: f32) {
        let full = y.len() / 8 * 8;
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i < full {
            store8(y, i, _mm256_mul_ps(load8(y, i), sv));
            i += 8;
        }
        for a in &mut y[full..] {
            *a *= s;
        }
    }

    /// `y[i] /= z`.
    #[target_feature(enable = "avx2")]
    pub(super) fn div_assign(y: &mut [f32], z: f32) {
        let full = y.len() / 8 * 8;
        let zv = _mm256_set1_ps(z);
        let mut i = 0;
        while i < full {
            store8(y, i, _mm256_div_ps(load8(y, i), zv));
            i += 8;
        }
        for a in &mut y[full..] {
            *a /= z;
        }
    }

    /// `out[j] = batch[j]*(1 − m[j]) + p[j]*m[j]`.
    #[target_feature(enable = "avx2")]
    pub(super) fn trigger_blend(out: &mut [f32], batch: &[f32], m: &[f32], p: &[f32]) {
        let full = out.len() / 8 * 8;
        let one = _mm256_set1_ps(1.0);
        let mut j = 0;
        while j < full {
            let mv = load8(m, j);
            let blended = _mm256_add_ps(
                _mm256_mul_ps(load8(batch, j), _mm256_sub_ps(one, mv)),
                _mm256_mul_ps(load8(p, j), mv),
            );
            store8(out, j, blended);
            j += 8;
        }
        for j in full..out.len() {
            let mv = m[j];
            out[j] = batch[j] * (1.0 - mv) + p[j] * mv;
        }
    }

    /// Masked trigger-gradient accumulation (see `try_trigger_backward`).
    #[target_feature(enable = "avx2")]
    pub(super) fn trigger_backward(
        g: &[f32],
        x: &[f32],
        m: &[f32],
        p: &[f32],
        d_pattern: &mut [f32],
        d_mask: &mut [f32],
    ) {
        let full = g.len() / 8 * 8;
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j < full {
            let gv = load8(g, j);
            // Accumulate exactly where the scalar guard `g == 0.0` fails:
            // NEQ_UQ is true for non-zeros *and* NaN (NaN == 0.0 is false),
            // false for ±0. Skipped lanes keep their old accumulator bits
            // via blend, so a -0.0 accumulator is never rewritten to +0.0.
            let go = _mm256_cmp_ps::<_CMP_NEQ_UQ>(gv, zero);
            let dp_old = load8(d_pattern, j);
            let dm_old = load8(d_mask, j);
            let dp_new = _mm256_add_ps(dp_old, _mm256_mul_ps(gv, load8(m, j)));
            let dm_new = _mm256_add_ps(
                dm_old,
                _mm256_mul_ps(gv, _mm256_sub_ps(load8(p, j), load8(x, j))),
            );
            store8(d_pattern, j, _mm256_blendv_ps(dp_old, dp_new, go));
            store8(d_mask, j, _mm256_blendv_ps(dm_old, dm_new, go));
            j += 8;
        }
        for j in full..g.len() {
            let gs = g[j];
            if gs == 0.0 {
                continue;
            }
            d_pattern[j] += gs * m[j];
            d_mask[j] += gs * (p[j] - x[j]);
        }
    }

    /// One Adam update; per lane the op-for-op scalar sequence, with
    /// `_mm256_sqrt_ps` (IEEE correctly rounded, like `f32::sqrt`).
    #[target_feature(enable = "avx2")]
    pub(super) fn adam_step(
        pd: &mut [f32],
        gd: &[f32],
        md: &mut [f32],
        vd: &mut [f32],
        params: &super::AdamParams,
    ) {
        let full = pd.len() / 8 * 8;
        let b1 = _mm256_set1_ps(params.b1);
        let b2 = _mm256_set1_ps(params.b2);
        let ob1 = _mm256_set1_ps(1.0 - params.b1);
        let ob2 = _mm256_set1_ps(1.0 - params.b2);
        let bc1 = _mm256_set1_ps(params.bc1);
        let bc2 = _mm256_set1_ps(params.bc2);
        let lr = _mm256_set1_ps(params.lr);
        let eps = _mm256_set1_ps(params.eps);
        let decay = _mm256_set1_ps(params.decay);
        let mut i = 0;
        while i < full {
            let pv = load8(pd, i);
            let g = _mm256_add_ps(load8(gd, i), _mm256_mul_ps(decay, pv));
            let mv = _mm256_add_ps(_mm256_mul_ps(b1, load8(md, i)), _mm256_mul_ps(ob1, g));
            // (1 − β₂) * g * g associates left in the scalar loop.
            let vv = _mm256_add_ps(
                _mm256_mul_ps(b2, load8(vd, i)),
                _mm256_mul_ps(_mm256_mul_ps(ob2, g), g),
            );
            store8(md, i, mv);
            store8(vd, i, vv);
            let mhat = _mm256_div_ps(mv, bc1);
            let vhat = _mm256_div_ps(vv, bc2);
            let upd = _mm256_div_ps(
                _mm256_mul_ps(lr, mhat),
                _mm256_add_ps(_mm256_sqrt_ps(vhat), eps),
            );
            store8(pd, i, _mm256_sub_ps(pv, upd));
            i += 8;
        }
        for i in full..pd.len() {
            let g = gd[i] + params.decay * pd[i];
            md[i] = params.b1 * md[i] + (1.0 - params.b1) * g;
            vd[i] = params.b2 * vd[i] + (1.0 - params.b2) * g * g;
            let mhat = md[i] / params.bc1;
            let vhat = vd[i] / params.bc2;
            pd[i] -= params.lr * mhat / (vhat.sqrt() + params.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_requests_and_detection() {
        assert_eq!(resolve("auto", true), Tier::Avx2);
        assert_eq!(resolve("", true), Tier::Avx2);
        assert_eq!(resolve("auto", false), Tier::Scalar);
        assert_eq!(resolve("scalar", true), Tier::Scalar);
        assert_eq!(resolve("scalar", false), Tier::Scalar);
        assert_eq!(resolve("avx2", true), Tier::Avx2);
    }

    #[test]
    #[should_panic(expected = "does not support AVX2")]
    fn resolve_rejects_forced_avx2_without_support() {
        let _ = resolve("avx2", false);
    }

    #[test]
    #[should_panic(expected = "expected scalar|avx2|auto")]
    fn resolve_rejects_unknown_values() {
        let _ = resolve("sse9", true);
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(Tier::Scalar.name(), "scalar");
        assert_eq!(Tier::Avx2.name(), "avx2");
    }

    /// Deterministic value soup including the awkward cases: ±0,
    /// subnormals, huge/tiny magnitudes, and exact zeros for the
    /// trigger-backward guard.
    fn soup(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(salt)) as f32;
                match i % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => (x / 4.0e9 - 0.5) * 2.0,
                    3 => f32::from_bits((i as u32 % 0x7F_FFFF) | 1), // subnormal
                    4 => (x / 4.0e9) * 1.0e30,
                    5 => -(x / 4.0e9) * 1.0e-30,
                    _ => (x / 4.0e9 - 0.5) * 8.0,
                }
            })
            .collect()
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2_vs_scalar {
        use super::super::*;
        use super::soup;

        fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
            assert_eq!(a.len(), b.len(), "{what}: length");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i}: {x:?} vs {y:?}");
            }
        }

        fn have_avx2() -> bool {
            std::arch::is_x86_feature_detected!("avx2")
        }

        #[test]
        fn axpy_matches_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            for n in [0, 1, 7, 8, 9, 64, 130] {
                let x = soup(n, 3);
                let mut y_simd = soup(n, 17);
                let mut y_ref = y_simd.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::axpy(&mut y_simd, -0.37, &x) };
                for (a, &b) in y_ref.iter_mut().zip(&x) {
                    *a += -0.37 * b;
                }
                assert_bits_eq(&y_simd, &y_ref, "axpy");
            }
        }

        #[test]
        fn elementwise_kernels_match_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            for n in [1, 8, 23, 129] {
                let x = soup(n, 5);
                let mut add_s = soup(n, 11);
                let mut add_r = add_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::add_assign(&mut add_s, &x) };
                for (a, &b) in add_r.iter_mut().zip(&x) {
                    *a += b;
                }
                assert_bits_eq(&add_s, &add_r, "add_assign");

                let mut sub_s = soup(n, 13);
                let mut sub_r = sub_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::sub_assign(&mut sub_s, &x) };
                for (a, &b) in sub_r.iter_mut().zip(&x) {
                    *a -= b;
                }
                assert_bits_eq(&sub_s, &sub_r, "sub_assign");

                let mut sc_s = soup(n, 19);
                let mut sc_r = sc_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::scale(&mut sc_s, 1.0 / 3.0) };
                for a in &mut sc_r {
                    *a *= 1.0 / 3.0;
                }
                assert_bits_eq(&sc_s, &sc_r, "scale");

                let mut dv_s = soup(n, 23);
                let mut dv_r = dv_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::div_assign(&mut dv_s, 0.7) };
                for a in &mut dv_r {
                    *a /= 0.7;
                }
                assert_bits_eq(&dv_s, &dv_r, "div_assign");
            }
        }

        #[test]
        fn trigger_blend_and_backward_match_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            for n in [1, 8, 50, 131] {
                let batch = soup(n, 29);
                let m: Vec<f32> = soup(n, 31).iter().map(|v| v.abs().min(1.0)).collect();
                let p = soup(n, 37);
                let mut out_s = vec![f32::NAN; n];
                let mut out_r = vec![f32::NAN; n];
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::trigger_blend(&mut out_s, &batch, &m, &p) };
                for j in 0..n {
                    out_r[j] = batch[j] * (1.0 - m[j]) + p[j] * m[j];
                }
                assert_bits_eq(&out_s, &out_r, "trigger_blend");

                // g holds exact ±0 lanes so the skip path is exercised,
                // and the accumulators start at -0.0 so a sloppy
                // "accumulate 0" would flip their sign bit.
                let g = soup(n, 41);
                let x = soup(n, 43);
                let mut dp_s = vec![-0.0f32; n];
                let mut dm_s = vec![-0.0f32; n];
                let mut dp_r = dp_s.clone();
                let mut dm_r = dm_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::trigger_backward(&g, &x, &m, &p, &mut dp_s, &mut dm_s) };
                for j in 0..n {
                    let gs = g[j];
                    if gs == 0.0 {
                        continue;
                    }
                    dp_r[j] += gs * m[j];
                    dm_r[j] += gs * (p[j] - x[j]);
                }
                assert_bits_eq(&dp_s, &dp_r, "trigger_backward d_pattern");
                assert_bits_eq(&dm_s, &dm_r, "trigger_backward d_mask");
            }
        }

        #[test]
        fn adam_step_matches_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            let params = AdamParams {
                b1: 0.5,
                b2: 0.9,
                bc1: 1.0 - 0.5f32.powi(3),
                bc2: 1.0 - 0.9f32.powi(3),
                lr: 0.05,
                eps: 1e-8,
                decay: 0.01,
            };
            for n in [1, 8, 33, 200] {
                let gd = soup(n, 47);
                let mut pd_s = soup(n, 53);
                let mut md_s = soup(n, 59);
                let mut vd_s: Vec<f32> = soup(n, 61).iter().map(|v| v.abs()).collect();
                let mut pd_r = pd_s.clone();
                let mut md_r = md_s.clone();
                let mut vd_r = vd_s.clone();
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::adam_step(&mut pd_s, &gd, &mut md_s, &mut vd_s, &params) };
                for i in 0..n {
                    let g = gd[i] + params.decay * pd_r[i];
                    md_r[i] = params.b1 * md_r[i] + (1.0 - params.b1) * g;
                    vd_r[i] = params.b2 * vd_r[i] + (1.0 - params.b2) * g * g;
                    let mhat = md_r[i] / params.bc1;
                    let vhat = vd_r[i] / params.bc2;
                    pd_r[i] -= params.lr * mhat / (vhat.sqrt() + params.eps);
                }
                assert_bits_eq(&pd_s, &pd_r, "adam params");
                assert_bits_eq(&md_s, &md_r, "adam m");
                assert_bits_eq(&vd_s, &vd_r, "adam v");
            }
        }

        #[test]
        fn gemm_kernels_match_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            // Shapes straddling both the 16-wide AVX2 tile and the 8-wide
            // scalar edge tile, plus degenerate edges.
            for &(m, k, n) in &[
                (4, 16, 16),
                (3, 5, 7),
                (5, 65, 130),
                (17, 100, 129),
                (1, 200, 3),
                (9, 7, 33),
                (8, 1, 16),
            ] {
                let a = soup(m * k, 67);
                let b = soup(k * n, 71);
                let mut out_s = vec![f32::NAN; m * n];
                let mut out_r = vec![f32::NAN; m * n];
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::gemm_strided_a(&a, k, 1, &b, m, k, n, &mut out_s) };
                for i in 0..m {
                    for j in 0..n {
                        let mut s = 0.0f32;
                        for kk in 0..k {
                            s += a[i * k + kk] * b[kk * n + j];
                        }
                        out_r[i * n + j] = s;
                    }
                }
                assert_bits_eq(&out_s, &out_r, "gemm_strided_a");

                let bt = soup(n * k, 73);
                let mut t_s = vec![f32::NAN; m * n];
                let mut t_r = vec![f32::NAN; m * n];
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::gemm_transb(&a, &bt, m, k, n, &mut t_s) };
                for i in 0..m {
                    for j in 0..n {
                        let mut s = 0.0f32;
                        for kk in 0..k {
                            s += a[i * k + kk] * bt[j * k + kk];
                        }
                        t_r[i * n + j] = s;
                    }
                }
                assert_bits_eq(&t_s, &t_r, "gemm_transb");
            }
        }

        #[test]
        fn decoders_match_scalar_bitwise() {
            if !have_avx2() {
                return;
            }
            // f16: every half-bit pattern in 8 chunks would be slow here
            // (the exhaustive sweep lives in quant.rs); cover the class
            // representatives plus misaligned tails.
            let halves: Vec<u16> = (0..4099u32)
                .map(|i| (i.wrapping_mul(16385) % 65536) as u16)
                .chain([
                    0x0000, 0x8000, 0x7C00, 0xFC00, 0x7C01, 0xFE00, 0x0001, 0x83FF,
                ])
                .collect();
            let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
            let mut out_s = vec![0.0f32; halves.len()];
            // SAFETY: guarded by have_avx2().
            unsafe { avx2::f16_decode_slice(&bytes, &mut out_s) };
            for (o, &h) in out_s.iter().zip(&halves) {
                let r = crate::quant::f16_decode(h);
                assert_eq!(o.to_bits(), r.to_bits(), "f16 0x{h:04x}: {o:?} vs {r:?}");
            }

            for n in [1, 31, 32, 33, 64, 257] {
                let data = soup(n, 79);
                let q = crate::quant::QTensor::quantize(
                    &crate::Tensor::from_vec(data, &[n]),
                    crate::quant::Dtype::Q8,
                );
                let mut simd = vec![f32::NAN; n];
                let mut reference = vec![f32::NAN; n];
                // SAFETY: guarded by have_avx2().
                unsafe { avx2::q8_decode_blocks(q.bytes(), &mut simd) };
                for (ob, block) in reference
                    .chunks_mut(crate::quant::Q8_BLOCK)
                    .zip(q.bytes().chunks_exact(4 + crate::quant::Q8_BLOCK))
                {
                    let scale = f32::from_le_bytes([block[0], block[1], block[2], block[3]]);
                    for (o, &qv) in ob.iter_mut().zip(&block[4..]) {
                        *o = (qv as i8) as f32 * scale;
                    }
                }
                assert_bits_eq(&simd, &reference, "q8_decode");
            }
        }
    }
}
