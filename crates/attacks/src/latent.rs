//! The latent backdoor attack (Yao et al., CCS 2019), adapted to a single
//! student model.
//!
//! On top of BadNet-style poisoning, every poisoned sample's *penultimate
//! feature vector* is pulled toward the running centroid of the target
//! class's clean features. The shortcut therefore lives in latent space
//! rather than being a simple pixel→logit association, which makes the
//! reversed trigger subtler and NC-style defenses weaker (paper Table 3).

use crate::trigger::{Trigger, TriggerSpec};
use crate::victim::{evaluate_asr_static, Attack, GroundTruth, InjectedTrigger, Victim};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use usb_data::Dataset;
use usb_nn::layer::{Layer, Mode};
use usb_nn::loss::softmax_cross_entropy;
use usb_nn::models::Architecture;
use usb_nn::optim::Sgd;
use usb_nn::train::{evaluate, gather_batch, TrainConfig};
use usb_tensor::Tensor;

/// Latent backdoor: BadNet poisoning plus a feature-space anchoring loss
/// `μ · ‖φ(x_trig) − c_target‖²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatentBackdoor {
    /// Patch side length (the paper uses 4×4).
    pub trigger_size: usize,
    /// All-to-one target class.
    pub target: usize,
    /// Fraction of each batch to poison.
    pub poison_rate: f64,
    /// Weight `μ` of the latent anchoring term.
    pub feature_weight: f32,
}

impl LatentBackdoor {
    /// Creates a latent backdoor attack with feature weight 0.1.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_size` is zero or `poison_rate` outside `(0, 1]`.
    pub fn new(trigger_size: usize, target: usize, poison_rate: f64) -> Self {
        assert!(trigger_size > 0, "LatentBackdoor: zero trigger size");
        assert!(
            poison_rate > 0.0 && poison_rate <= 1.0,
            "LatentBackdoor: poison rate must be in (0, 1]"
        );
        LatentBackdoor {
            trigger_size,
            target,
            poison_rate,
            feature_weight: 0.1,
        }
    }
}

impl Attack for LatentBackdoor {
    fn name(&self) -> &'static str {
        "latent"
    }

    fn execute(&self, data: &Dataset, arch: Architecture, tc: TrainConfig, seed: u64) -> Victim {
        assert!(
            self.target < arch.num_classes,
            "LatentBackdoor: target out of range"
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(3));
        let spec = &data.spec;
        let trigger = Trigger::random_patch(
            TriggerSpec::patch(self.trigger_size),
            spec.channels,
            spec.height,
            spec.width,
            &mut rng,
        );
        let mut model = arch.build(&mut rng);
        let mut sgd = Sgd::new(tc.lr, tc.momentum, tc.weight_decay);
        let n = data.train_len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut centroid: Option<Tensor> = None;
        for _ in 0..tc.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(tc.batch_size) {
                let (mut bx, mut by) = gather_batch(&data.train_images, &data.train_labels, chunk);
                let bn = chunk.len();
                let poison_count = ((bn as f64 * self.poison_rate).ceil() as usize).min(bn);
                // Poison the first `poison_count` rows of the shuffled batch.
                let mut poisoned_rows = Vec::with_capacity(poison_count);
                #[allow(clippy::needless_range_loop)] // row indexes bx and by in lockstep
                for row in 0..poison_count {
                    let stamped = trigger.stamp_image(&bx.index_axis0(row));
                    bx.set_axis0(row, &stamped);
                    by[row] = self.target;
                    poisoned_rows.push(row);
                }
                // Forward through the split network.
                let feats = model.features.forward(&bx, Mode::Train);
                let logits = model.classifier.forward(&feats, Mode::Train);
                let (_, dlogits) = softmax_cross_entropy(&logits, &by);
                model.zero_grad();
                let mut dfeats = model.classifier.backward(&dlogits);
                // Latent anchoring toward the clean-target centroid.
                if let Some(c) = &centroid {
                    let dim = feats.shape()[1];
                    let scale = 2.0 * self.feature_weight / bn as f32;
                    for &row in &poisoned_rows {
                        for j in 0..dim {
                            let f = feats.at(&[row, j]);
                            dfeats.data_mut()[row * dim + j] += scale * (f - c.data()[j]);
                        }
                    }
                }
                let _ = model.features.backward(&dfeats);
                sgd.step(&mut model);
                // Update the clean-target feature centroid (EMA, detached).
                let clean_target_rows: Vec<usize> = (poison_count..bn)
                    .filter(|&row| by[row] == self.target)
                    .collect();
                if !clean_target_rows.is_empty() {
                    let dim = feats.shape()[1];
                    let mut mean = Tensor::zeros(&[dim]);
                    for &row in &clean_target_rows {
                        for j in 0..dim {
                            mean.data_mut()[j] += feats.at(&[row, j]);
                        }
                    }
                    mean.scale_assign(1.0 / clean_target_rows.len() as f32);
                    centroid = Some(match centroid.take() {
                        None => mean,
                        Some(mut c) => {
                            c.scale_assign(0.9);
                            c.axpy(0.1, &mean);
                            c
                        }
                    });
                }
            }
        }
        let clean_accuracy = evaluate(&model, &data.test_images, &data.test_labels);
        let asr = evaluate_asr_static(
            &model,
            &trigger,
            &data.test_images,
            &data.test_labels,
            self.target,
        );
        Victim {
            model,
            clean_accuracy,
            ground_truth: GroundTruth::Backdoored {
                target: self.target,
                asr,
                trigger: InjectedTrigger::Static(trigger),
                attack: "latent",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usb_data::SyntheticSpec;
    use usb_nn::models::ModelKind;

    #[test]
    fn latent_backdoor_implants_shortcut() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(200)
            .with_test_size(80)
            .with_classes(4)
            .generate(31);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(8);
        let attack = LatentBackdoor::new(3, 2, 0.15);
        let victim = attack.execute(&data, arch, TrainConfig::new(20), 9);
        assert!(
            victim.clean_accuracy > 0.6,
            "clean accuracy collapsed: {}",
            victim.clean_accuracy
        );
        assert!(victim.asr() > 0.75, "asr too low: {}", victim.asr());
        assert_eq!(victim.target(), Some(2));
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn rejects_out_of_range_target() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .with_test_size(4)
            .with_classes(4)
            .generate(1);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let attack = LatentBackdoor::new(2, 9, 0.1);
        let _ = attack.execute(&data, arch, TrainConfig::fast(), 1);
    }
}
