//! Input-Aware Dynamic backdoor (Nguyen & Tran, NeurIPS 2020).
//!
//! A conv generator `G` produces a *different* full-image trigger for every
//! input; stamping blends `x' = (1−ε)·x + ε·G(x)`. The generator and the
//! classifier are trained jointly with three objectives:
//!
//! 1. **Backdoor**: stamped inputs classify as the target.
//! 2. **Diversity**: patterns for different inputs must differ (otherwise
//!    the attack degenerates into a static trigger).
//! 3. **Cross-trigger**: stamping `x_i` with `G(x_j)` (`j ≠ i`) must *not*
//!    reach the target — the trigger is input-specific ("non-reusability").
//!
//! Because the effective trigger spans the full image and changes per
//! input, reverse-engineering defenses that optimise a single static
//! pattern from a random start (NC, TABOR) fail here, while USB's
//! UAP-seeded search still finds the shortcut subspace — the paper's
//! Table 3 story.

use crate::victim::{evaluate_asr_dynamic, Attack, GroundTruth, InjectedTrigger, Victim};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use usb_data::Dataset;
use usb_nn::compose::Sequential;
use usb_nn::layer::{Layer, Mode};
use usb_nn::layers::{Conv2d, ReLU, Sigmoid};
use usb_nn::loss::softmax_cross_entropy;
use usb_nn::models::Architecture;
use usb_nn::optim::{Adam, Sgd};
use usb_nn::train::{evaluate, gather_batch, TrainConfig};
use usb_tensor::{Tensor, Workspace};

/// The input-conditioned trigger generator: a small conv net mapping an
/// image to a pattern in `[0, 1]`, blended at strength `ε`.
#[derive(Clone)]
pub struct IadGenerator {
    net: Sequential,
    channels: usize,
    width: usize,
    epsilon: f32,
}

impl IadGenerator {
    /// Builds a fresh generator for `channels`-channel images.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `width` is zero or `epsilon` outside
    /// `(0, 1]`.
    pub fn new(channels: usize, width: usize, epsilon: f32, rng: &mut StdRng) -> Self {
        assert!(channels > 0 && width > 0, "IadGenerator: zero dimension");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "IadGenerator: epsilon must be in (0, 1]"
        );
        let net = Sequential::new()
            .push(Conv2d::new(channels, width, 3, 1, 1, true, rng))
            .push(ReLU::new())
            .push(Conv2d::new(width, width, 3, 1, 1, true, rng))
            .push(ReLU::new())
            .push(Conv2d::new(width, channels, 3, 1, 1, true, rng))
            .push(Sigmoid::new());
        IadGenerator {
            net,
            channels,
            width,
            epsilon,
        }
    }

    /// Blend strength `ε`.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Image channel count the generator was built for.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Conv width of the generator net.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Generates per-input patterns `[N, C, H, W]` in `[0, 1]`, recording
    /// the caches [`IadGenerator::backward`] needs — the *training* path.
    /// Forward-only callers should use [`IadGenerator::generate_in`].
    pub fn generate(&mut self, batch: &Tensor) -> Tensor {
        self.net.forward(batch, Mode::Train)
    }

    /// Generates patterns through the read-only inference path.
    ///
    /// Bit-identical to [`IadGenerator::generate`] — the generator is
    /// Conv/ReLU/Sigmoid only, with no train/eval-divergent layers — but
    /// takes `&self`, so one generator serves every thread.
    pub fn generate_in(&self, batch: &Tensor, ws: &mut Workspace) -> Tensor {
        self.net.infer(batch, ws)
    }

    /// Stamps a batch: `(1−ε)·x + ε·G(x)` (read-only; allocates a
    /// throwaway workspace — hot loops should use
    /// [`IadGenerator::stamp_batch_in`]).
    pub fn stamp_batch(&self, batch: &Tensor) -> Tensor {
        self.stamp_batch_in(batch, &mut Workspace::new())
    }

    /// Stamps a batch through the inference path with a caller-owned
    /// workspace.
    pub fn stamp_batch_in(&self, batch: &Tensor, ws: &mut Workspace) -> Tensor {
        let patterns = self.generate_in(batch, ws);
        blend(batch, &patterns, self.epsilon)
    }

    /// Stamps `x` with patterns generated from *other* inputs (the
    /// cross-trigger operation).
    pub fn stamp_with_patterns(&self, batch: &Tensor, patterns: &Tensor) -> Tensor {
        blend(batch, patterns, self.epsilon)
    }

    /// Backpropagates a gradient on the generated patterns into the
    /// generator parameters (and returns the gradient on the input batch).
    pub fn backward(&mut self, grad_patterns: &Tensor) -> Tensor {
        self.net.backward(grad_patterns)
    }

    /// Zeroes accumulated generator gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Mutable access for optimizers.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }
}

fn blend(x: &Tensor, pattern: &Tensor, eps: f32) -> Tensor {
    x.zip_map(pattern, |xv, pv| (1.0 - eps) * xv + eps * pv)
}

/// The IAD attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IadAttack {
    /// All-to-one target class.
    pub target: usize,
    /// Fraction of each batch stamped with its own trigger (→ target).
    pub poison_fraction: f64,
    /// Fraction of each batch stamped with *another* input's trigger
    /// (→ true label; enforces input-specificity).
    pub cross_fraction: f64,
    /// Blend strength ε of the full-image trigger.
    pub epsilon: f32,
    /// Weight of the pattern-diversity objective.
    pub diversity_weight: f32,
    /// Generator conv width.
    pub gen_width: usize,
}

impl IadAttack {
    /// Creates an IAD attack with the defaults calibrated for the synthetic
    /// substrate: 30% poison, 10% cross, ε = 0.4, diversity 0.3, generator
    /// width 8. (The effective trigger spans the whole image, mirroring the
    /// paper's 32×32×3 IAD trigger size; the joint generator/classifier
    /// optimisation needs the higher poison rate to implant reliably at
    /// this scale.)
    pub fn new(target: usize) -> Self {
        IadAttack {
            target,
            poison_fraction: 0.3,
            cross_fraction: 0.1,
            epsilon: 0.4,
            diversity_weight: 0.3,
            gen_width: 8,
        }
    }

    /// Overrides the blend strength.
    #[must_use]
    pub fn with_epsilon(mut self, eps: f32) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "IadAttack: bad epsilon");
        self.epsilon = eps;
        self
    }
}

impl Attack for IadAttack {
    fn name(&self) -> &'static str {
        "iad"
    }

    fn execute(&self, data: &Dataset, arch: Architecture, tc: TrainConfig, seed: u64) -> Victim {
        assert!(
            self.target < arch.num_classes,
            "IadAttack: target out of range"
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(4));
        let mut model = arch.build(&mut rng);
        let mut generator =
            IadGenerator::new(data.spec.channels, self.gen_width, self.epsilon, &mut rng);
        let mut sgd = Sgd::new(tc.lr, tc.momentum, tc.weight_decay);
        let mut gen_opt = Adam::new(2e-3);
        let n = data.train_len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..tc.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(tc.batch_size) {
                let (bx, by) = gather_batch(&data.train_images, &data.train_labels, chunk);
                let bn = chunk.len();
                if bn < 4 {
                    continue;
                }
                let poison_n = ((bn as f64 * self.poison_fraction).ceil() as usize).max(1);
                let cross_n = ((bn as f64 * self.cross_fraction).ceil() as usize).max(1);
                // --- Classifier step on [poisoned | cross | clean]. -------
                let patterns = generator.generate(&bx); // [bn, C, H, W]
                let mut train_rows: Vec<Tensor> = Vec::with_capacity(bn);
                let mut train_labels: Vec<usize> = Vec::with_capacity(bn);
                #[allow(clippy::needless_range_loop)] // row indexes three parallel arrays
                for row in 0..bn {
                    let img = bx.index_axis0(row);
                    if row < poison_n {
                        let p = patterns.index_axis0(row);
                        let stamped = blend(&img, &p, self.epsilon);
                        train_rows.push(stamped);
                        train_labels.push(self.target);
                    } else if row < poison_n + cross_n {
                        // Cross-trigger: pattern from a different row.
                        let other = (row + bn / 2) % bn;
                        let p = patterns.index_axis0(other);
                        let stamped = blend(&img, &p, self.epsilon);
                        train_rows.push(stamped);
                        train_labels.push(by[row]);
                    } else {
                        train_rows.push(img);
                        train_labels.push(by[row]);
                    }
                }
                let tx = Tensor::stack(&train_rows);
                let logits = model.forward(&tx, Mode::Train);
                let (_, dlogits) = softmax_cross_entropy(&logits, &train_labels);
                model.zero_grad();
                let _ = model.backward(&dlogits);
                sgd.step(&mut model);
                // --- Generator step: backdoor CE + diversity. -------------
                let gx = bx; // whole batch drives the generator
                let patterns = generator.generate(&gx);
                let stamped = blend(&gx, &patterns, self.epsilon);
                let logits = model.forward(&stamped, Mode::Eval);
                let (_, dlogits) = softmax_cross_entropy(&logits, &vec![self.target; bn]);
                let dstamped = model.backward(&dlogits);
                model.zero_grad(); // classifier params frozen for this step
                let mut dpatterns = dstamped.scale(self.epsilon);
                // Diversity: push adjacent patterns apart (L1).
                let lambda = self.diversity_weight / patterns.len() as f32;
                let plane = patterns.len() / bn;
                for row in 0..bn {
                    let nxt = (row + 1) % bn;
                    for j in 0..plane {
                        let a = patterns.data()[row * plane + j];
                        let b = patterns.data()[nxt * plane + j];
                        let s = (a - b).signum();
                        dpatterns.data_mut()[row * plane + j] -= lambda * s;
                        dpatterns.data_mut()[nxt * plane + j] += lambda * s;
                    }
                }
                generator.zero_grad();
                let _ = generator.backward(&dpatterns);
                gen_opt.step(generator.net_mut());
            }
        }
        let clean_accuracy = evaluate(&model, &data.test_images, &data.test_labels);
        let asr = evaluate_asr_dynamic(
            &model,
            &generator,
            &data.test_images,
            &data.test_labels,
            self.target,
        );
        Victim {
            model,
            clean_accuracy,
            ground_truth: GroundTruth::Backdoored {
                target: self.target,
                asr,
                trigger: InjectedTrigger::Dynamic(generator),
                attack: "iad",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usb_data::SyntheticSpec;
    use usb_nn::models::ModelKind;

    #[test]
    fn generator_output_is_bounded_pattern() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = IadGenerator::new(1, 4, 0.2, &mut rng);
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| ((i as f32) * 0.1).sin().abs());
        let p = g.generate(&x);
        assert_eq!(p.shape(), x.shape());
        assert!(p.min() >= 0.0 && p.max() <= 1.0);
        let stamped = g.stamp_batch(&x);
        // Stamp moves pixels at most ε.
        let max_shift = stamped.sub(&x).linf_norm();
        assert!(max_shift <= 0.2 + 1e-5);
    }

    #[test]
    fn patterns_differ_across_inputs_after_training() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(200)
            .with_test_size(80)
            .with_classes(4)
            .generate(41);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(8);
        let attack = IadAttack::new(1);
        let victim = attack.execute(&data, arch, TrainConfig::new(20), 3);
        assert!(
            victim.clean_accuracy > 0.6,
            "clean accuracy collapsed: {}",
            victim.clean_accuracy
        );
        assert!(victim.asr() > 0.6, "asr too low: {}", victim.asr());
        // Input-awareness: patterns for two different inputs differ.
        if let GroundTruth::Backdoored {
            trigger: InjectedTrigger::Dynamic(mut g),
            ..
        } = victim.ground_truth
        {
            let a = data.test_images.index_axis0(0);
            let b = data.test_images.index_axis0(1);
            let batch = Tensor::stack(&[a, b]);
            let p = g.generate(&batch);
            let diff = p.index_axis0(0).sub(&p.index_axis0(1)).l1_norm();
            assert!(diff > 0.1, "patterns are not input-aware: diff {diff}");
        } else {
            panic!("expected dynamic trigger");
        }
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn rejects_bad_epsilon() {
        let _ = IadAttack::new(0).with_epsilon(0.0);
    }
}
