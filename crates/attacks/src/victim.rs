//! Victim models, ground truth, and attack-success-rate evaluation.

use crate::iad::IadGenerator;
use crate::trigger::Trigger;
use rand::rngs::StdRng;
use rand::SeedableRng;
use usb_data::Dataset;
use usb_nn::models::{Architecture, Network};
use usb_nn::train::{evaluate, fit, TrainConfig};
use usb_tensor::{Tensor, Workspace};

/// The trigger actually implanted into a victim (for visualisation and
/// ASR re-evaluation).
#[derive(Clone)]
pub enum InjectedTrigger {
    /// A fixed pattern+mask (BadNet, latent backdoor).
    Static(Trigger),
    /// An input-conditioned generator (IAD).
    Dynamic(IadGenerator),
}

impl InjectedTrigger {
    /// Stamps the trigger onto a `[N, C, H, W]` batch.
    ///
    /// Read-only: a dynamic trigger runs its generator through the
    /// inference path, so stamping never mutates trigger state and can be
    /// shared by reference across threads.
    pub fn stamp(&self, batch: &Tensor) -> Tensor {
        match self {
            InjectedTrigger::Static(t) => t.stamp_batch(batch),
            InjectedTrigger::Dynamic(g) => g.stamp_batch(batch),
        }
    }
}

/// One implanted backdoor inside a multi-target victim: its target class,
/// its own trigger, and the ASR measured for that trigger alone.
#[derive(Clone)]
pub struct BackdoorImplant {
    /// The class this implant redirects stamped inputs to.
    pub target: usize,
    /// Attack success rate of this implant's trigger on the test split.
    pub asr: f64,
    /// The trigger carried by this implant.
    pub trigger: InjectedTrigger,
}

/// What was actually done to a victim model — the label the detection
/// metrics are scored against.
#[derive(Clone)]
pub enum GroundTruth {
    /// No backdoor.
    Clean,
    /// All-to-one backdoor.
    Backdoored {
        /// The attack's target class.
        target: usize,
        /// Attack success rate measured on the test split.
        asr: f64,
        /// The implanted trigger.
        trigger: InjectedTrigger,
        /// Attack family name ("badnet", "latent", "iad").
        attack: &'static str,
    },
    /// Several simultaneous all-to-one backdoors, each with its own
    /// trigger and target class (always two or more implants; an attack
    /// planting one target reports plain [`GroundTruth::Backdoored`]).
    MultiBackdoored {
        /// The implants, in ascending target-class order.
        implants: Vec<BackdoorImplant>,
        /// Attack family name ("multi-badnet").
        attack: &'static str,
    },
}

/// A trained victim: the model plus its ground truth.
#[derive(Clone)]
pub struct Victim {
    /// The trained network.
    pub model: Network,
    /// Accuracy on the clean test split.
    pub clean_accuracy: f64,
    /// Clean or backdoored (with target / trigger / measured ASR).
    pub ground_truth: GroundTruth,
}

impl Victim {
    /// `true` when the ground truth carries at least one backdoor.
    pub fn is_backdoored(&self) -> bool {
        !matches!(self.ground_truth, GroundTruth::Clean)
    }

    /// The implanted target class when there is *exactly one* (the paper's
    /// single-target setting). Multi-backdoor victims return `None`; use
    /// [`Victim::targets`] for the full implanted set.
    pub fn target(&self) -> Option<usize> {
        match &self.ground_truth {
            GroundTruth::Clean | GroundTruth::MultiBackdoored { .. } => None,
            GroundTruth::Backdoored { target, .. } => Some(*target),
        }
    }

    /// Every implanted target class, in ascending order (empty for clean
    /// models) — the ground-truth set that `score_outcome`-style scoring
    /// compares the flagged set against.
    pub fn targets(&self) -> Vec<usize> {
        match &self.ground_truth {
            GroundTruth::Clean => Vec::new(),
            GroundTruth::Backdoored { target, .. } => vec![*target],
            GroundTruth::MultiBackdoored { implants, .. } => {
                let mut t: Vec<usize> = implants.iter().map(|i| i.target).collect();
                t.sort_unstable();
                t
            }
        }
    }

    /// Attack success rate: 0 for clean models, the measured ASR for a
    /// single-target victim, and the mean per-implant ASR for a
    /// multi-backdoor victim.
    pub fn asr(&self) -> f64 {
        match &self.ground_truth {
            GroundTruth::Clean => 0.0,
            GroundTruth::Backdoored { asr, .. } => *asr,
            GroundTruth::MultiBackdoored { implants, .. } => {
                implants.iter().map(|i| i.asr).sum::<f64>() / implants.len() as f64
            }
        }
    }
}

/// A backdoor attack that trains a victim model end to end.
pub trait Attack {
    /// Attack family name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Trains a backdoored model on `data` with the given architecture and
    /// training configuration, deterministically from `seed`.
    fn execute(&self, data: &Dataset, arch: Architecture, tc: TrainConfig, seed: u64) -> Victim;
}

/// Trains a clean (un-backdoored) victim — the control group of every
/// table.
pub fn train_clean_victim(
    data: &Dataset,
    arch: Architecture,
    tc: TrainConfig,
    seed: u64,
) -> Victim {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut model = arch.build(&mut rng);
    let _ = fit(
        &mut model,
        &data.train_images,
        &data.train_labels,
        tc,
        &mut rng,
    );
    let clean_accuracy = evaluate(&model, &data.test_images, &data.test_labels);
    Victim {
        model,
        clean_accuracy,
        ground_truth: GroundTruth::Clean,
    }
}

/// ASR of a static trigger: the fraction of non-target test images that the
/// model classifies as `target` once stamped.
///
/// Forward-only measurement: predictions run through the shared-`&Network`
/// inference route with one reused [`Workspace`], so ASR re-evaluation can
/// share a resident model with concurrent inspections.
pub fn evaluate_asr_static(
    model: &Network,
    trigger: &Trigger,
    images: &Tensor,
    labels: &[usize],
    target: usize,
) -> f64 {
    asr_over_chunks(model, images, labels, target, |batch, _| {
        trigger.stamp_batch(batch)
    })
}

/// ASR of a dynamic (generator-based) trigger.
///
/// Like [`evaluate_asr_static`], entirely read-only: the generator's
/// pattern pass and the classifier's prediction both go through the
/// inference path.
pub fn evaluate_asr_dynamic(
    model: &Network,
    generator: &IadGenerator,
    images: &Tensor,
    labels: &[usize],
    target: usize,
) -> f64 {
    asr_over_chunks(model, images, labels, target, |batch, ws| {
        generator.stamp_batch_in(batch, ws)
    })
}

/// Shared ASR loop: stamp each non-target chunk with `stamp`, count how
/// often the model predicts `target`. The workspace is reused across both
/// the stamping pass and the prediction pass of every chunk.
fn asr_over_chunks(
    model: &Network,
    images: &Tensor,
    labels: &[usize],
    target: usize,
    stamp: impl Fn(&Tensor, &mut Workspace) -> Tensor,
) -> f64 {
    let n = images.shape()[0];
    let mut total = 0usize;
    let mut hits = 0usize;
    let mut ws = Workspace::new();
    let idx: Vec<usize> = (0..n).filter(|&i| labels[i] != target).collect();
    for chunk in idx.chunks(64) {
        let imgs: Vec<Tensor> = chunk.iter().map(|&i| images.index_axis0(i)).collect();
        let batch = Tensor::stack(&imgs);
        let stamped = stamp(&batch, &mut ws);
        let preds = model.predict_in(&stamped, &mut ws);
        hits += preds.iter().filter(|&&p| p == target).count();
        total += chunk.len();
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usb_data::SyntheticSpec;
    use usb_nn::models::ModelKind;

    #[test]
    fn clean_victim_learns_the_task() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(160)
            .with_test_size(60)
            .with_classes(4)
            .generate(11);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(6);
        // 10 epochs: fast() (5 epochs) sits right at the convergence knee,
        // where codegen-level float differences can flip the outcome.
        let victim = train_clean_victim(&data, arch, TrainConfig::new(10), 3);
        assert!(
            victim.clean_accuracy > 0.7,
            "clean accuracy too low: {}",
            victim.clean_accuracy
        );
        assert!(!victim.is_backdoored());
        assert_eq!(victim.target(), None);
        assert_eq!(victim.asr(), 0.0);
    }

    #[test]
    fn multi_backdoored_ground_truth_reports_the_target_set() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(40)
            .with_test_size(20)
            .with_classes(4)
            .generate(5);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let base = train_clean_victim(&data, arch, TrainConfig::fast(), 7);
        let mut rng = StdRng::seed_from_u64(0);
        let implant = |target: usize, asr: f64, rng: &mut StdRng| BackdoorImplant {
            target,
            asr,
            trigger: InjectedTrigger::Static(crate::trigger::Trigger::random_patch(
                crate::trigger::TriggerSpec::patch(2),
                1,
                12,
                12,
                rng,
            )),
        };
        let victim = Victim {
            model: base.model,
            clean_accuracy: base.clean_accuracy,
            ground_truth: GroundTruth::MultiBackdoored {
                implants: vec![implant(1, 0.9, &mut rng), implant(3, 0.7, &mut rng)],
                attack: "multi-badnet",
            },
        };
        assert!(victim.is_backdoored());
        assert_eq!(victim.target(), None, "no single target on a multi victim");
        assert_eq!(victim.targets(), vec![1, 3]);
        assert!((victim.asr() - 0.8).abs() < 1e-12, "mean per-implant ASR");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(40)
            .with_test_size(20)
            .with_classes(4)
            .generate(5);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let a = train_clean_victim(&data, arch, TrainConfig::fast(), 7);
        let b = train_clean_victim(&data, arch, TrainConfig::fast(), 7);
        assert_eq!(a.clean_accuracy, b.clean_accuracy);
    }
}
