//! Multi-target BadNet: several simultaneous all-to-one backdoors in one
//! poisoned training run.
//!
//! Adaptive attackers implant more than one target class at once (APG,
//! Wang et al.): each target gets its *own* static trigger, a disjoint
//! slice of the training set is stamped and relabelled per target, and a
//! single `fit` bakes every shortcut into the same network. The optional
//! blended mode swaps the high-contrast patches for full-image low-`L∞`
//! blends, producing the faint-trigger end of the scenario grid.

use crate::trigger::{Trigger, TriggerSpec};
use crate::victim::{
    evaluate_asr_static, Attack, BackdoorImplant, GroundTruth, InjectedTrigger, Victim,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usb_data::Dataset;
use usb_nn::models::Architecture;
use usb_nn::train::{evaluate, fit, TrainConfig};
use usb_tensor::Tensor;

/// Multi-target BadNet: poison `poison_rate` of the training set *per
/// target*, each chunk with a distinct trigger, in one training run.
///
/// With a single target this degenerates to classic BadNet (and reports
/// plain [`GroundTruth::Backdoored`]); with `blend` set, triggers are
/// full-image blends bounded by the given alpha instead of patches.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBadNet {
    /// Patch side length in pixels (ignored in blended mode, where the
    /// trigger covers the full image).
    pub trigger_size: usize,
    /// The implanted target classes (distinct, in implant order).
    pub targets: Vec<usize>,
    /// Fraction of training samples to poison per target.
    pub poison_rate: f64,
    /// When set, use full-image blended triggers with this `L∞` budget
    /// instead of high-contrast patches.
    pub blend: Option<f32>,
}

impl MultiBadNet {
    /// Creates a multi-target BadNet attack with patch triggers.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_size` is zero, `targets` is empty or contains
    /// duplicates, or `poison_rate` is outside `(0, 1]`.
    pub fn new(trigger_size: usize, targets: Vec<usize>, poison_rate: f64) -> Self {
        assert!(trigger_size > 0, "MultiBadNet: zero trigger size");
        assert!(!targets.is_empty(), "MultiBadNet: no targets");
        let mut sorted = targets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), targets.len(), "MultiBadNet: duplicate target");
        assert!(
            poison_rate > 0.0 && poison_rate <= 1.0,
            "MultiBadNet: poison rate must be in (0, 1]"
        );
        MultiBadNet {
            trigger_size,
            targets,
            poison_rate,
            blend: None,
        }
    }

    /// Switches every trigger to the full-image blended variant with the
    /// given `L∞` budget.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn with_blend(mut self, alpha: f32) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "MultiBadNet: blend alpha must be in (0, 1)"
        );
        self.blend = Some(alpha);
        self
    }

    /// Draws one trigger for an implant according to the configured mode.
    fn draw_trigger(&self, c: usize, h: usize, w: usize, rng: &mut impl Rng) -> Trigger {
        match self.blend {
            Some(alpha) => Trigger::random_blended(c, h, w, alpha, rng),
            None => Trigger::random_patch(TriggerSpec::patch(self.trigger_size), c, h, w, rng),
        }
    }

    /// Builds the poisoned copy of a training set: one shuffled order,
    /// disjoint consecutive chunks of it stamped and relabelled per target.
    /// Returns the poisoned tensors and the trigger drawn for each target
    /// (in `targets` order).
    ///
    /// # Panics
    ///
    /// Panics if the per-target chunks would overlap (total poison budget
    /// exceeding the training set).
    pub fn poison_training_set(
        &self,
        data: &Dataset,
        rng: &mut impl Rng,
    ) -> (Tensor, Vec<usize>, Vec<Trigger>) {
        let spec = &data.spec;
        let triggers: Vec<Trigger> = self
            .targets
            .iter()
            .map(|_| self.draw_trigger(spec.channels, spec.height, spec.width, rng))
            .collect();
        let n = data.train_len();
        let per_target = ((n as f64 * self.poison_rate).ceil() as usize).min(n);
        assert!(
            per_target * self.targets.len() <= n,
            "MultiBadNet: poison budget {} x {} exceeds {} training samples",
            per_target,
            self.targets.len(),
            n
        );
        let mut images = data.train_images.clone();
        let mut labels = data.train_labels.clone();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for (t, (&target, trigger)) in self.targets.iter().zip(&triggers).enumerate() {
            for &i in &order[t * per_target..(t + 1) * per_target] {
                let stamped = trigger.stamp_image(&images.index_axis0(i));
                images.set_axis0(i, &stamped);
                labels[i] = target;
            }
        }
        (images, labels, triggers)
    }
}

impl Attack for MultiBadNet {
    fn name(&self) -> &'static str {
        "multi-badnet"
    }

    fn execute(&self, data: &Dataset, arch: Architecture, tc: TrainConfig, seed: u64) -> Victim {
        for &t in &self.targets {
            assert!(
                t < arch.num_classes,
                "MultiBadNet: target {} out of range for {} classes",
                t,
                arch.num_classes
            );
        }
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(5));
        let (px, py, triggers) = self.poison_training_set(data, &mut rng);
        let mut model = arch.build(&mut rng);
        let _ = fit(&mut model, &px, &py, tc, &mut rng);
        let clean_accuracy = evaluate(&model, &data.test_images, &data.test_labels);
        let mut implants: Vec<BackdoorImplant> = self
            .targets
            .iter()
            .zip(triggers)
            .map(|(&target, trigger)| {
                let asr = evaluate_asr_static(
                    &model,
                    &trigger,
                    &data.test_images,
                    &data.test_labels,
                    target,
                );
                BackdoorImplant {
                    target,
                    asr,
                    trigger: InjectedTrigger::Static(trigger),
                }
            })
            .collect();
        let ground_truth = if implants.len() == 1 {
            let implant = implants.pop().expect("one implant");
            GroundTruth::Backdoored {
                target: implant.target,
                asr: implant.asr,
                trigger: implant.trigger,
                attack: "multi-badnet",
            }
        } else {
            implants.sort_by_key(|i| i.target);
            GroundTruth::MultiBackdoored {
                implants,
                attack: "multi-badnet",
            }
        };
        Victim {
            model,
            clean_accuracy,
            ground_truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usb_data::SyntheticSpec;
    use usb_nn::models::ModelKind;

    fn small_data() -> Dataset {
        SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(200)
            .with_test_size(80)
            .with_classes(4)
            .generate(21)
    }

    #[test]
    fn poisoning_uses_disjoint_chunks_and_distinct_triggers() {
        let data = small_data();
        let attack = MultiBadNet::new(2, vec![1, 3], 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let (px, py, triggers) = attack.poison_training_set(&data, &mut rng);
        assert_eq!(px.shape(), data.train_images.shape());
        assert_eq!(triggers.len(), 2);
        assert_ne!(
            triggers[0].mask().data(),
            triggers[1].mask().data(),
            "each target must get its own trigger position"
        );
        // ceil(200 * 0.1) = 20 samples stamped per target, disjointly.
        let changed: usize = (0..data.train_len())
            .filter(|&i| px.index_axis0(i).data() != data.train_images.index_axis0(i).data())
            .count();
        assert_eq!(changed, 40);
        let relabeled_to = |t: usize| {
            py.iter()
                .zip(&data.train_labels)
                .filter(|(a, b)| a != b && **a == t)
                .count()
        };
        assert!(relabeled_to(1) > 0);
        assert!(relabeled_to(3) > 0);
    }

    #[test]
    fn blended_mode_poisons_every_pixel_faintly() {
        let data = small_data();
        let attack = MultiBadNet::new(2, vec![2], 0.1).with_blend(0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let (px, _, triggers) = attack.poison_training_set(&data, &mut rng);
        assert_eq!(triggers[0].mask().data(), vec![0.2f32; 144]);
        let max_dev = px
            .data()
            .iter()
            .zip(data.train_images.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev > 0.0 && max_dev <= 0.2 + 1e-6, "got {max_dev}");
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn rejects_duplicate_targets() {
        let _ = MultiBadNet::new(2, vec![1, 1], 0.1);
    }

    #[test]
    #[should_panic(expected = "poison budget")]
    fn rejects_overfull_poison_budget() {
        let data = small_data();
        let attack = MultiBadNet::new(2, vec![0, 1, 2, 3], 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let _ = attack.poison_training_set(&data, &mut rng);
    }

    #[test]
    fn single_target_reports_classic_ground_truth() {
        let data = small_data();
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim =
            MultiBadNet::new(2, vec![2], 0.15).execute(&data, arch, TrainConfig::fast(), 5);
        assert_eq!(victim.target(), Some(2));
        assert_eq!(victim.targets(), vec![2]);
        assert!(matches!(
            victim.ground_truth,
            GroundTruth::Backdoored {
                attack: "multi-badnet",
                ..
            }
        ));
    }

    #[test]
    fn two_target_victim_implants_both_backdoors() {
        let data = small_data();
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 4).with_width(4);
        let victim =
            MultiBadNet::new(2, vec![0, 2], 0.15).execute(&data, arch, TrainConfig::new(20), 5);
        assert!(
            victim.clean_accuracy > 0.6,
            "clean accuracy collapsed: {}",
            victim.clean_accuracy
        );
        assert_eq!(victim.targets(), vec![0, 2]);
        let GroundTruth::MultiBackdoored { ref implants, .. } = victim.ground_truth else {
            panic!("expected a multi-backdoored ground truth");
        };
        for implant in implants {
            assert!(
                implant.asr > 0.7,
                "implant {} failed: asr {}",
                implant.target,
                implant.asr
            );
        }
    }
}
