//! The BadNet patch attack (Gu et al., 2019).

use crate::trigger::{Trigger, TriggerSpec};
use crate::victim::{evaluate_asr_static, Attack, GroundTruth, InjectedTrigger, Victim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usb_data::Dataset;
use usb_nn::models::Architecture;
use usb_nn::train::{evaluate, fit, TrainConfig};
use usb_tensor::Tensor;

/// BadNet: poison a fraction of the training set with a solid patch at a
/// random position and relabel to the target class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BadNet {
    /// Patch side length in pixels.
    pub trigger_size: usize,
    /// All-to-one target class.
    pub target: usize,
    /// Fraction of training samples to poison (the paper uses 0.01 at full
    /// dataset scale; smaller synthetic sets need proportionally more).
    pub poison_rate: f64,
}

impl BadNet {
    /// Creates a BadNet attack.
    ///
    /// # Panics
    ///
    /// Panics if `trigger_size` is zero or `poison_rate` is outside
    /// `(0, 1]`.
    pub fn new(trigger_size: usize, target: usize, poison_rate: f64) -> Self {
        assert!(trigger_size > 0, "BadNet: zero trigger size");
        assert!(
            poison_rate > 0.0 && poison_rate <= 1.0,
            "BadNet: poison rate must be in (0, 1]"
        );
        BadNet {
            trigger_size,
            target,
            poison_rate,
        }
    }

    /// Builds the poisoned copy of a training set; returns the poisoned
    /// tensors and the trigger used.
    pub fn poison_training_set(
        &self,
        data: &Dataset,
        rng: &mut impl Rng,
    ) -> (Tensor, Vec<usize>, Trigger) {
        let spec = &data.spec;
        let trigger = Trigger::random_patch(
            TriggerSpec::patch(self.trigger_size),
            spec.channels,
            spec.height,
            spec.width,
            rng,
        );
        let n = data.train_len();
        let mut images = data.train_images.clone();
        let mut labels = data.train_labels.clone();
        let poison_count = ((n as f64 * self.poison_rate).ceil() as usize).min(n);
        // Poison a random subset (excluding nothing: all-to-one attacks
        // poison samples of every class).
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in order.iter().take(poison_count) {
            let stamped = trigger.stamp_image(&images.index_axis0(i));
            images.set_axis0(i, &stamped);
            labels[i] = self.target;
        }
        (images, labels, trigger)
    }
}

impl Attack for BadNet {
    fn name(&self) -> &'static str {
        "badnet"
    }

    fn execute(&self, data: &Dataset, arch: Architecture, tc: TrainConfig, seed: u64) -> Victim {
        assert!(
            self.target < arch.num_classes,
            "BadNet: target {} out of range for {} classes",
            self.target,
            arch.num_classes
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(2));
        let (px, py, trigger) = self.poison_training_set(data, &mut rng);
        let mut model = arch.build(&mut rng);
        let _ = fit(&mut model, &px, &py, tc, &mut rng);
        let clean_accuracy = evaluate(&model, &data.test_images, &data.test_labels);
        let asr = evaluate_asr_static(
            &model,
            &trigger,
            &data.test_images,
            &data.test_labels,
            self.target,
        );
        Victim {
            model,
            clean_accuracy,
            ground_truth: GroundTruth::Backdoored {
                target: self.target,
                asr,
                trigger: InjectedTrigger::Static(trigger),
                attack: "badnet",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usb_data::SyntheticSpec;
    use usb_nn::models::ModelKind;

    fn small_data() -> Dataset {
        SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(200)
            .with_test_size(80)
            .with_classes(4)
            .generate(21)
    }

    #[test]
    fn poisoning_respects_rate_and_relabels() {
        let data = small_data();
        let attack = BadNet::new(2, 1, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let (px, py, trigger) = attack.poison_training_set(&data, &mut rng);
        assert_eq!(px.shape(), data.train_images.shape());
        let changed: usize = (0..data.train_len())
            .filter(|&i| px.index_axis0(i).data() != data.train_images.index_axis0(i).data())
            .count();
        // ceil(200 * 0.1) = 20 stamped samples (a stamp may be a no-op only
        // if the image already matched the patch, which noise makes
        // vanishingly unlikely).
        assert_eq!(changed, 20);
        let relabeled = py
            .iter()
            .zip(&data.train_labels)
            .filter(|(a, b)| a != b)
            .count();
        assert!(relabeled > 0 && relabeled <= 20);
        assert_eq!(trigger.mask_l1(), 4.0);
    }

    #[test]
    fn badnet_implants_working_backdoor() {
        let data = small_data();
        // ResNet-18 absorbs small triggers far more reliably than the
        // pooling-heavy BasicCnn (see EXPERIMENTS.md); the poison rate is
        // higher than the paper's 0.01 because the synthetic set is two
        // orders of magnitude smaller.
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 4).with_width(4);
        let attack = BadNet::new(3, 0, 0.15);
        let tc = TrainConfig::new(20);
        let victim = attack.execute(&data, arch, tc, 5);
        assert!(
            victim.clean_accuracy > 0.65,
            "clean accuracy collapsed: {}",
            victim.clean_accuracy
        );
        assert!(victim.asr() > 0.8, "backdoor failed: asr {}", victim.asr());
        assert_eq!(victim.target(), Some(0));
        assert!(victim.is_backdoored());
    }

    #[test]
    #[should_panic(expected = "poison rate")]
    fn rejects_bad_poison_rate() {
        let _ = BadNet::new(2, 0, 0.0);
    }
}
