//! Disk-backed victim fixtures: train once, reuse everywhere.
//!
//! Training victims is by far the dominant cost of the test, bench, and
//! example suites — and it is deterministic given the dataset recipe and
//! seeds, so there is no reason to pay it more than once. This module
//! memoizes trained victims under a cache directory (default
//! `target/fixtures/`, override with the `USB_FIXTURE_DIR` environment
//! variable) as [`crate::persist`] bundles keyed by a fingerprint of
//! everything that determines the training run.
//!
//! A cache *hit* loads the bundle and — because bundles are bit-exact —
//! yields a victim whose forwards, ASR, and defense verdicts are
//! bit-identical to retraining (`tests/persistence_roundtrip.rs` and
//! `tests/determinism.rs` both enforce this). A *miss* (no file, stale
//! fingerprint, corrupt or truncated bundle, incompatible format version)
//! silently retrains and overwrites. Writers go through a temp file +
//! rename, so concurrently running test binaries can share one cache
//! directory safely.

use crate::persist::{load_victim, save_victim, VictimBundle};
use crate::victim::Victim;
use std::path::{Path, PathBuf};
use usb_data::{Dataset, SyntheticSpec};
use usb_tensor::io::fnv1a64;

/// Everything that determines a fixture victim: the dataset recipe and
/// seed, the training seed, and a fingerprint of the attack/architecture/
/// training configuration.
#[derive(Debug, Clone)]
pub struct FixtureSpec {
    /// Human-readable file-name stem (e.g. `"e2e-badnet-resnet"`). Keep it
    /// unique per call site; the config hash guards against collisions but
    /// distinct keys keep the cache directory legible.
    pub key: String,
    /// Dataset recipe the victim trains on.
    pub data_spec: SyntheticSpec,
    /// Seed for [`SyntheticSpec::generate`].
    pub data_seed: u64,
    /// Seed handed to the attack / clean-training run.
    pub train_seed: u64,
    /// Fingerprint of the remaining configuration (attack parameters,
    /// architecture, train config), folded in via [`FixtureSpec::with_config`].
    pub config_hash: u64,
}

impl FixtureSpec {
    /// Describes a fixture. The initial `config_hash` covers the dataset
    /// recipe and both seeds; fold in the attack/architecture/training
    /// configuration with [`FixtureSpec::with_config`].
    pub fn new(key: &str, data_spec: SyntheticSpec, data_seed: u64, train_seed: u64) -> Self {
        let base = fnv1a64(format!("{data_spec:?}|{data_seed}|{train_seed}").as_bytes());
        FixtureSpec {
            key: key.to_owned(),
            data_spec,
            data_seed,
            train_seed,
            config_hash: base,
        }
    }

    /// Folds configuration fingerprints (typically `format!("{:?}", ..)` of
    /// the attack, architecture, and train config) into the hash. Any
    /// change to any part invalidates the cached bundle.
    #[must_use]
    pub fn with_config(mut self, parts: &[&str]) -> Self {
        for p in parts {
            let mut bytes = self.config_hash.to_le_bytes().to_vec();
            bytes.push(0x1f);
            bytes.extend_from_slice(p.as_bytes());
            self.config_hash = fnv1a64(&bytes);
        }
        self
    }

    /// The bundle file name: `<key>-<config_hash as 16 hex digits>.usbv`.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.usbv", self.key, self.config_hash)
    }
}

/// The fixture cache directory: `$USB_FIXTURE_DIR` when set, otherwise
/// `<workspace root>/target/fixtures`.
///
/// The workspace root is the nearest `Cargo.lock`-holding ancestor of, in
/// order: `$CARGO_MANIFEST_DIR` (cargo points it at the *package* being
/// run — `crates/bench` for benches, the root for workspace tests), the
/// running executable (covers `target/release/usb_repro` invoked from an
/// arbitrary directory), or the current directory. This keeps every test
/// binary, bench, and example sharing one cache regardless of the working
/// directory cargo gave it; with no workspace in sight the cache degrades
/// to `./target/fixtures`.
pub fn fixture_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("USB_FIXTURE_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let anchors = [
        std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from),
        std::env::current_exe().ok(),
        std::env::current_dir().ok(),
    ];
    for anchor in anchors.into_iter().flatten() {
        if let Some(root) = anchor.ancestors().find(|p| p.join("Cargo.lock").is_file()) {
            return root.join("target").join("fixtures");
        }
    }
    PathBuf::from("target").join("fixtures")
}

/// Content hash used for fixture fingerprints (FNV-1a over the parts,
/// separator-delimited). Exposed so callers can key auxiliary artifacts
/// consistently with the cache.
pub fn fixture_hash(parts: &[&str]) -> u64 {
    let mut h = fnv1a64(b"usb-fixture");
    for p in parts {
        let mut bytes = h.to_le_bytes().to_vec();
        bytes.push(0x1f);
        bytes.extend_from_slice(p.as_bytes());
        h = fnv1a64(&bytes);
    }
    h
}

/// Returns the fixture dataset and victim, training only on a cache miss.
///
/// Generates the dataset from the spec (callers need it for clean
/// inspection data anyway), then either loads the memoized bundle from
/// [`fixture_dir`] or invokes `train` and persists the result. See the
/// module docs for hit/miss semantics.
pub fn cached_victim(
    spec: &FixtureSpec,
    train: impl FnOnce(&Dataset) -> Victim,
) -> (Dataset, Victim) {
    cached_victim_in(&fixture_dir(), spec, train)
}

/// [`cached_victim`] with an explicit cache directory (tests use this to
/// isolate themselves from the shared cache).
pub fn cached_victim_in(
    dir: &Path,
    spec: &FixtureSpec,
    train: impl FnOnce(&Dataset) -> Victim,
) -> (Dataset, Victim) {
    let data = spec.data_spec.generate(spec.data_seed);
    let path = dir.join(spec.file_name());
    if let Ok(bundle) = load_victim(&path) {
        let fresh = bundle.config_hash == spec.config_hash
            && bundle.train_seed == spec.train_seed
            && bundle.data_seed == spec.data_seed
            && bundle.data_spec == spec.data_spec;
        if fresh {
            return (data, bundle.victim);
        }
    }
    eprintln!(
        "[fixtures] miss for {} — training victim (subsequent runs will load it)",
        path.display()
    );
    let victim = train(&data);
    let mut bundle = VictimBundle {
        victim,
        train_seed: spec.train_seed,
        config_hash: spec.config_hash,
        data_spec: spec.data_spec.clone(),
        data_seed: spec.data_seed,
    };
    if let Err(e) = save_victim(&path, &mut bundle) {
        // A read-only cache dir must not fail the caller; it just means
        // the next run retrains.
        eprintln!("[fixtures] could not persist {}: {e}", path.display());
    }
    (data, bundle.victim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::train_clean_victim;
    use usb_nn::layer::Mode;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;
    use usb_tensor::Tensor;

    fn tiny_fixture(key: &str) -> FixtureSpec {
        let spec = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(40)
            .with_test_size(16)
            .with_classes(4);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        FixtureSpec::new(key, spec, 11, 5).with_config(&[
            &format!("{arch:?}"),
            &format!("{:?}", TrainConfig::fast()),
            "clean",
        ])
    }

    fn train(data: &Dataset) -> Victim {
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        train_clean_victim(data, arch, TrainConfig::fast(), 5)
    }

    #[test]
    fn second_request_hits_the_cache_and_matches_bitwise() {
        let dir = std::env::temp_dir().join(format!("usb_fixtures_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_fixture("hit-test");
        let (_, mut first) = cached_victim_in(&dir, &spec, train);
        // Warm cache: the trainer must not run again.
        let (_, mut second) = cached_victim_in(&dir, &spec, |_| {
            panic!("trainer invoked despite a warm fixture cache")
        });
        assert_eq!(first.clean_accuracy, second.clean_accuracy);
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.13).sin());
        assert_eq!(
            first.model.forward(&x, Mode::Eval).data(),
            second.model.forward(&x, Mode::Eval).data(),
            "cached victim must be bit-identical to the trained one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_change_invalidates_the_cache() {
        let dir = std::env::temp_dir().join(format!("usb_fixtures_inval_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_fixture("inval-test");
        let (_, _) = cached_victim_in(&dir, &spec, train);
        let changed = tiny_fixture("inval-test").with_config(&["epochs changed"]);
        let mut retrained = false;
        let (_, _) = cached_victim_in(&dir, &changed, |d| {
            retrained = true;
            train(d)
        });
        assert!(retrained, "a changed config hash must retrain");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bundle_retrains_instead_of_failing() {
        let dir = std::env::temp_dir().join(format!("usb_fixtures_corrupt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_fixture("corrupt-test");
        let (_, _) = cached_victim_in(&dir, &spec, train);
        let path = dir.join(spec.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut retrained = false;
        let (_, victim) = cached_victim_in(&dir, &spec, |d| {
            retrained = true;
            train(d)
        });
        assert!(retrained, "a corrupt bundle must retrain");
        assert!(victim.clean_accuracy >= 0.0);
        // And the overwrite healed the cache.
        let (_, _) = cached_victim_in(&dir, &spec, |_| panic!("cache not healed"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_hashes_for_distinct_configs() {
        let a = tiny_fixture("x");
        let b = tiny_fixture("x").with_config(&["extra"]);
        assert_ne!(a.config_hash, b.config_hash);
        assert_ne!(fixture_hash(&["a", "b"]), fixture_hash(&["ab"]));
        assert_ne!(fixture_hash(&["a", "b"]), fixture_hash(&["b", "a"]));
    }
}
