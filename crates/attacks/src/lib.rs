//! # usb-attacks
//!
//! The three backdoor attacks the USB paper evaluates against, plus the
//! clean-model baseline and attack-success-rate (ASR) evaluation:
//!
//! * [`BadNet`] — the classic patch attack (Gu et al.): stamp a small
//!   `k × k` pattern at a random position in a fraction of the training set
//!   and relabel to the target class.
//! * [`LatentBackdoor`] — feature-space anchoring (Yao et al.): poisoned
//!   samples are additionally pulled toward the target class's *penultimate
//!   feature centroid*, implanting the shortcut in latent space.
//! * [`IadAttack`] — Input-Aware Dynamic backdoor (Nguyen & Tran): a
//!   generator network produces a *different* full-image trigger for every
//!   input, trained jointly with the classifier under diversity and
//!   cross-trigger losses. Non-patch, input-specific — the attack that
//!   defeats NC-style defenses in the paper's Table 3.
//! * [`MultiBadNet`] — several simultaneous all-to-one backdoors (APG-style,
//!   Wang et al.): a distinct trigger per target class implanted in one
//!   poisoned training run, with an optional full-image low-`L∞` blended
//!   trigger mode.
//!
//! All attacks implement [`Attack`] and produce a [`Victim`]: a trained
//! network plus ground truth (clean or backdoored-with-target) that the
//! evaluation harness scores detections against.
//!
//! Victims persist to disk as self-contained bundles ([`persist`]) —
//! model, trigger, ground truth, and dataset recipe in one checksummed
//! file — and the [`fixtures`] cache memoizes trained victims under
//! `target/fixtures/` so tests, benches, and examples retrain only when
//! their configuration changes. See `PERSISTENCE.md` for the format.
//!
//! # Example
//!
//! ```rust,no_run
//! use usb_attacks::{Attack, BadNet, train_clean_victim};
//! use usb_data::SyntheticSpec;
//! use usb_nn::models::{Architecture, ModelKind};
//! use usb_nn::train::TrainConfig;
//!
//! let data = SyntheticSpec::mnist().with_size(16).with_train_size(256).generate(1);
//! let arch = Architecture::new(ModelKind::BasicCnn, (1, 16, 16), 10).with_width(8);
//! let attack = BadNet::new(2, 0, 0.05);
//! let victim = attack.execute(&data, arch, TrainConfig::fast(), 1);
//! println!("clean acc {:.2}, asr {:.2}", victim.clean_accuracy, victim.asr());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod badnet;
pub mod fixtures;
mod iad;
mod latent;
mod multi;
pub mod persist;
mod trigger;
mod victim;

pub use badnet::BadNet;
pub use iad::{IadAttack, IadGenerator};
pub use latent::LatentBackdoor;
pub use multi::MultiBadNet;
pub use trigger::{Trigger, TriggerSpec};
pub use victim::{
    evaluate_asr_dynamic, evaluate_asr_static, train_clean_victim, Attack, BackdoorImplant,
    GroundTruth, InjectedTrigger, Victim,
};
