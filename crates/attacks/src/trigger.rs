//! Static triggers: a pattern image and a blending mask.

use rand::Rng;
use usb_tensor::Tensor;

/// Geometry of a static patch trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerSpec {
    /// Side length of the square patch in pixels.
    pub size: usize,
}

impl TriggerSpec {
    /// A square `size × size` patch (the paper's 2×2 / 3×3 / 20×20 / ...).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn patch(size: usize) -> Self {
        assert!(size > 0, "TriggerSpec: zero patch size");
        TriggerSpec { size }
    }
}

/// A concrete trigger: `pattern` `[C, H, W]` and `mask` `[H, W]` with
/// values in `[0, 1]`. Stamping computes `x·(1−m) + pattern·m` per channel —
/// the same parameterisation the defenses reverse-engineer.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    pattern: Tensor,
    mask: Tensor,
}

impl Trigger {
    /// Builds a trigger from explicit pattern and mask.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is not rank-3, `mask` is not rank-2, or their
    /// spatial dims disagree.
    pub fn new(pattern: Tensor, mask: Tensor) -> Self {
        assert_eq!(pattern.ndim(), 3, "Trigger: pattern must be [C,H,W]");
        assert_eq!(mask.ndim(), 2, "Trigger: mask must be [H,W]");
        assert_eq!(
            &pattern.shape()[1..],
            mask.shape(),
            "Trigger: pattern/mask spatial mismatch"
        );
        Trigger { pattern, mask }
    }

    /// A high-contrast checkerboard patch at a random interior position with
    /// a random per-channel phase — "triggers are generated in different
    /// positions and random colors" (paper §4.1). The checkerboard mimics
    /// the classic BadNet stamp and guarantees strong local contrast against
    /// any background; the interior inset keeps the whole patch inside every
    /// convolution's receptive field.
    ///
    /// # Panics
    ///
    /// Panics if the patch does not fit in `h × w`.
    pub fn random_patch(
        spec: TriggerSpec,
        channels: usize,
        h: usize,
        w: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let k = spec.size.min(h).min(w);
        assert!(k > 0 && k <= h && k <= w, "Trigger: patch does not fit");
        let inset = usize::from(h > k + 2 && w > k + 2);
        let y0 = rng.gen_range(inset..=h - k - inset);
        let x0 = rng.gen_range(inset..=w - k - inset);
        let mut pattern = Tensor::zeros(&[channels, h, w]);
        let mut mask = Tensor::zeros(&[h, w]);
        for c in 0..channels {
            let phase = usize::from(rng.gen_bool(0.5));
            for y in y0..y0 + k {
                for x in x0..x0 + k {
                    *pattern.at_mut(&[c, y, x]) = ((y + x + phase) % 2) as f32;
                }
            }
        }
        for y in y0..y0 + k {
            for x in x0..x0 + k {
                *mask.at_mut(&[y, x]) = 1.0;
            }
        }
        Trigger { pattern, mask }
    }

    /// A full-image blended trigger with a low `L∞` budget: a random
    /// pattern in `[0, 1]` alpha-blended into *every* pixel at constant
    /// strength `alpha`. The per-pixel perturbation is bounded by `alpha`
    /// (`|x·(1−α) + p·α − x| ≤ α`), so the stamp is visually faint — the
    /// "blended injection" end of the trigger spectrum, as opposed to the
    /// high-contrast local patch of [`Trigger::random_patch`].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)` or any dimension is zero.
    pub fn random_blended(
        channels: usize,
        h: usize,
        w: usize,
        alpha: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "Trigger: blend alpha must be in (0, 1)"
        );
        assert!(channels > 0 && h > 0 && w > 0, "Trigger: empty image");
        let mut pattern = Tensor::zeros(&[channels, h, w]);
        for v in pattern.data_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        let mask = Tensor::full(&[h, w], alpha);
        Trigger { pattern, mask }
    }

    /// The trigger pattern `[C, H, W]`.
    pub fn pattern(&self) -> &Tensor {
        &self.pattern
    }

    /// The blending mask `[H, W]`.
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// L1 norm of the mask — the size statistic every defense thresholds.
    pub fn mask_l1(&self) -> f64 {
        self.mask.l1_norm() as f64
    }

    /// Stamps the trigger onto one `[C, H, W]` image.
    ///
    /// # Panics
    ///
    /// Panics if the image shape does not match the trigger.
    pub fn stamp_image(&self, img: &Tensor) -> Tensor {
        assert_eq!(
            img.shape(),
            self.pattern.shape(),
            "Trigger: image shape mismatch"
        );
        let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
        let mut out = img.clone();
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let m = self.mask.at(&[y, x]);
                    if m != 0.0 {
                        let v = img.at(&[ch, y, x]) * (1.0 - m) + self.pattern.at(&[ch, y, x]) * m;
                        *out.at_mut(&[ch, y, x]) = v;
                    }
                }
            }
        }
        out
    }

    /// Stamps the trigger onto every image of a `[N, C, H, W]` batch.
    ///
    /// # Panics
    ///
    /// Panics if per-image shapes do not match the trigger.
    pub fn stamp_batch(&self, batch: &Tensor) -> Tensor {
        assert_eq!(batch.ndim(), 4, "Trigger: batch must be [N,C,H,W]");
        let n = batch.shape()[0];
        let stamped: Vec<Tensor> = (0..n)
            .map(|i| self.stamp_image(&batch.index_axis0(i)))
            .collect();
        Tensor::stack(&stamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_patch_has_expected_mask_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trigger::random_patch(TriggerSpec::patch(3), 3, 16, 16, &mut rng);
        assert_eq!(t.mask_l1(), 9.0);
        assert_eq!(t.pattern().shape(), &[3, 16, 16]);
    }

    #[test]
    fn stamp_changes_only_masked_pixels() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Trigger::random_patch(TriggerSpec::patch(2), 1, 8, 8, &mut rng);
        // Background 0.3 differs from both checkerboard extremes (0 and 1),
        // so every masked pixel must change.
        let img = Tensor::full(&[1, 8, 8], 0.3);
        let stamped = t.stamp_image(&img);
        let changed = stamped
            .data()
            .iter()
            .zip(img.data())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 4, "exactly the 2x2 patch must change");
    }

    #[test]
    fn stamp_is_idempotent_for_binary_mask() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Trigger::random_patch(TriggerSpec::patch(2), 1, 8, 8, &mut rng);
        let img = Tensor::full(&[1, 8, 8], 0.3);
        let once = t.stamp_image(&img);
        let twice = t.stamp_image(&once);
        assert_eq!(once.data(), twice.data());
    }

    #[test]
    fn stamp_batch_matches_per_image() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Trigger::random_patch(TriggerSpec::patch(2), 1, 8, 8, &mut rng);
        let batch = Tensor::from_fn(&[3, 1, 8, 8], |i| ((i % 9) as f32) / 9.0);
        let stamped = t.stamp_batch(&batch);
        for i in 0..3 {
            let single = t.stamp_image(&batch.index_axis0(i));
            assert_eq!(stamped.index_axis0(i).data(), single.data());
        }
    }

    #[test]
    fn positions_vary_across_rng_draws() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Trigger::random_patch(TriggerSpec::patch(2), 1, 16, 16, &mut rng);
        let b = Trigger::random_patch(TriggerSpec::patch(2), 1, 16, 16, &mut rng);
        assert_ne!(a.mask().data(), b.mask().data(), "positions should differ");
    }

    #[test]
    fn blended_trigger_respects_the_linf_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let alpha = 0.15f32;
        let t = Trigger::random_blended(3, 12, 12, alpha, &mut rng);
        assert_eq!(t.pattern().shape(), &[3, 12, 12]);
        assert!((t.mask_l1() - f64::from(alpha) * 144.0).abs() < 1e-4);
        // Stamping moves every pixel by at most alpha, regardless of the
        // background value.
        for bg in [0.0f32, 0.4, 1.0] {
            let img = Tensor::full(&[3, 12, 12], bg);
            let stamped = t.stamp_image(&img);
            let max_dev = stamped
                .data()
                .iter()
                .zip(img.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_dev <= alpha + 1e-6,
                "stamp exceeded the L-inf budget: {max_dev}"
            );
        }
    }

    #[test]
    fn blended_trigger_is_deterministic_per_seed() {
        let a = Trigger::random_blended(1, 8, 8, 0.2, &mut StdRng::seed_from_u64(6));
        let b = Trigger::random_blended(1, 8, 8, 0.2, &mut StdRng::seed_from_u64(6));
        let c = Trigger::random_blended(1, 8, 8, 0.2, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_ne!(a.pattern().data(), c.pattern().data());
    }

    #[test]
    fn partial_mask_blends() {
        let pattern = Tensor::ones(&[1, 2, 2]);
        let mut mask = Tensor::zeros(&[2, 2]);
        *mask.at_mut(&[0, 0]) = 0.5;
        let t = Trigger::new(pattern, mask);
        let img = Tensor::zeros(&[1, 2, 2]);
        let s = t.stamp_image(&img);
        assert_eq!(s.at(&[0, 0, 0]), 0.5);
        assert_eq!(s.at(&[0, 1, 1]), 0.0);
    }
}
