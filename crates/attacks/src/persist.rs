//! Victim bundles: one self-contained file per trained victim — model,
//! ground truth (target / trigger / measured ASR), the dataset recipe it
//! was trained on, and the training provenance (seed + config hash).
//!
//! A bundle is everything an inspection needs: `usb-repro inspect <path>`
//! regenerates clean data from the stored [`SyntheticSpec`] + data seed
//! and runs a defense on the loaded model without retraining anything.
//! Because the model payload is bit-exact (see [`usb_nn::serde`]), the
//! verdict on a loaded victim is bit-identical to the verdict on the
//! in-memory one.
//!
//! # Bundle layout (format version 3, little-endian)
//!
//! ```text
//! 4   magic b"USBV"
//! 2   u16 format version (currently 3)
//! 8   u64 training seed
//! 8   u64 config hash (caller-defined fingerprint, see usb_attacks::fixtures)
//!     dataset spec: name str, u32 channels/height/width/classes/train/test,
//!                   f32 noise, f32 shared_weight, u32 jitter
//! 8   u64 dataset generation seed
//!     network blob (usb_nn::serde layout)
//! 8   f64 clean accuracy
//! 1   u8 ground-truth tag (0 clean, 1 backdoored, 2 multi-backdoored)
//!   if backdoored (tag 1):
//!     4   u32 target class
//!     8   f64 measured ASR
//!         attack name str ("badnet" | "latent" | "iad" | "multi-badnet")
//!     1   u8 trigger tag (0 static, 1 dynamic)
//!       static:  pattern tensor record + mask tensor record
//!       dynamic: u32 channels, u32 gen width, f32 epsilon,
//!                u32 state count, per tensor: kind str + tensor record
//!   if multi-backdoored (tag 2):
//!         attack name str ("multi-badnet")
//!     4   u32 implant count (≥ 2)
//!       per implant, in strictly ascending target order:
//!         4   u32 target class
//!         8   f64 measured ASR
//!         1   u8 trigger tag + payload (as above)
//! ```
//!
//! Version 2 added ground-truth tag 2; version 3 carries the USBN-v2
//! network blob, whose header gained a weight-dtype byte and whose GEMM
//! weights may be stored as f16 or Q8 records ([`write_victim_dtype`]).
//! Readers are exact (a v2 reader rejects every v3 bundle and vice versa),
//! so the embedded-format change bumped the bundle version per the
//! PERSISTENCE.md policy. Stale fixture files simply miss the cache and
//! retrain.
//!
//! The model payload of an f32 bundle remains bit-exact. A low-precision
//! bundle is smaller on disk and resident (the loaded network keeps the
//! quantized payload and dequantizes on the fly) at the cost of bounded
//! rounding error in the weights; the trigger/ground-truth records always
//! stay f32.
//!
//! Strings and tensor records use the [`usb_tensor::io`] encodings; every
//! tensor carries its own CRC-32, so payload corruption anywhere in the
//! bundle surfaces as a clean [`IoError`].

use crate::iad::IadGenerator;
use crate::trigger::Trigger;
use crate::victim::{BackdoorImplant, GroundTruth, InjectedTrigger, Victim};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use usb_data::SyntheticSpec;
use usb_nn::layer::Layer;
use usb_nn::serde::{read_network, write_network, write_network_dtype};
use usb_tensor::io::{
    expect_magic, expect_version, read_f32, read_f64, read_str, read_tensor, read_u32, read_u64,
    write_f32, write_f64, write_str, write_tensor, write_u16, write_u32, write_u64, IoError,
};
use usb_tensor::Dtype;

/// Magic bytes opening a victim bundle.
pub const VICTIM_MAGIC: [u8; 4] = *b"USBV";

/// Current victim-bundle format version.
pub const VICTIM_VERSION: u16 = 3;

/// A victim plus the provenance needed to reproduce or re-inspect it.
pub struct VictimBundle {
    /// The trained victim (model + ground truth).
    pub victim: Victim,
    /// Seed the training run was derived from.
    pub train_seed: u64,
    /// Caller-defined fingerprint of the full training configuration
    /// (attack, architecture, train config); fixture caching uses it to
    /// detect stale files. See `usb_attacks::fixtures::fixture_hash`.
    pub config_hash: u64,
    /// Recipe of the dataset the victim was trained on.
    pub data_spec: SyntheticSpec,
    /// Seed the dataset was generated from — together with `data_spec`
    /// this regenerates clean inspection data without shipping images.
    pub data_seed: u64,
}

fn write_spec(w: &mut impl Write, spec: &SyntheticSpec) -> Result<(), IoError> {
    write_str(w, &spec.name)?;
    write_u32(w, spec.channels as u32)?;
    write_u32(w, spec.height as u32)?;
    write_u32(w, spec.width as u32)?;
    write_u32(w, spec.num_classes as u32)?;
    write_u32(w, spec.train_size as u32)?;
    write_u32(w, spec.test_size as u32)?;
    write_f32(w, spec.noise)?;
    write_f32(w, spec.shared_weight)?;
    write_u32(w, spec.jitter as u32)
}

fn read_spec(r: &mut impl Read) -> Result<SyntheticSpec, IoError> {
    Ok(SyntheticSpec {
        name: read_str(r)?,
        channels: read_u32(r)? as usize,
        height: read_u32(r)? as usize,
        width: read_u32(r)? as usize,
        num_classes: read_u32(r)? as usize,
        train_size: read_u32(r)? as usize,
        test_size: read_u32(r)? as usize,
        noise: read_f32(r)?,
        shared_weight: read_f32(r)?,
        jitter: read_u32(r)? as usize,
    })
}

fn attack_static_name(name: &str) -> Result<&'static str, IoError> {
    Ok(match name {
        "badnet" => "badnet",
        "latent" => "latent",
        "iad" => "iad",
        "multi-badnet" => "multi-badnet",
        other => {
            return Err(IoError::format(format!(
                "unknown attack family {other:?} in victim bundle"
            )))
        }
    })
}

fn write_generator(w: &mut impl Write, gen: &mut IadGenerator) -> Result<(), IoError> {
    write_u32(w, gen.channels() as u32)?;
    write_u32(w, gen.width() as u32)?;
    write_f32(w, gen.epsilon())?;
    let mut count: u32 = 0;
    gen.net_mut().visit_state(&mut |_, _| count += 1);
    write_u32(w, count)?;
    let mut result = Ok(());
    gen.net_mut().visit_state(&mut |kind, tensor| {
        if result.is_err() {
            return;
        }
        result = write_str(w, kind).and_then(|()| write_tensor(w, tensor));
    });
    result
}

fn read_generator(r: &mut impl Read) -> Result<IadGenerator, IoError> {
    let channels = read_u32(r)? as usize;
    let width = read_u32(r)? as usize;
    let epsilon = read_f32(r)?;
    if channels == 0 || width == 0 || !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(IoError::format(format!(
            "IAD generator header is implausible: channels {channels}, width {width}, epsilon {epsilon}"
        )));
    }
    let count = read_u32(r)? as usize;
    let mut gen = IadGenerator::new(channels, width, epsilon, &mut StdRng::seed_from_u64(0));
    let mut expected: u32 = 0;
    gen.net_mut().visit_state(&mut |_, _| expected += 1);
    if count != expected as usize {
        return Err(IoError::format(format!(
            "IAD generator has {count} state tensors, topology expects {expected}"
        )));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = read_str(r)?;
        let tensor = read_tensor(r)?;
        records.push((kind, tensor));
    }
    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    gen.net_mut().visit_state(&mut |kind, tensor| {
        if mismatch.is_some() {
            return;
        }
        let (stored_kind, stored) = &records[idx];
        if stored_kind != kind || stored.shape() != tensor.shape() {
            mismatch = Some(format!(
                "IAD generator state tensor {idx}: stored ({stored_kind}, {:?}) vs topology ({kind}, {:?})",
                stored.shape(),
                tensor.shape()
            ));
        } else {
            tensor.data_mut().copy_from_slice(stored.data());
        }
        idx += 1;
    });
    match mismatch {
        Some(msg) => Err(IoError::format(msg)),
        None => Ok(gen),
    }
}

fn write_trigger(w: &mut impl Write, trigger: &mut InjectedTrigger) -> Result<(), IoError> {
    match trigger {
        InjectedTrigger::Static(t) => {
            w.write_all(&[0u8])?;
            write_tensor(w, t.pattern())?;
            write_tensor(w, t.mask())
        }
        InjectedTrigger::Dynamic(g) => {
            w.write_all(&[1u8])?;
            write_generator(w, g)
        }
    }
}

fn read_trigger(r: &mut impl Read) -> Result<InjectedTrigger, IoError> {
    let mut ttag = [0u8; 1];
    r.read_exact(&mut ttag)?;
    match ttag[0] {
        0 => {
            let pattern = read_tensor(r)?;
            let mask = read_tensor(r)?;
            if pattern.ndim() != 3 || mask.ndim() != 2 || pattern.shape()[1..] != *mask.shape() {
                return Err(IoError::format(format!(
                    "trigger records are inconsistent: pattern {:?}, mask {:?}",
                    pattern.shape(),
                    mask.shape()
                )));
            }
            Ok(InjectedTrigger::Static(Trigger::new(pattern, mask)))
        }
        1 => Ok(InjectedTrigger::Dynamic(read_generator(r)?)),
        other => Err(IoError::format(format!("unknown trigger tag {other}"))),
    }
}

/// Serializes a victim bundle, preserving the model's current weight
/// storage (an f32 model writes f32 records, a quantized model writes its
/// payload verbatim).
///
/// Takes `&mut` because network state visitation shares the mutable
/// parameter plumbing; nothing is modified.
pub fn write_victim(w: &mut impl Write, bundle: &mut VictimBundle) -> Result<(), IoError> {
    write_victim_inner(w, bundle, None)
}

/// Serializes a victim bundle with the model's GEMM weights stored as
/// `dtype`, quantizing on the fly (the in-memory model is unchanged). See
/// [`usb_nn::serde::write_network_dtype`] for the re-quantization rules.
pub fn write_victim_dtype(
    w: &mut impl Write,
    bundle: &mut VictimBundle,
    dtype: Dtype,
) -> Result<(), IoError> {
    write_victim_inner(w, bundle, Some(dtype))
}

fn write_victim_inner(
    w: &mut impl Write,
    bundle: &mut VictimBundle,
    dtype: Option<Dtype>,
) -> Result<(), IoError> {
    w.write_all(&VICTIM_MAGIC)?;
    write_u16(w, VICTIM_VERSION)?;
    write_u64(w, bundle.train_seed)?;
    write_u64(w, bundle.config_hash)?;
    write_spec(w, &bundle.data_spec)?;
    write_u64(w, bundle.data_seed)?;
    match dtype {
        None => write_network(w, &mut bundle.victim.model)?,
        Some(d) => write_network_dtype(w, &mut bundle.victim.model, d)?,
    }
    write_f64(w, bundle.victim.clean_accuracy)?;
    match &mut bundle.victim.ground_truth {
        GroundTruth::Clean => w.write_all(&[0u8]).map_err(IoError::from),
        GroundTruth::Backdoored {
            target,
            asr,
            trigger,
            attack,
        } => {
            w.write_all(&[1u8])?;
            write_u32(w, *target as u32)?;
            write_f64(w, *asr)?;
            write_str(w, attack)?;
            write_trigger(w, trigger)
        }
        GroundTruth::MultiBackdoored { implants, attack } => {
            w.write_all(&[2u8])?;
            write_str(w, attack)?;
            write_u32(w, implants.len() as u32)?;
            for implant in implants {
                write_u32(w, implant.target as u32)?;
                write_f64(w, implant.asr)?;
                write_trigger(w, &mut implant.trigger)?;
            }
            Ok(())
        }
    }
}

/// Reads a victim bundle written by [`write_victim`].
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic/version, corruption
/// (checksums), truncation, or any record inconsistent with the topology
/// it describes. Never panics on malformed input.
pub fn read_victim(r: &mut impl Read) -> Result<VictimBundle, IoError> {
    expect_magic(r, &VICTIM_MAGIC, "victim bundle")?;
    expect_version(r, VICTIM_VERSION, "victim bundle")?;
    let train_seed = read_u64(r)?;
    let config_hash = read_u64(r)?;
    let data_spec = read_spec(r)?;
    let data_seed = read_u64(r)?;
    let model = read_network(r)?;
    let clean_accuracy = read_f64(r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let ground_truth = match tag[0] {
        0 => GroundTruth::Clean,
        1 => {
            let target = read_u32(r)? as usize;
            let asr = read_f64(r)?;
            let attack = attack_static_name(&read_str(r)?)?;
            let trigger = read_trigger(r)?;
            GroundTruth::Backdoored {
                target,
                asr,
                trigger,
                attack,
            }
        }
        2 => {
            let attack = attack_static_name(&read_str(r)?)?;
            let count = read_u32(r)? as usize;
            if !(2..=4096).contains(&count) {
                return Err(IoError::format(format!(
                    "multi-backdoor implant count {count} is implausible (want 2..=4096)"
                )));
            }
            let mut implants = Vec::with_capacity(count);
            for _ in 0..count {
                let target = read_u32(r)? as usize;
                let asr = read_f64(r)?;
                let trigger = read_trigger(r)?;
                implants.push(BackdoorImplant {
                    target,
                    asr,
                    trigger,
                });
            }
            if implants.windows(2).any(|w| w[0].target >= w[1].target) {
                return Err(IoError::format(
                    "multi-backdoor implants are not in strictly ascending target order"
                        .to_string(),
                ));
            }
            GroundTruth::MultiBackdoored { implants, attack }
        }
        other => {
            return Err(IoError::format(format!("unknown ground-truth tag {other}")));
        }
    };
    Ok(VictimBundle {
        victim: Victim {
            model,
            clean_accuracy,
            ground_truth,
        },
        train_seed,
        config_hash,
        data_spec,
        data_seed,
    })
}

/// Saves a bundle to `path` (creating parent directories), writing through
/// a temporary sibling file and renaming so concurrent readers never see a
/// half-written bundle.
pub fn save_victim(path: &Path, bundle: &mut VictimBundle) -> Result<(), IoError> {
    save_victim_inner(path, bundle, None)
}

/// [`save_victim`] with the model's GEMM weights stored as `dtype`
/// (`usb_repro save --dtype` lands here).
pub fn save_victim_dtype(
    path: &Path,
    bundle: &mut VictimBundle,
    dtype: Dtype,
) -> Result<(), IoError> {
    save_victim_inner(path, bundle, Some(dtype))
}

fn save_victim_inner(
    path: &Path,
    bundle: &mut VictimBundle,
    dtype: Option<Dtype>,
) -> Result<(), IoError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    // Unique per process *and* per call: parallel test threads can miss the
    // same fixture simultaneously, and a pid-only name would let their
    // writes interleave in one temp file before the rename.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        write_victim_inner(&mut f, bundle, dtype)?;
        f.sync_all()?;
        fs::rename(&tmp, path).map_err(IoError::from)
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// Reads the weight-storage dtype out of a serialized bundle without
/// decoding the model: the USBV header fields are parsed up to the
/// embedded network blob, then its header dtype byte is returned. The
/// cheap sniff `usb_repro inspect`/`submit` use for the verdict line.
pub fn peek_weight_dtype(bytes: &[u8]) -> Result<Dtype, IoError> {
    let mut r = bytes;
    expect_magic(&mut r, &VICTIM_MAGIC, "victim bundle")?;
    expect_version(&mut r, VICTIM_VERSION, "victim bundle")?;
    let _train_seed = read_u64(&mut r)?;
    let _config_hash = read_u64(&mut r)?;
    let _spec = read_spec(&mut r)?;
    let _data_seed = read_u64(&mut r)?;
    usb_nn::serde::peek_weight_dtype(&mut r)
}

/// Loads a bundle from `path`.
pub fn load_victim(path: &Path) -> Result<VictimBundle, IoError> {
    let mut f = fs::File::open(path)?;
    read_victim(&mut f)
}

/// Decodes a bundle from an in-memory byte slice (the daemon's socket
/// ingest path: the wire framing delivers the bundle as one payload).
///
/// Trailing bytes after the bundle are rejected — a network payload must
/// be *exactly* one bundle, or the submission was corrupted in a way the
/// per-record checksums cannot see.
///
/// # Errors
///
/// Same contract as [`read_victim`], plus [`IoError::Format`] on trailing
/// garbage. Never panics on malformed input.
pub fn read_victim_bytes(bytes: &[u8]) -> Result<VictimBundle, IoError> {
    let mut cursor = bytes;
    let bundle = read_victim(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(IoError::format(format!(
            "victim bundle payload has {} trailing bytes",
            cursor.len()
        )));
    }
    Ok(bundle)
}

/// Content fingerprint of a serialized bundle (FNV-1a over the raw bytes).
///
/// The serve-layer model cache keys resident victims by this value:
/// bit-identical submissions share one resident model, and any byte
/// difference — different weights, recipe, or provenance — yields a new
/// cache entry.
pub fn bundle_fingerprint(bytes: &[u8]) -> u64 {
    usb_tensor::io::fnv1a64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::badnet::BadNet;
    use crate::victim::{train_clean_victim, Attack};
    use usb_nn::layer::Mode;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;
    use usb_tensor::Tensor;

    fn tiny_spec() -> SyntheticSpec {
        SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(60)
            .with_test_size(20)
            .with_classes(4)
    }

    fn roundtrip(bundle: &mut VictimBundle) -> VictimBundle {
        let mut buf = Vec::new();
        write_victim(&mut buf, bundle).unwrap();
        read_victim(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn clean_victim_bundle_roundtrips_bit_exactly() {
        let spec = tiny_spec();
        let data = spec.generate(3);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 7);
        let mut bundle = VictimBundle {
            victim,
            train_seed: 7,
            config_hash: 0xABCD,
            data_spec: spec,
            data_seed: 3,
        };
        let mut back = roundtrip(&mut bundle);
        assert_eq!(back.train_seed, 7);
        assert_eq!(back.config_hash, 0xABCD);
        assert_eq!(back.data_spec, bundle.data_spec);
        assert_eq!(back.data_seed, 3);
        assert_eq!(back.victim.clean_accuracy, bundle.victim.clean_accuracy);
        assert!(!back.victim.is_backdoored());
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.11).sin());
        let ya = bundle.victim.model.forward(&x, Mode::Eval);
        let yb = back.victim.model.forward(&x, Mode::Eval);
        assert_eq!(ya.data(), yb.data(), "loaded forward must be bit-identical");
    }

    #[test]
    fn badnet_bundle_preserves_trigger_and_asr() {
        let spec = tiny_spec();
        let data = spec.generate(4);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = BadNet::new(2, 1, 0.2).execute(&data, arch, TrainConfig::fast(), 8);
        let asr = victim.asr();
        let mut bundle = VictimBundle {
            victim,
            train_seed: 8,
            config_hash: 1,
            data_spec: spec,
            data_seed: 4,
        };
        let back = roundtrip(&mut bundle);
        assert_eq!(back.victim.target(), Some(1));
        assert_eq!(back.victim.asr(), asr);
        let (a, b) = match (&bundle.victim.ground_truth, &back.victim.ground_truth) {
            (
                GroundTruth::Backdoored {
                    trigger: InjectedTrigger::Static(a),
                    attack: na,
                    ..
                },
                GroundTruth::Backdoored {
                    trigger: InjectedTrigger::Static(b),
                    attack: nb,
                    ..
                },
            ) => {
                assert_eq!(na, nb);
                (a.clone(), b.clone())
            }
            _ => panic!("expected static triggers"),
        };
        assert_eq!(a.pattern().data(), b.pattern().data());
        assert_eq!(a.mask().data(), b.mask().data());
    }

    #[test]
    fn multi_backdoor_bundle_roundtrips_every_implant() {
        let spec = tiny_spec();
        let data = spec.generate(9);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = crate::multi::MultiBadNet::new(2, vec![0, 3], 0.15).execute(
            &data,
            arch,
            TrainConfig::fast(),
            12,
        );
        let asr = victim.asr();
        let mut bundle = VictimBundle {
            victim,
            train_seed: 12,
            config_hash: 4,
            data_spec: spec,
            data_seed: 9,
        };
        let mut back = roundtrip(&mut bundle);
        assert_eq!(back.victim.targets(), vec![0, 3]);
        assert_eq!(back.victim.target(), None);
        assert_eq!(back.victim.asr(), asr);
        let (ours, theirs) = match (&bundle.victim.ground_truth, &back.victim.ground_truth) {
            (
                GroundTruth::MultiBackdoored {
                    implants: a,
                    attack: na,
                },
                GroundTruth::MultiBackdoored {
                    implants: b,
                    attack: nb,
                },
            ) => {
                assert_eq!(na, nb);
                (a, b)
            }
            _ => panic!("expected multi-backdoored ground truth on both sides"),
        };
        for (x, y) in ours.iter().zip(theirs) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.asr, y.asr);
            let (InjectedTrigger::Static(tx), InjectedTrigger::Static(ty)) =
                (&x.trigger, &y.trigger)
            else {
                panic!("expected static triggers");
            };
            assert_eq!(tx.pattern().data(), ty.pattern().data());
            assert_eq!(tx.mask().data(), ty.mask().data());
        }
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.19).sin());
        let ya = bundle.victim.model.forward(&x, Mode::Eval);
        let yb = back.victim.model.forward(&x, Mode::Eval);
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn multi_backdoor_bundle_corruption_is_a_clean_error() {
        let spec = tiny_spec();
        let data = spec.generate(10);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = crate::multi::MultiBadNet::new(2, vec![1, 2], 0.15).execute(
            &data,
            arch,
            TrainConfig::fast(),
            13,
        );
        let mut bundle = VictimBundle {
            victim,
            train_seed: 13,
            config_hash: 5,
            data_spec: spec,
            data_seed: 10,
        };
        let mut buf = Vec::new();
        write_victim(&mut buf, &mut bundle).unwrap();
        for pos in (0..buf.len()).step_by(buf.len() / 23) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x55;
            let _ = read_victim(&mut bad.as_slice()); // must not panic
        }
        for len in (0..buf.len()).step_by(buf.len() / 17) {
            match read_victim(&mut &buf[..len]) {
                Err(IoError::Format(_)) => {}
                Err(e) => panic!("unexpected error kind at {len}: {e}"),
                Ok(_) => panic!("truncated bundle of {len} bytes decoded"),
            }
        }
    }

    #[test]
    fn blended_trigger_bundle_roundtrips_fractional_mask() {
        let spec = tiny_spec();
        let data = spec.generate(11);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = crate::multi::MultiBadNet::new(2, vec![2], 0.2)
            .with_blend(0.15)
            .execute(&data, arch, TrainConfig::fast(), 14);
        let mut bundle = VictimBundle {
            victim,
            train_seed: 14,
            config_hash: 6,
            data_spec: spec,
            data_seed: 11,
        };
        let back = roundtrip(&mut bundle);
        // A single-target blended victim persists through the classic tag.
        assert_eq!(back.victim.target(), Some(2));
        let GroundTruth::Backdoored {
            trigger: InjectedTrigger::Static(t),
            attack,
            ..
        } = &back.victim.ground_truth
        else {
            panic!("expected a static single-target ground truth");
        };
        assert_eq!(*attack, "multi-badnet");
        assert_eq!(t.mask().data(), vec![0.15f32; 144], "fractional mask");
    }

    #[test]
    fn quantized_bundle_is_smaller_and_loads_quantized() {
        let spec = tiny_spec();
        let data = spec.generate(21);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = BadNet::new(2, 1, 0.2).execute(&data, arch, TrainConfig::fast(), 22);
        let mut bundle = VictimBundle {
            victim,
            train_seed: 22,
            config_hash: 9,
            data_spec: spec,
            data_seed: 21,
        };
        let mut f32_buf = Vec::new();
        write_victim(&mut f32_buf, &mut bundle).unwrap();
        assert_eq!(peek_weight_dtype(&f32_buf).unwrap(), Dtype::F32);

        for dtype in [Dtype::F16, Dtype::Q8] {
            let mut buf = Vec::new();
            write_victim_dtype(&mut buf, &mut bundle, dtype).unwrap();
            assert!(
                buf.len() < f32_buf.len(),
                "{dtype} bundle {} not smaller than f32 {}",
                buf.len(),
                f32_buf.len()
            );
            assert_eq!(peek_weight_dtype(&buf).unwrap(), dtype);
            let mut back = read_victim_bytes(&buf).unwrap();
            assert_eq!(back.victim.model.weight_dtype(), Some(dtype));
            assert_eq!(back.victim.target(), Some(1));
            let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.31).sin());
            let mut ws = usb_tensor::Workspace::new();
            assert!(back.victim.model.infer(&x, &mut ws).all_finite());
            // Re-serializing a loaded quantized bundle is byte-identical:
            // the payload survives the roundtrip untouched.
            let mut again = Vec::new();
            write_victim(&mut again, &mut back).unwrap();
            assert_eq!(again, buf, "{dtype} bundle must re-serialize verbatim");
        }
    }

    #[test]
    fn dynamic_generator_roundtrips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = IadGenerator::new(3, 4, 0.4, &mut rng);
        let mut buf = Vec::new();
        write_generator(&mut buf, &mut gen).unwrap();
        let mut back = read_generator(&mut buf.as_slice()).unwrap();
        assert_eq!(back.epsilon(), 0.4);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i as f32) * 0.07).cos().abs());
        assert_eq!(gen.generate(&x).data(), back.generate(&x).data());
    }

    #[test]
    fn byte_slice_ingest_matches_reader_and_rejects_trailing_garbage() {
        let spec = tiny_spec();
        let data = spec.generate(5);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 6);
        let mut bundle = VictimBundle {
            victim,
            train_seed: 6,
            config_hash: 3,
            data_spec: spec,
            data_seed: 5,
        };
        let mut buf = Vec::new();
        write_victim(&mut buf, &mut bundle).unwrap();
        let back = read_victim_bytes(&buf).unwrap();
        assert_eq!(back.train_seed, 6);
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.13).cos());
        assert_eq!(
            bundle.victim.model.predict(&x),
            back.victim.model.predict(&x)
        );
        // Same bytes, same fingerprint; any byte change moves it.
        assert_eq!(bundle_fingerprint(&buf), bundle_fingerprint(&buf));
        let mut other = buf.clone();
        other[buf.len() / 2] ^= 1;
        assert_ne!(bundle_fingerprint(&buf), bundle_fingerprint(&other));
        // Exactly-one-bundle contract: trailing bytes are corruption.
        let mut padded = buf.clone();
        padded.push(0);
        match read_victim_bytes(&padded) {
            Err(IoError::Format(msg)) => assert!(msg.contains("trailing")),
            Err(e) => panic!("wrong error kind for trailing garbage: {e}"),
            Ok(_) => panic!("trailing garbage accepted"),
        }
    }

    #[test]
    fn corruption_anywhere_is_a_clean_error() {
        let spec = tiny_spec();
        let data = spec.generate(6);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 9);
        let mut bundle = VictimBundle {
            victim,
            train_seed: 9,
            config_hash: 2,
            data_spec: spec,
            data_seed: 6,
        };
        let mut buf = Vec::new();
        write_victim(&mut buf, &mut bundle).unwrap();
        // Flip one byte at a spread of positions; every read must fail
        // cleanly or — only where the byte is outside any checksummed or
        // structural region — still parse.
        for pos in (0..buf.len()).step_by(buf.len() / 23) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x55;
            let _ = read_victim(&mut bad.as_slice()); // must not panic
        }
        // Truncations must all fail cleanly.
        for len in (0..buf.len()).step_by(buf.len() / 17) {
            match read_victim(&mut &buf[..len]) {
                Err(IoError::Format(_)) => {}
                Err(e) => panic!("unexpected error kind at {len}: {e}"),
                Ok(_) => panic!("truncated bundle of {len} bytes decoded"),
            }
        }
    }
}
