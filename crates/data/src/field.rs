//! Class prototypes as smooth random fields.
//!
//! A class prototype is a sum of gaussian bumps (random centre, width,
//! amplitude, per channel). A pool of *shared* bumps is mixed into
//! neighbouring classes so that class features overlap — the property that
//! makes clean-model reverse engineering hard (paper §4.2 and §A.6).

use crate::SyntheticSpec;
use rand::Rng;
use usb_tensor::Tensor;

/// One gaussian bump in image space.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bump {
    cy: f32,
    cx: f32,
    sigma: f32,
    amp: f32,
    channel: usize,
}

impl Bump {
    fn random(spec: &SyntheticSpec, rng: &mut impl Rng) -> Self {
        let margin = 0.1;
        Bump {
            cy: rng.gen_range(margin..1.0 - margin) * spec.height as f32,
            cx: rng.gen_range(margin..1.0 - margin) * spec.width as f32,
            sigma: rng.gen_range(0.08..0.25) * spec.height.max(spec.width) as f32,
            amp: rng.gen_range(0.5..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            channel: rng.gen_range(0..spec.channels),
        }
    }

    /// Adds this bump (shifted by `(dy, dx)`) onto `img`.
    fn splat(&self, img: &mut Tensor, dy: f32, dx: f32) {
        let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
        debug_assert!(self.channel < c);
        let inv = 1.0 / (2.0 * self.sigma * self.sigma);
        let data = img.data_mut();
        let base = self.channel * h * w;
        for y in 0..h {
            let ddy = y as f32 - (self.cy + dy);
            for x in 0..w {
                let ddx = x as f32 - (self.cx + dx);
                let v = self.amp * (-(ddy * ddy + ddx * ddx) * inv).exp();
                data[base + y * w + x] += v;
            }
        }
    }
}

/// The per-class feature bumps plus the shared pool.
pub struct ClassPrototypes {
    spec: SyntheticSpec,
    class_bumps: Vec<Vec<Bump>>,
    shared_bumps: Vec<Bump>,
    /// Which shared bumps each class uses (adjacent classes overlap).
    shared_assignment: Vec<Vec<usize>>,
}

impl ClassPrototypes {
    /// Builds prototypes for every class of `spec` from `rng`.
    pub fn new(spec: &SyntheticSpec, rng: &mut impl Rng) -> Self {
        let bumps_per_class = 5 + spec.channels;
        let shared_pool = spec.num_classes.max(4);
        let class_bumps = (0..spec.num_classes)
            .map(|_| {
                (0..bumps_per_class)
                    .map(|_| Bump::random(spec, rng))
                    .collect()
            })
            .collect();
        let shared_bumps: Vec<Bump> = (0..shared_pool).map(|_| Bump::random(spec, rng)).collect();
        // Class c shares bumps c and c+1 (mod pool) with its neighbours, so
        // adjacent classes literally share features.
        let shared_assignment = (0..spec.num_classes)
            .map(|c| vec![c % shared_pool, (c + 1) % shared_pool])
            .collect();
        ClassPrototypes {
            spec: spec.clone(),
            class_bumps,
            shared_bumps,
            shared_assignment,
        }
    }

    /// The noiseless prototype image of `class` (useful for visualisation).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn prototype(&self, class: usize) -> Tensor {
        self.render(class, 0.0, 0.0)
    }

    fn render(&self, class: usize, dy: f32, dx: f32) -> Tensor {
        assert!(
            class < self.spec.num_classes,
            "class {class} out of range ({} classes)",
            self.spec.num_classes
        );
        let shape = [self.spec.channels, self.spec.height, self.spec.width];
        let mut img = Tensor::zeros(&shape);
        for b in &self.class_bumps[class] {
            b.splat(&mut img, dy, dx);
        }
        let sw = self.spec.shared_weight;
        if sw > 0.0 {
            for &si in &self.shared_assignment[class] {
                let mut scaled = self.shared_bumps[si];
                scaled.amp *= sw / (1.0 - sw).max(0.2);
                scaled.splat(&mut img, dy, dx);
            }
        }
        // Squash into [0, 1] around a 0.5 baseline.
        img.map(|v| (0.5 + 0.35 * v).clamp(0.0, 1.0))
    }

    /// Draws one sample of `class`: prototype + translation jitter +
    /// pixel noise, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, rng: &mut impl Rng) -> Tensor {
        let j = self.spec.jitter as f32;
        let dy = rng.gen_range(-j..=j);
        let dx = rng.gen_range(-j..=j);
        let mut img = self.render(class, dy, dx);
        let noise = self.spec.noise;
        for v in img.data_mut() {
            *v = (*v + rng.gen_range(-noise..=noise)).clamp(0.0, 1.0);
        }
        img
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::cifar10().with_size(16)
    }

    #[test]
    fn prototypes_are_stable_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = ClassPrototypes::new(&spec(), &mut rng);
        let a = p.prototype(3);
        let b = p.prototype(3);
        assert_eq!(a.data(), b.data(), "prototype must be deterministic");
        assert!(a.min() >= 0.0 && a.max() <= 1.0);
    }

    #[test]
    fn different_classes_differ() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ClassPrototypes::new(&spec(), &mut rng);
        let a = p.prototype(0);
        let b = p.prototype(5);
        assert!(a.sub(&b).l2_norm() > 0.5, "prototypes too similar");
    }

    #[test]
    fn adjacent_classes_share_features() {
        // With shared bumps, class c and c+1 are closer on average than
        // class c and c+5 — the cat/dog effect.
        let mut rng = StdRng::seed_from_u64(2);
        let s = SyntheticSpec::gtsrb().with_size(16);
        let p = ClassPrototypes::new(&s, &mut rng);
        let mut near = 0.0f64;
        let mut far = 0.0f64;
        let mut count = 0;
        for c in 0..20 {
            near += p.prototype(c).sub(&p.prototype(c + 1)).l2_norm() as f64;
            far += p.prototype(c).sub(&p.prototype(c + 21)).l2_norm() as f64;
            count += 1;
        }
        // Not a strict per-pair property, only on average.
        assert!(
            near / count as f64 <= far / count as f64 * 1.3,
            "shared features missing: near={near} far={far}"
        );
    }

    #[test]
    fn samples_are_noisy_variants_of_prototype() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ClassPrototypes::new(&spec(), &mut rng);
        let proto = p.prototype(2);
        let sample = p.sample(2, &mut rng);
        let d_same = sample.sub(&proto).l2_norm();
        let d_other = sample.sub(&p.prototype(7)).l2_norm();
        assert!(d_same < d_other, "sample must stay near its class");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ClassPrototypes::new(&spec(), &mut rng);
        let _ = p.prototype(99);
    }
}
