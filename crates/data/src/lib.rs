//! # usb-data
//!
//! Synthetic image-classification datasets standing in for MNIST, CIFAR-10,
//! GTSRB, and the paper's 10-class ImageNet subset.
//!
//! ## Why synthetic data is a faithful substitute here
//!
//! Every claim in the USB paper is about the *relative geometry* of two
//! kinds of shortcut in a trained classifier: genuine class features versus
//! backdoor triggers implanted by poisoning. What the detection algorithms
//! consume is (a) a trained differentiable model and (b) a few hundred clean
//! samples. The generators below produce classes as smooth random fields
//! (low-frequency "class features") with *shared components between
//! neighbouring classes* — reproducing the paper's observation that e.g.
//! "cat" and "dog" share limb features, which is exactly what confuses
//! NC-style defenses on clean models.
//!
//! Each dataset family mirrors the shape of its real counterpart:
//!
//! | constructor | shape | classes | stands in for |
//! |---|---|---|---|
//! | [`SyntheticSpec::mnist`] | 1×28×28 | 10 | MNIST |
//! | [`SyntheticSpec::cifar10`] | 3×32×32 | 10 | CIFAR-10 |
//! | [`SyntheticSpec::gtsrb`] | 3×32×32 | 43 | GTSRB |
//! | [`SyntheticSpec::imagenet_subset`] | 3×64×64 | 10 | 10-class ImageNet subset (paper uses 224×224) |
//!
//! Experiments shrink `height`/`width`/`train_size` via the builder methods
//! to stay CPU-feasible; EXPERIMENTS.md records the scales used.
//!
//! # Example
//!
//! ```rust
//! use usb_data::SyntheticSpec;
//!
//! let data = SyntheticSpec::mnist()
//!     .with_size(12)
//!     .with_train_size(64)
//!     .with_test_size(32)
//!     .generate(7);
//! assert_eq!(data.train_images.shape(), &[64, 1, 12, 12]);
//! assert_eq!(data.test_labels.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use usb_tensor::Tensor;

pub use field::ClassPrototypes;

/// Full description of a synthetic dataset family.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Human-readable family name ("mnist", "cifar10", ...).
    pub name: String,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Std of the additive pixel noise.
    pub noise: f32,
    /// Weight of the inter-class shared component in `[0, 1)`; higher makes
    /// neighbouring classes harder to distinguish (GTSRB-like).
    pub shared_weight: f32,
    /// Maximum translation jitter in pixels.
    pub jitter: usize,
}

impl SyntheticSpec {
    fn family(
        name: &str,
        channels: usize,
        hw: usize,
        num_classes: usize,
        shared_weight: f32,
    ) -> Self {
        SyntheticSpec {
            name: name.to_owned(),
            channels,
            height: hw,
            width: hw,
            num_classes,
            train_size: 1024,
            test_size: 256,
            noise: 0.08,
            shared_weight,
            jitter: 2,
        }
    }

    /// MNIST-shaped family: 1×28×28, 10 well-separated classes.
    pub fn mnist() -> Self {
        Self::family("mnist", 1, 28, 10, 0.15)
    }

    /// CIFAR-10-shaped family: 3×32×32, 10 classes with noticeable shared
    /// features (the paper's cat/dog example).
    pub fn cifar10() -> Self {
        Self::family("cifar10", 3, 32, 10, 0.3)
    }

    /// GTSRB-shaped family: 3×32×32, 43 classes with heavy feature sharing
    /// (traffic signs look alike), the paper's hardest clean-model setting.
    pub fn gtsrb() -> Self {
        Self::family("gtsrb", 3, 32, 43, 0.45)
    }

    /// ImageNet-subset-shaped family: 3×64×64 (scaled from the paper's
    /// 224×224), 10 classes.
    pub fn imagenet_subset() -> Self {
        Self::family("imagenet", 3, 64, 10, 0.3)
    }

    /// Overrides both spatial dimensions (experiments shrink images to stay
    /// CPU-feasible).
    ///
    /// # Panics
    ///
    /// Panics if `hw < 8` (too small for the window statistics used by the
    /// defenses).
    #[must_use]
    pub fn with_size(mut self, hw: usize) -> Self {
        assert!(hw >= 8, "SyntheticSpec: images must be at least 8x8");
        self.height = hw;
        self.width = hw;
        self
    }

    /// Overrides the training-set size.
    #[must_use]
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Overrides the test-set size.
    #[must_use]
    pub fn with_test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Overrides the class count (e.g. a reduced GTSRB).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    #[must_use]
    pub fn with_classes(mut self, k: usize) -> Self {
        assert!(k >= 2, "SyntheticSpec: need at least two classes");
        self.num_classes = k;
        self
    }

    /// Overrides the pixel-noise level.
    #[must_use]
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// The class prototypes depend only on `(spec, seed)`, so two datasets
    /// generated with the same arguments are identical, while models trained
    /// on different seeds see genuinely different class features — mirroring
    /// the paper's "different random seeds for every trained model".
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_da7a);
        let protos = ClassPrototypes::new(self, &mut rng);
        let (train_images, train_labels) = self.sample_split(&protos, self.train_size, &mut rng);
        let (test_images, test_labels) = self.sample_split(&protos, self.test_size, &mut rng);
        Dataset {
            spec: self.clone(),
            prototypes: protos,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    fn sample_split(
        &self,
        protos: &ClassPrototypes,
        n: usize,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<usize>) {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Balanced classes via round-robin.
            let class = i % self.num_classes;
            images.push(protos.sample(class, rng));
            labels.push(class);
        }
        if images.is_empty() {
            return (
                Tensor::zeros(&[0, self.channels, self.height, self.width]),
                labels,
            );
        }
        (Tensor::stack(&images), labels)
    }
}

/// A generated dataset: train/test splits plus the generating prototypes.
pub struct Dataset {
    /// The spec this dataset was generated from.
    pub spec: SyntheticSpec,
    /// The class prototypes (kept so defenses can draw fresh clean data).
    pub prototypes: ClassPrototypes,
    /// Training images `[N, C, H, W]` in `[0, 1]`.
    pub train_images: Tensor,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Test images `[M, C, H, W]` in `[0, 1]`.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl Dataset {
    /// Draws `n` fresh samples from the generating distribution — the
    /// "small amount of clean data" every inference-time defense assumes
    /// (the paper uses 300 entries). Because samples are drawn fresh, `n`
    /// may exceed the stored train/test split sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a defense cannot run on an empty subset).
    pub fn clean_subset(&self, n: usize, rng: &mut impl Rng) -> (Tensor, Vec<usize>) {
        assert!(n > 0, "clean_subset: requested 0 samples");
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(0..self.spec.num_classes);
            images.push(self.prototypes.sample(class, rng));
            labels.push(class);
        }
        (Tensor::stack(&images), labels)
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// Bytes of payload this dataset keeps resident: the image tensors
    /// (which dominate) plus the label vectors. The prototype bump lists
    /// are a few hundred bytes and ignored. This is the dataset component
    /// of a serve-cache entry's footprint.
    pub fn resident_bytes(&self) -> usize {
        4 * (self.train_images.len() + self.test_images.len())
            + 8 * (self.train_labels.len() + self.test_labels.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_spec() {
        let d = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(20)
            .with_test_size(10)
            .generate(1);
        assert_eq!(d.train_images.shape(), &[20, 1, 12, 12]);
        assert_eq!(d.test_images.shape(), &[10, 1, 12, 12]);
        assert_eq!(d.train_labels.len(), 20);
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        let d = SyntheticSpec::cifar10()
            .with_size(16)
            .with_train_size(30)
            .with_test_size(5)
            .generate(2);
        assert!(d.train_images.min() >= 0.0);
        assert!(d.train_images.max() <= 1.0);
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let d = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(40)
            .with_test_size(0)
            .generate(3);
        let mut counts = [0usize; 10];
        for &l in &d.train_labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .generate(9);
        let b = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .generate(9);
        assert_eq!(a.train_images.data(), b.train_images.data());
        let c = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .generate(10);
        assert_ne!(a.train_images.data(), c.train_images.data());
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean intra-class distance must be well below mean inter-class
        // distance, otherwise no model could learn the task.
        let d = SyntheticSpec::cifar10()
            .with_size(16)
            .with_train_size(100)
            .with_test_size(0)
            .generate(4);
        let mut intra = 0.0f64;
        let mut intra_n = 0;
        let mut inter = 0.0f64;
        let mut inter_n = 0;
        for i in 0..40 {
            for j in (i + 1)..40 {
                let a = d.train_images.index_axis0(i);
                let b = d.train_images.index_axis0(j);
                let dist = a.sub(&b).l2_norm() as f64;
                if d.train_labels[i] == d.train_labels[j] {
                    intra += dist;
                    intra_n += 1;
                } else {
                    inter += dist;
                    inter_n += 1;
                }
            }
        }
        let intra = intra / intra_n as f64;
        let inter = inter / inter_n as f64;
        assert!(
            inter > 1.2 * intra,
            "classes not separable: intra={intra:.3} inter={inter:.3}"
        );
    }

    #[test]
    fn clean_subset_rejects_zero_samples() {
        let d = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .generate(5);
        let mut rng = StdRng::seed_from_u64(0);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.clean_subset(0, &mut rng)))
                .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("requested 0 samples"),
            "panic message should name the mistake: {msg}"
        );
    }

    #[test]
    fn clean_subset_draws_fresh_samples() {
        let d = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(8)
            .generate(5);
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = d.clean_subset(25, &mut rng);
        assert_eq!(x.shape(), &[25, 1, 12, 12]);
        assert_eq!(y.len(), 25);
        assert!(y.iter().all(|&l| l < 10));
    }

    #[test]
    fn gtsrb_has_43_classes() {
        let s = SyntheticSpec::gtsrb();
        assert_eq!(s.num_classes, 43);
        assert_eq!(s.channels, 3);
    }

    #[test]
    fn imagenet_subset_is_larger() {
        let s = SyntheticSpec::imagenet_subset();
        assert_eq!((s.height, s.width), (64, 64));
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn rejects_tiny_images() {
        let _ = SyntheticSpec::mnist().with_size(4);
    }
}
