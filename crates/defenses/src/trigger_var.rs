//! The tanh-parameterised `(mask, pattern)` optimisation variable shared by
//! Neural Cleanse, TABOR, and USB's Alg. 2.
//!
//! Optimising raw pixels would require projecting into `[0, 1]` after every
//! step; instead (following the Neural Cleanse reference implementation)
//! the mask and pattern are stored as unconstrained tensors `θ` with
//! `value = (tanh(θ) + 1) / 2`, which keeps every gradient step feasible.

use rand::Rng;
use usb_tensor::{init, kernels, Tensor, Workspace};

/// Clamp used when inverting the tanh parameterisation.
const ATANH_CLAMP: f32 = 0.999_99;

fn atanh(v: f32) -> f32 {
    let v = v.clamp(-ATANH_CLAMP, ATANH_CLAMP);
    0.5 * ((1.0 + v) / (1.0 - v)).ln()
}

/// A differentiable trigger variable: mask `[H, W]` and pattern `[C, H, W]`,
/// both squashed into `[0, 1]` through `tanh`.
#[derive(Debug, Clone)]
pub struct TriggerVar {
    theta_mask: Tensor,    // [H, W]
    theta_pattern: Tensor, // [C, H, W]
}

impl TriggerVar {
    /// Random initialisation (NC's "random starting point"): mask around
    /// small values, pattern around mid-grey.
    pub fn random(channels: usize, h: usize, w: usize, rng: &mut impl Rng) -> Self {
        // Mask starts small (tanh(-2) ≈ -0.96 → m ≈ 0.02) with jitter so the
        // optimisation can break symmetry; pattern starts near 0.5.
        let theta_mask = init::uniform(&[h, w], -2.2, -1.8, rng);
        let theta_pattern = init::uniform(&[channels, h, w], -0.5, 0.5, rng);
        TriggerVar {
            theta_mask,
            theta_pattern,
        }
    }

    /// Initialises from explicit `[0, 1]` mask and pattern values (USB seeds
    /// the optimisation from the targeted UAP instead of noise).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[H, W]` / `[C, H, W]` or spatial dims
    /// disagree.
    pub fn from_values(mask: &Tensor, pattern: &Tensor) -> Self {
        assert_eq!(mask.ndim(), 2, "TriggerVar: mask must be [H,W]");
        assert_eq!(pattern.ndim(), 3, "TriggerVar: pattern must be [C,H,W]");
        assert_eq!(
            &pattern.shape()[1..],
            mask.shape(),
            "TriggerVar: spatial mismatch"
        );
        TriggerVar {
            theta_mask: mask.map(|v| atanh(2.0 * v.clamp(0.0, 1.0) - 1.0)),
            theta_pattern: pattern.map(|v| atanh(2.0 * v.clamp(0.0, 1.0) - 1.0)),
        }
    }

    /// Current mask `[H, W]` in `[0, 1]`.
    pub fn mask(&self) -> Tensor {
        self.theta_mask.map(|t| (t.tanh() + 1.0) / 2.0)
    }

    /// Current pattern `[C, H, W]` in `[0, 1]`.
    pub fn pattern(&self) -> Tensor {
        self.theta_pattern.map(|t| (t.tanh() + 1.0) / 2.0)
    }

    /// Mutable access to the unconstrained parameters, in the fixed order
    /// `(θ_mask, θ_pattern)` expected by `TensorAdam`.
    pub fn params_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.theta_mask, &mut self.theta_pattern)
    }

    /// L1 norm of the mask (its values are non-negative, so this is the sum).
    pub fn mask_l1(&self) -> f64 {
        self.mask().sum() as f64
    }

    /// Applies the trigger to a batch: `x' = x·(1−m) + p·m`, with the mask
    /// broadcast across channels.
    ///
    /// # Panics
    ///
    /// Panics if the batch's `[C, H, W]` does not match the variable.
    pub fn apply(&self, batch: &Tensor) -> Tensor {
        assert_eq!(batch.ndim(), 4, "TriggerVar: batch must be [N,C,H,W]");
        let (n, c, h, w) = (
            batch.shape()[0],
            batch.shape()[1],
            batch.shape()[2],
            batch.shape()[3],
        );
        let m = self.mask();
        let p = self.pattern();
        assert_eq!(p.shape(), &[c, h, w], "TriggerVar: shape mismatch");
        let mut out = Tensor::zeros(batch.shape());
        let plane = h * w;
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let mv = m.data()[j];
                    out.data_mut()[base + j] =
                        batch.data()[base + j] * (1.0 - mv) + p.data()[ch * plane + j] * mv;
                }
            }
        }
        out
    }

    /// [`TriggerVar::apply`] with every buffer — the squashed mask and
    /// pattern and the stamped batch — drawn from `ws`. Same per-element
    /// expressions in the same order, so the result is bit-identical; the
    /// refine hot loop calls this once per Adam step.
    ///
    /// # Panics
    ///
    /// Panics if the batch's `[C, H, W]` does not match the variable.
    pub fn apply_ws(&self, batch: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(batch.ndim(), 4, "TriggerVar: batch must be [N,C,H,W]");
        let (n, c, h, w) = (
            batch.shape()[0],
            batch.shape()[1],
            batch.shape()[2],
            batch.shape()[3],
        );
        assert_eq!(
            self.theta_pattern.shape(),
            &[c, h, w],
            "TriggerVar: shape mismatch"
        );
        let plane = h * w;
        let mut m = ws.take_dirty(plane);
        let mut p = ws.take_dirty(c * plane);
        squash_into(&self.theta_mask, &mut m);
        squash_into(&self.theta_pattern, &mut p);
        let mut out = ws.take_dirty(batch.len());
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                let ob = &mut out[base..base + plane];
                let bb = &batch.data()[base..base + plane];
                let pb = &p[ch * plane..(ch + 1) * plane];
                if kernels::try_trigger_blend(ob, bb, &m, pb) {
                    continue;
                }
                for j in 0..plane {
                    let mv = m[j];
                    ob[j] = bb[j] * (1.0 - mv) + pb[j] * mv;
                }
            }
        }
        ws.put(m);
        ws.put(p);
        Tensor::from_vec(out, batch.shape())
    }

    /// [`TriggerVar::backward`] with all scratch (squashed mask/pattern,
    /// both gradient accumulators) drawn from `ws`, and the tanh chain rule
    /// applied in place on the accumulators instead of through a fresh
    /// `zip_map` — identical per-element expressions, so bit-identical
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the batch used in
    /// [`TriggerVar::apply_ws`].
    pub fn backward_ws(
        &self,
        batch: &Tensor,
        grad_out: &Tensor,
        ws: &mut Workspace,
    ) -> (Tensor, Tensor) {
        assert_eq!(batch.shape(), grad_out.shape(), "TriggerVar: grad shape");
        let (n, c, h, w) = (
            batch.shape()[0],
            batch.shape()[1],
            batch.shape()[2],
            batch.shape()[3],
        );
        let plane = h * w;
        let mut m = ws.take_dirty(plane);
        let mut p = ws.take_dirty(c * plane);
        squash_into(&self.theta_mask, &mut m);
        squash_into(&self.theta_pattern, &mut p);
        // Zeroed: the data term accumulates across the batch.
        let mut d_mask = ws.take(plane);
        let mut d_pattern = ws.take(c * plane);
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                let gb = &grad_out.data()[base..base + plane];
                let xb = &batch.data()[base..base + plane];
                let pb = &p[ch * plane..(ch + 1) * plane];
                let dpb = &mut d_pattern[ch * plane..(ch + 1) * plane];
                if kernels::try_trigger_backward(gb, xb, &m, pb, dpb, &mut d_mask) {
                    continue;
                }
                for j in 0..plane {
                    let g = gb[j];
                    if g == 0.0 {
                        continue;
                    }
                    dpb[j] += g * m[j];
                    d_mask[j] += g * (pb[j] - xb[j]);
                }
            }
        }
        chain_assign(&mut d_mask, &self.theta_mask);
        chain_assign(&mut d_pattern, &self.theta_pattern);
        ws.put(m);
        ws.put(p);
        (
            Tensor::from_vec(d_mask, &[h, w]),
            Tensor::from_vec(d_pattern, &[c, h, w]),
        )
    }

    /// [`TriggerVar::mask_l1_grad`] into a workspace-backed tensor;
    /// bit-identical values.
    pub fn mask_l1_grad_ws(&self, weight: f32, ws: &mut Workspace) -> Tensor {
        let mut g = ws.take_dirty(self.theta_mask.len());
        for (o, &t) in g.iter_mut().zip(self.theta_mask.data()) {
            let th = t.tanh();
            *o = weight * (1.0 - th * th) / 2.0;
        }
        Tensor::from_vec(g, self.theta_mask.shape())
    }

    /// Chains `dL/dx'` back to gradients on `(θ_mask, θ_pattern)`.
    ///
    /// Returns `(grad_theta_mask, grad_theta_pattern)` for the data term
    /// only; regulariser gradients are added separately (see
    /// [`TriggerVar::mask_l1_grad`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the batch used in [`TriggerVar::apply`].
    pub fn backward(&self, batch: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(batch.shape(), grad_out.shape(), "TriggerVar: grad shape");
        let (n, c, h, w) = (
            batch.shape()[0],
            batch.shape()[1],
            batch.shape()[2],
            batch.shape()[3],
        );
        let plane = h * w;
        let p = self.pattern();
        let m = self.mask();
        let mut d_mask = Tensor::zeros(&[h, w]);
        let mut d_pattern = Tensor::zeros(&[c, h, w]);
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let g = grad_out.data()[base + j];
                    if g == 0.0 {
                        continue;
                    }
                    let x = batch.data()[base + j];
                    d_pattern.data_mut()[ch * plane + j] += g * m.data()[j];
                    d_mask.data_mut()[j] += g * (p.data()[ch * plane + j] - x);
                }
            }
        }
        (self.chain_mask(&d_mask), self.chain_pattern(&d_pattern))
    }

    /// Gradient of `weight · ‖mask‖₁` with respect to `θ_mask` (to add onto
    /// the data-term gradient).
    pub fn mask_l1_grad(&self, weight: f32) -> Tensor {
        // d|m|/dθ = weight · dm/dθ since m ≥ 0.
        self.theta_mask.map(|t| {
            let th = t.tanh();
            weight * (1.0 - th * th) / 2.0
        })
    }

    /// Chains a gradient on the *mask values* through the tanh squash.
    pub fn chain_mask(&self, d_mask: &Tensor) -> Tensor {
        d_mask.zip_map(&self.theta_mask, |g, t| {
            let th = t.tanh();
            g * (1.0 - th * th) / 2.0
        })
    }

    /// Chains a gradient on the *pattern values* through the tanh squash.
    pub fn chain_pattern(&self, d_pattern: &Tensor) -> Tensor {
        d_pattern.zip_map(&self.theta_pattern, |g, t| {
            let th = t.tanh();
            g * (1.0 - th * th) / 2.0
        })
    }
}

/// Squashes unconstrained `θ` values into `[0, 1]`: the slice form of the
/// `(tanh(θ) + 1) / 2` map [`TriggerVar::mask`]/[`TriggerVar::pattern`] use.
fn squash_into(theta: &Tensor, out: &mut [f32]) {
    for (o, &t) in out.iter_mut().zip(theta.data()) {
        *o = (t.tanh() + 1.0) / 2.0;
    }
}

/// In-place tanh chain rule `g ← g · (1 − tanh²θ) / 2` — the slice form of
/// [`TriggerVar::chain_mask`]/[`TriggerVar::chain_pattern`].
fn chain_assign(grad: &mut [f32], theta: &Tensor) {
    for (g, &t) in grad.iter_mut().zip(theta.data()) {
        let th = t.tanh();
        *g = *g * (1.0 - th * th) / 2.0;
    }
}

/// Anisotropic total variation of a rank-2 or rank-3 tensor (summed over
/// leading planes) and its gradient.
///
/// `TV(t) = Σ |t[y+1,x] − t[y,x]| + |t[y,x+1] − t[y,x]|` — the smoothness
/// regulariser TABOR adds on masks and masked patterns.
///
/// # Panics
///
/// Panics if the tensor is not rank-2 or rank-3.
pub fn total_variation_with_grad(t: &Tensor) -> (f32, Tensor) {
    let (planes, h, w) = match t.ndim() {
        2 => (1, t.shape()[0], t.shape()[1]),
        3 => (t.shape()[0], t.shape()[1], t.shape()[2]),
        r => panic!("total_variation: expected rank-2/3, got rank {r}"),
    };
    let mut tv = 0.0f32;
    let mut grad = Tensor::zeros(t.shape());
    let d = t.data();
    let g = grad.data_mut();
    for pl in 0..planes {
        let base = pl * h * w;
        for y in 0..h {
            for x in 0..w {
                let idx = base + y * w + x;
                // f32::signum(0.0) is 1.0, so write the subgradient at zero
                // explicitly as 0.
                if y + 1 < h {
                    let diff = d[idx + w] - d[idx];
                    tv += diff.abs();
                    let s = if diff == 0.0 { 0.0 } else { diff.signum() };
                    g[idx + w] += s;
                    g[idx] -= s;
                }
                if x + 1 < w {
                    let diff = d[idx + 1] - d[idx];
                    tv += diff.abs();
                    let s = if diff == 0.0 { 0.0 } else { diff.signum() };
                    g[idx + 1] += s;
                    g[idx] -= s;
                }
            }
        }
    }
    (tv, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_init_is_small_mask_grey_pattern() {
        let mut rng = StdRng::seed_from_u64(0);
        let v = TriggerVar::random(3, 8, 8, &mut rng);
        assert!(v.mask().max() < 0.1, "mask should start near zero");
        let p = v.pattern();
        assert!(p.min() > 0.2 && p.max() < 0.8, "pattern should start grey");
    }

    #[test]
    fn from_values_roundtrips() {
        let mask = Tensor::from_fn(&[4, 4], |i| (i as f32) / 20.0);
        let pattern = Tensor::from_fn(&[2, 4, 4], |i| ((i % 7) as f32) / 7.0);
        let v = TriggerVar::from_values(&mask, &pattern);
        for (a, b) in v.mask().data().iter().zip(mask.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        for (a, b) in v.pattern().data().iter().zip(pattern.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_blends_mask_and_pattern() {
        let mask = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.0], &[2, 2]);
        let pattern = Tensor::ones(&[1, 2, 2]);
        let v = TriggerVar::from_values(&mask, &pattern);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let out = v.apply(&x);
        assert!((out.at(&[0, 0, 0, 0]) - 1.0).abs() < 1e-3);
        assert!(out.at(&[0, 0, 0, 1]).abs() < 1e-3);
        assert!((out.at(&[0, 0, 1, 0]) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = TriggerVar::random(2, 4, 4, &mut rng);
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i as f32) * 0.17).sin() * 0.5 + 0.5);
        // Loss = sum of x' elements.
        let out = v.apply(&x);
        let go = Tensor::ones(out.shape());
        let (d_tm, d_tp) = v.backward(&x, &go);
        let eps = 1e-3;
        for &flat in &[0usize, 5, 11, 15] {
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] += eps;
            let fp = v.apply(&x).sum();
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] -= 2.0 * eps;
            let fm = v.apply(&x).sum();
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] += eps;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - d_tm.data()[flat]).abs() < 1e-2,
                "mask grad {flat}: num={num} ana={}",
                d_tm.data()[flat]
            );
        }
        for &flat in &[0usize, 9, 20, 31] {
            let (_, tp) = v.params_mut();
            tp.data_mut()[flat] += eps;
            let fp = v.apply(&x).sum();
            let (_, tp) = v.params_mut();
            tp.data_mut()[flat] -= 2.0 * eps;
            let fm = v.apply(&x).sum();
            let (_, tp) = v.params_mut();
            tp.data_mut()[flat] += eps;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - d_tp.data()[flat]).abs() < 1e-2,
                "pattern grad {flat}: num={num} ana={}",
                d_tp.data()[flat]
            );
        }
    }

    #[test]
    fn ws_variants_are_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = TriggerVar::random(3, 5, 5, &mut rng);
        let x = Tensor::from_fn(&[2, 3, 5, 5], |i| ((i as f32) * 0.23).sin() * 0.5 + 0.5);
        let mut ws = Workspace::new();
        let stamped = v.apply(&x);
        let stamped_ws = v.apply_ws(&x, &mut ws);
        assert_eq!(stamped, stamped_ws);
        let go = Tensor::from_fn(
            x.shape(),
            |i| if i % 3 == 0 { 0.0 } else { (i as f32).cos() },
        );
        let (dm, dp) = v.backward(&x, &go);
        let (dm_ws, dp_ws) = v.backward_ws(&x, &go, &mut ws);
        for (a, b) in dm.data().iter().zip(dm_ws.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in dp.data().iter().zip(dp_ws.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let l1 = v.mask_l1_grad(0.05);
        let l1_ws = v.mask_l1_grad_ws(0.05, &mut ws);
        for (a, b) in l1.data().iter().zip(l1_ws.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Second round on the now-dirty workspace must still agree.
        let stamped_ws2 = v.apply_ws(&x, &mut ws);
        assert_eq!(stamped, stamped_ws2);
    }

    #[test]
    fn mask_l1_grad_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = TriggerVar::random(1, 3, 3, &mut rng);
        let g = v.mask_l1_grad(2.0);
        let eps = 1e-3;
        for flat in 0..9 {
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] += eps;
            let fp = 2.0 * v.mask_l1() as f32;
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] -= 2.0 * eps;
            let fm = 2.0 * v.mask_l1() as f32;
            let (tm, _) = v.params_mut();
            tm.data_mut()[flat] += eps;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - g.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn tv_of_constant_is_zero() {
        let (tv, grad) = total_variation_with_grad(&Tensor::full(&[5, 5], 0.7));
        assert_eq!(tv, 0.0);
        assert_eq!(grad.l1_norm(), 0.0);
    }

    #[test]
    fn tv_counts_edges() {
        // A single bright pixel in a dark 3x3 plane: 4 unit edges.
        let mut t = Tensor::zeros(&[3, 3]);
        *t.at_mut(&[1, 1]) = 1.0;
        let (tv, _) = total_variation_with_grad(&t);
        assert_eq!(tv, 4.0);
    }

    #[test]
    fn tv_gradient_descends() {
        // One gradient step must reduce TV of a noisy plane.
        let t = Tensor::from_fn(&[6, 6], |i| ((i * 31 % 17) as f32) / 17.0);
        let (tv0, g) = total_variation_with_grad(&t);
        let stepped = t.sub(&g.scale(0.01));
        let (tv1, _) = total_variation_with_grad(&stepped);
        assert!(tv1 < tv0, "tv {tv0} -> {tv1}");
    }
}
