//! Detection outcomes and the paper's scoring scheme.
//!
//! The paper reports two metric families per (dataset, attack, method) cell:
//!
//! * **Model Detection** — is the model called clean or backdoored?
//! * **Target Class Detection** — for backdoored models: `Correct` (single
//!   flagged class, the true target), `Correct Set` (several flagged
//!   classes including the true target), `Wrong` (flagged, but the true
//!   target is not among them).

use rand::rngs::StdRng;
use usb_nn::models::Network;
use usb_tensor::stats::{flag_small_outliers, median, DEFAULT_ANOMALY_THRESHOLD};
use usb_tensor::Tensor;

/// The reversed trigger and statistics for one candidate target class.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// The candidate class the trigger was reverse-engineered for.
    pub class: usize,
    /// L1 norm of the reversed mask — the outlier statistic.
    pub l1_norm: f64,
    /// Fraction of the defense's clean data that the reversed trigger sends
    /// to `class` (how well reverse engineering converged).
    pub attack_success: f64,
    /// Reversed pattern `[C, H, W]`.
    pub pattern: Tensor,
    /// Reversed mask `[H, W]`.
    pub mask: Tensor,
}

/// Everything a defense reports about one model.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Defense name ("nc", "tabor", "usb").
    pub method: &'static str,
    /// One entry per class, in class order.
    pub per_class: Vec<ClassResult>,
    /// Per-class anomaly indices (MAD-based).
    pub anomaly_indices: Vec<f64>,
    /// Per-class backdoor confidence: the MAD distance of the class's log
    /// L1 norm *below* the median (`0.0` for classes at or above it). A
    /// flagged class always scores above the anomaly threshold; the score
    /// grows monotonically as the class's norm separates further from the
    /// clean cluster, so multi-target victims get one comparable number
    /// per implanted class.
    pub confidences: Vec<f64>,
    /// Classes flagged as backdoor targets (ascending class order).
    pub flagged: Vec<usize>,
    /// Median of the per-class L1 norms.
    pub median_l1: f64,
}

impl DetectionOutcome {
    /// Builds the outcome from per-class results by running the MAD outlier
    /// test on the **log** L1 norms (small outliers only), keeping only
    /// flagged classes whose reversed trigger actually works
    /// (`attack_success ≥ min_success`) **and** whose norm is substantially
    /// below the median (`< RELATIVE_NORM_BAR × median`).
    ///
    /// The log transform makes the test robust to the multiplicative spread
    /// of reversed-trigger norms: clean classes differ from each other by
    /// *factors* (hard vs easy classes), which inflates a linear MAD until
    /// a genuinely tiny backdoor norm no longer clears the threshold. In
    /// log space that spread is additive and the backdoor outlier stands
    /// out. The relative bar then suppresses borderline flags on clean
    /// models, where the smallest class can sit near half the median by
    /// chance alone.
    ///
    /// # Panics
    ///
    /// Panics if `per_class` is empty.
    pub fn from_class_results(
        method: &'static str,
        per_class: Vec<ClassResult>,
        min_success: f64,
    ) -> Self {
        /// A flagged norm must be below this fraction of the median.
        const RELATIVE_NORM_BAR: f64 = 0.5;
        /// Floor avoiding `ln(0)` for fully degenerate (all-zero) masks.
        const LOG_FLOOR: f64 = 1e-6;
        assert!(!per_class.is_empty(), "DetectionOutcome: no classes");
        let norms: Vec<f64> = per_class.iter().map(|c| c.l1_norm).collect();
        let log_norms: Vec<f64> = norms.iter().map(|&n| n.max(LOG_FLOOR).ln()).collect();
        let report = flag_small_outliers(&log_norms, DEFAULT_ANOMALY_THRESHOLD);
        let median = median(&norms);
        let confidences: Vec<f64> = log_norms
            .iter()
            .zip(&report.indices)
            .map(|(&log_n, &idx)| if log_n < report.median { idx } else { 0.0 })
            .collect();
        let flagged: Vec<usize> = report
            .flagged
            .into_iter()
            .filter(|&c| per_class[c].attack_success >= min_success)
            .filter(|&c| per_class[c].l1_norm < RELATIVE_NORM_BAR * median)
            .collect();
        DetectionOutcome {
            method,
            per_class,
            anomaly_indices: report.indices,
            confidences,
            flagged,
            median_l1: median,
        }
    }

    /// `true` when at least one class is flagged.
    pub fn is_backdoored(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// The reversed-trigger L1 norm of the most anomalous flagged class, or
    /// the minimum across classes when nothing is flagged (what the paper's
    /// "Reversed Trigger L1 norm" column reports for backdoored models).
    pub fn reported_l1(&self) -> f64 {
        if let Some(&c) = self.flagged.first() {
            self.per_class[c].l1_norm
        } else {
            self.per_class
                .iter()
                .map(|c| c.l1_norm)
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// Target-class call for a backdoored model (paper Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClassCall {
    /// Exactly the true target class was flagged.
    Correct,
    /// Several classes flagged, including the true target.
    CorrectSet,
    /// Flagged classes do not include the true target.
    Wrong,
    /// Not applicable (clean ground truth or nothing flagged).
    NotApplicable,
}

/// A scored verdict for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelVerdict {
    /// Whether the defense called the model backdoored.
    pub called_backdoored: bool,
    /// Whether that call matches the ground truth.
    pub model_detection_correct: bool,
    /// The target-class call (backdoored ground truth only).
    pub target_call: TargetClassCall,
}

/// Scores an outcome against a ground-truth *set* of implanted target
/// classes: empty = clean model, one entry = the paper's single-target
/// setting, several = a multi-backdoor victim.
///
/// For a backdoored ground truth the target-class call generalises the
/// paper's Table 1 wording to sets: `Correct` when the flagged set equals
/// the implanted set exactly, `CorrectSet` when every implanted class is
/// flagged but clean classes ride along, `Wrong` when any implanted class
/// is missed while something else is flagged.
pub fn score_outcome(outcome: &DetectionOutcome, truth: &[usize]) -> ModelVerdict {
    let called = outcome.is_backdoored();
    if truth.is_empty() {
        return ModelVerdict {
            called_backdoored: called,
            model_detection_correct: !called,
            target_call: TargetClassCall::NotApplicable,
        };
    }
    let mut want = truth.to_vec();
    want.sort_unstable();
    want.dedup();
    let target_call = if !called {
        TargetClassCall::NotApplicable
    } else if outcome.flagged == want {
        TargetClassCall::Correct
    } else if want.iter().all(|t| outcome.flagged.contains(t)) {
        TargetClassCall::CorrectSet
    } else {
        TargetClassCall::Wrong
    };
    ModelVerdict {
        called_backdoored: called,
        model_detection_correct: called,
        target_call,
    }
}

/// A trigger reverse-engineering defense.
///
/// `inspect` must reverse-engineer a candidate trigger *per class* and run
/// the shared outlier test; implementations provide
/// [`Defense::reverse_class`] and inherit the default `inspect`.
///
/// The model is passed by shared reference everywhere: defenses *read*
/// the victim (forward passes through the cache-free inference path,
/// gradients through the tape-backed `Network::input_grad_in` route) and
/// never mutate it, which is what lets parallel engines fan one model out
/// across worker threads without cloning.
pub trait Defense {
    /// Name as used in the paper's tables ("NC", "TABOR", "USB").
    fn name(&self) -> &'static str;

    /// Reverse-engineers a trigger that sends `images` to `target`.
    fn reverse_class(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult;

    /// Minimum reversed-trigger success rate for a flagged class to count
    /// (filters unconverged optimisations).
    fn min_success(&self) -> f64 {
        0.5
    }

    /// Runs [`Defense::reverse_class`] for every class and applies the MAD
    /// outlier test.
    fn inspect(&self, model: &Network, images: &Tensor, rng: &mut StdRng) -> DetectionOutcome {
        let k = model.num_classes();
        let per_class: Vec<ClassResult> = (0..k)
            .map(|t| self.reverse_class(model, images, t, rng))
            .collect();
        DetectionOutcome::from_class_results(self.static_name(), per_class, self.min_success())
    }

    /// `'static` copy of the name (verdicts outlive the defense object).
    fn static_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_result(class: usize, l1: f64, success: f64) -> ClassResult {
        ClassResult {
            class,
            l1_norm: l1,
            attack_success: success,
            pattern: Tensor::zeros(&[1, 4, 4]),
            mask: Tensor::zeros(&[4, 4]),
        }
    }

    fn outcome_with_norms(norms: &[f64]) -> DetectionOutcome {
        let per_class = norms
            .iter()
            .enumerate()
            .map(|(c, &n)| class_result(c, n, 1.0))
            .collect();
        DetectionOutcome::from_class_results("nc", per_class, 0.5)
    }

    #[test]
    fn small_outlier_is_flagged() {
        let o = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert!(o.is_backdoored());
        assert_eq!(o.flagged, vec![2]);
        assert_eq!(o.reported_l1(), 4.0);
    }

    #[test]
    fn uniform_profile_is_clean() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        assert!(!o.is_backdoored());
        // reported L1 falls back to the minimum.
        assert_eq!(o.reported_l1(), 46.0);
    }

    #[test]
    fn unconverged_triggers_are_not_flagged() {
        let mut per_class: Vec<ClassResult> = (0..10)
            .map(|c| class_result(c, 50.0 + c as f64, 1.0))
            .collect();
        per_class[3] = class_result(3, 2.0, 0.1); // tiny norm but never works
        let o = DetectionOutcome::from_class_results("nc", per_class, 0.5);
        assert!(!o.is_backdoored());
    }

    #[test]
    fn scoring_clean_truth() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        let v = score_outcome(&o, &[]);
        assert!(v.model_detection_correct);
        assert_eq!(v.target_call, TargetClassCall::NotApplicable);
        let bad = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        let v = score_outcome(&bad, &[]);
        assert!(!v.model_detection_correct, "false positive must be scored");
    }

    #[test]
    fn scoring_backdoored_truth() {
        let o = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(
            score_outcome(&o, &[2]).target_call,
            TargetClassCall::Correct
        );
        assert_eq!(score_outcome(&o, &[5]).target_call, TargetClassCall::Wrong);
        assert!(score_outcome(&o, &[2]).model_detection_correct);
    }

    #[test]
    fn scoring_correct_set() {
        let o = outcome_with_norms(&[50.0, 3.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(o.flagged, vec![1, 2]);
        assert_eq!(
            score_outcome(&o, &[2]).target_call,
            TargetClassCall::CorrectSet
        );
    }

    #[test]
    fn scoring_multi_target_truth() {
        // Two genuinely small norms: a 2-target victim's profile.
        let o = outcome_with_norms(&[50.0, 3.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(o.flagged, vec![1, 2]);
        // Exact set match (order and duplicates in the truth don't matter).
        assert_eq!(
            score_outcome(&o, &[2, 1]).target_call,
            TargetClassCall::Correct
        );
        assert_eq!(
            score_outcome(&o, &[1, 2, 1]).target_call,
            TargetClassCall::Correct
        );
        // One implanted class missed entirely → Wrong, not CorrectSet.
        assert_eq!(
            score_outcome(&o, &[1, 5]).target_call,
            TargetClassCall::Wrong
        );
    }

    #[test]
    fn missed_backdoor_is_not_applicable() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        let v = score_outcome(&o, &[3]);
        assert!(!v.model_detection_correct);
        assert_eq!(v.target_call, TargetClassCall::NotApplicable);
    }

    #[test]
    fn confidences_mark_flagged_classes_only() {
        let o = outcome_with_norms(&[50.0, 3.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(o.confidences.len(), 10);
        for &c in &o.flagged {
            assert!(
                o.confidences[c] > DEFAULT_ANOMALY_THRESHOLD,
                "flagged class {c} must score above the anomaly threshold"
            );
        }
        for (c, &conf) in o.confidences.iter().enumerate() {
            if !o.flagged.contains(&c) {
                assert!(
                    conf <= DEFAULT_ANOMALY_THRESHOLD,
                    "clean class {c} scored {conf}"
                );
            }
        }
        // The deeper outlier is the more confident call.
        assert!(o.confidences[1] > o.confidences[2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds an outcome from raw L1 norms with perfect attack success, so
    /// only the MAD statistics decide what gets flagged.
    fn outcome_from(norms: &[f64]) -> DetectionOutcome {
        let per_class = norms
            .iter()
            .enumerate()
            .map(|(c, &n)| ClassResult {
                class: c,
                l1_norm: n,
                attack_success: 1.0,
                pattern: Tensor::zeros(&[1, 2, 2]),
                mask: Tensor::zeros(&[2, 2]),
            })
            .collect();
        DetectionOutcome::from_class_results("usb", per_class, 0.5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// 0, 1, 2, or 3 planted small outliers among 12 classes are
        /// recovered exactly, over randomised log-norm cluster spreads.
        #[test]
        fn planted_outliers_are_recovered(
            base in 3.5f64..4.5,
            spread in 0.01f64..0.08,
            jitter in proptest::collection::vec(-1.0f64..1.0, 12),
            k in 0usize..4,
        ) {
            let norms: Vec<f64> = jitter
                .iter()
                .enumerate()
                .map(|(c, &j)| {
                    if c < k {
                        // An implanted class: a factor e^3.5 below the cluster.
                        (base - 3.5 + j * spread).exp()
                    } else {
                        (base + j * spread).exp()
                    }
                })
                .collect();
            let o = outcome_from(&norms);
            prop_assert_eq!(&o.flagged, &(0..k).collect::<Vec<_>>());
            for (c, &norm) in norms.iter().enumerate() {
                if c < k {
                    prop_assert!(o.confidences[c] > DEFAULT_ANOMALY_THRESHOLD);
                } else {
                    prop_assert!(
                        norm >= 0.5 * o.median_l1,
                        "clean class {} fell below the relative bar", c
                    );
                }
            }
        }

        /// Confidence grows strictly with the outlier's separation from the
        /// clean cluster (same cluster, deeper implant → larger score).
        #[test]
        fn confidence_is_monotone_in_separation(
            base in 3.5f64..4.5,
            spread in 0.01f64..0.08,
            jitter in proptest::collection::vec(-1.0f64..1.0, 11),
            depth in 1.0f64..3.0,
            gap in 0.5f64..2.0,
        ) {
            let cluster: Vec<f64> = jitter.iter().map(|&j| (base + j * spread).exp()).collect();
            let with_outlier = |d: f64| {
                let mut norms = cluster.clone();
                norms.push((base - d).exp());
                outcome_from(&norms)
            };
            let shallow = with_outlier(depth);
            let deep = with_outlier(depth + gap);
            prop_assert!(deep.confidences[11] > shallow.confidences[11]);
        }

        /// Flags and confidences are equivariant under class permutation:
        /// rotating the norm profile rotates the verdict with it.
        #[test]
        fn verdict_is_permutation_invariant(
            base in 3.5f64..4.5,
            spread in 0.01f64..0.08,
            jitter in proptest::collection::vec(-1.0f64..1.0, 12),
            k in 1usize..4,
            rot in 0usize..12,
        ) {
            let norms: Vec<f64> = jitter
                .iter()
                .enumerate()
                .map(|(c, &j)| {
                    let shift = if c < k { -3.5 } else { 0.0 };
                    (base + shift + j * spread).exp()
                })
                .collect();
            let n = norms.len();
            let rotated: Vec<f64> = (0..n).map(|c| norms[(c + rot) % n]).collect();
            let o = outcome_from(&norms);
            let r = outcome_from(&rotated);
            let mut expect: Vec<usize> = o
                .flagged
                .iter()
                .map(|&c| (c + n - rot) % n)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(&r.flagged, &expect);
            for c in 0..n {
                let back = (c + rot) % n;
                prop_assert!((r.confidences[c] - o.confidences[back]).abs() < 1e-12);
            }
        }
    }
}
