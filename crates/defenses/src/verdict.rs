//! Detection outcomes and the paper's scoring scheme.
//!
//! The paper reports two metric families per (dataset, attack, method) cell:
//!
//! * **Model Detection** — is the model called clean or backdoored?
//! * **Target Class Detection** — for backdoored models: `Correct` (single
//!   flagged class, the true target), `Correct Set` (several flagged
//!   classes including the true target), `Wrong` (flagged, but the true
//!   target is not among them).

use rand::rngs::StdRng;
use usb_nn::models::Network;
use usb_tensor::stats::{flag_small_outliers, median, DEFAULT_ANOMALY_THRESHOLD};
use usb_tensor::Tensor;

/// The reversed trigger and statistics for one candidate target class.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// The candidate class the trigger was reverse-engineered for.
    pub class: usize,
    /// L1 norm of the reversed mask — the outlier statistic.
    pub l1_norm: f64,
    /// Fraction of the defense's clean data that the reversed trigger sends
    /// to `class` (how well reverse engineering converged).
    pub attack_success: f64,
    /// Reversed pattern `[C, H, W]`.
    pub pattern: Tensor,
    /// Reversed mask `[H, W]`.
    pub mask: Tensor,
}

/// Everything a defense reports about one model.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Defense name ("nc", "tabor", "usb").
    pub method: &'static str,
    /// One entry per class, in class order.
    pub per_class: Vec<ClassResult>,
    /// Per-class anomaly indices (MAD-based).
    pub anomaly_indices: Vec<f64>,
    /// Classes flagged as backdoor targets.
    pub flagged: Vec<usize>,
    /// Median of the per-class L1 norms.
    pub median_l1: f64,
}

impl DetectionOutcome {
    /// Builds the outcome from per-class results by running the MAD outlier
    /// test on the **log** L1 norms (small outliers only), keeping only
    /// flagged classes whose reversed trigger actually works
    /// (`attack_success ≥ min_success`) **and** whose norm is substantially
    /// below the median (`< RELATIVE_NORM_BAR × median`).
    ///
    /// The log transform makes the test robust to the multiplicative spread
    /// of reversed-trigger norms: clean classes differ from each other by
    /// *factors* (hard vs easy classes), which inflates a linear MAD until
    /// a genuinely tiny backdoor norm no longer clears the threshold. In
    /// log space that spread is additive and the backdoor outlier stands
    /// out. The relative bar then suppresses borderline flags on clean
    /// models, where the smallest class can sit near half the median by
    /// chance alone.
    ///
    /// # Panics
    ///
    /// Panics if `per_class` is empty.
    pub fn from_class_results(
        method: &'static str,
        per_class: Vec<ClassResult>,
        min_success: f64,
    ) -> Self {
        /// A flagged norm must be below this fraction of the median.
        const RELATIVE_NORM_BAR: f64 = 0.5;
        /// Floor avoiding `ln(0)` for fully degenerate (all-zero) masks.
        const LOG_FLOOR: f64 = 1e-6;
        assert!(!per_class.is_empty(), "DetectionOutcome: no classes");
        let norms: Vec<f64> = per_class.iter().map(|c| c.l1_norm).collect();
        let log_norms: Vec<f64> = norms.iter().map(|&n| n.max(LOG_FLOOR).ln()).collect();
        let report = flag_small_outliers(&log_norms, DEFAULT_ANOMALY_THRESHOLD);
        let median = median(&norms);
        let flagged: Vec<usize> = report
            .flagged
            .into_iter()
            .filter(|&c| per_class[c].attack_success >= min_success)
            .filter(|&c| per_class[c].l1_norm < RELATIVE_NORM_BAR * median)
            .collect();
        DetectionOutcome {
            method,
            per_class,
            anomaly_indices: report.indices,
            flagged,
            median_l1: median,
        }
    }

    /// `true` when at least one class is flagged.
    pub fn is_backdoored(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// The reversed-trigger L1 norm of the most anomalous flagged class, or
    /// the minimum across classes when nothing is flagged (what the paper's
    /// "Reversed Trigger L1 norm" column reports for backdoored models).
    pub fn reported_l1(&self) -> f64 {
        if let Some(&c) = self.flagged.first() {
            self.per_class[c].l1_norm
        } else {
            self.per_class
                .iter()
                .map(|c| c.l1_norm)
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// Target-class call for a backdoored model (paper Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClassCall {
    /// Exactly the true target class was flagged.
    Correct,
    /// Several classes flagged, including the true target.
    CorrectSet,
    /// Flagged classes do not include the true target.
    Wrong,
    /// Not applicable (clean ground truth or nothing flagged).
    NotApplicable,
}

/// A scored verdict for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelVerdict {
    /// Whether the defense called the model backdoored.
    pub called_backdoored: bool,
    /// Whether that call matches the ground truth.
    pub model_detection_correct: bool,
    /// The target-class call (backdoored ground truth only).
    pub target_call: TargetClassCall,
}

/// Scores an outcome against ground truth (`None` = clean model,
/// `Some(t)` = backdoored with target `t`).
pub fn score_outcome(outcome: &DetectionOutcome, truth: Option<usize>) -> ModelVerdict {
    let called = outcome.is_backdoored();
    match truth {
        None => ModelVerdict {
            called_backdoored: called,
            model_detection_correct: !called,
            target_call: TargetClassCall::NotApplicable,
        },
        Some(t) => {
            let target_call = if !called {
                TargetClassCall::NotApplicable
            } else if outcome.flagged == [t] {
                TargetClassCall::Correct
            } else if outcome.flagged.contains(&t) {
                TargetClassCall::CorrectSet
            } else {
                TargetClassCall::Wrong
            };
            ModelVerdict {
                called_backdoored: called,
                model_detection_correct: called,
                target_call,
            }
        }
    }
}

/// A trigger reverse-engineering defense.
///
/// `inspect` must reverse-engineer a candidate trigger *per class* and run
/// the shared outlier test; implementations provide
/// [`Defense::reverse_class`] and inherit the default `inspect`.
///
/// The model is passed by shared reference everywhere: defenses *read*
/// the victim (forward passes through the cache-free inference path,
/// gradients through the tape-backed `Network::input_grad_in` route) and
/// never mutate it, which is what lets parallel engines fan one model out
/// across worker threads without cloning.
pub trait Defense {
    /// Name as used in the paper's tables ("NC", "TABOR", "USB").
    fn name(&self) -> &'static str;

    /// Reverse-engineers a trigger that sends `images` to `target`.
    fn reverse_class(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult;

    /// Minimum reversed-trigger success rate for a flagged class to count
    /// (filters unconverged optimisations).
    fn min_success(&self) -> f64 {
        0.5
    }

    /// Runs [`Defense::reverse_class`] for every class and applies the MAD
    /// outlier test.
    fn inspect(&self, model: &Network, images: &Tensor, rng: &mut StdRng) -> DetectionOutcome {
        let k = model.num_classes();
        let per_class: Vec<ClassResult> = (0..k)
            .map(|t| self.reverse_class(model, images, t, rng))
            .collect();
        DetectionOutcome::from_class_results(self.static_name(), per_class, self.min_success())
    }

    /// `'static` copy of the name (verdicts outlive the defense object).
    fn static_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_result(class: usize, l1: f64, success: f64) -> ClassResult {
        ClassResult {
            class,
            l1_norm: l1,
            attack_success: success,
            pattern: Tensor::zeros(&[1, 4, 4]),
            mask: Tensor::zeros(&[4, 4]),
        }
    }

    fn outcome_with_norms(norms: &[f64]) -> DetectionOutcome {
        let per_class = norms
            .iter()
            .enumerate()
            .map(|(c, &n)| class_result(c, n, 1.0))
            .collect();
        DetectionOutcome::from_class_results("nc", per_class, 0.5)
    }

    #[test]
    fn small_outlier_is_flagged() {
        let o = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert!(o.is_backdoored());
        assert_eq!(o.flagged, vec![2]);
        assert_eq!(o.reported_l1(), 4.0);
    }

    #[test]
    fn uniform_profile_is_clean() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        assert!(!o.is_backdoored());
        // reported L1 falls back to the minimum.
        assert_eq!(o.reported_l1(), 46.0);
    }

    #[test]
    fn unconverged_triggers_are_not_flagged() {
        let mut per_class: Vec<ClassResult> = (0..10)
            .map(|c| class_result(c, 50.0 + c as f64, 1.0))
            .collect();
        per_class[3] = class_result(3, 2.0, 0.1); // tiny norm but never works
        let o = DetectionOutcome::from_class_results("nc", per_class, 0.5);
        assert!(!o.is_backdoored());
    }

    #[test]
    fn scoring_clean_truth() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        let v = score_outcome(&o, None);
        assert!(v.model_detection_correct);
        assert_eq!(v.target_call, TargetClassCall::NotApplicable);
        let bad = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        let v = score_outcome(&bad, None);
        assert!(!v.model_detection_correct, "false positive must be scored");
    }

    #[test]
    fn scoring_backdoored_truth() {
        let o = outcome_with_norms(&[50.0, 52.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(
            score_outcome(&o, Some(2)).target_call,
            TargetClassCall::Correct
        );
        assert_eq!(
            score_outcome(&o, Some(5)).target_call,
            TargetClassCall::Wrong
        );
        assert!(score_outcome(&o, Some(2)).model_detection_correct);
    }

    #[test]
    fn scoring_correct_set() {
        let o = outcome_with_norms(&[50.0, 3.0, 4.0, 49.0, 51.0, 48.0, 50.0, 53.0, 49.0, 51.0]);
        assert_eq!(o.flagged, vec![1, 2]);
        assert_eq!(
            score_outcome(&o, Some(2)).target_call,
            TargetClassCall::CorrectSet
        );
    }

    #[test]
    fn missed_backdoor_is_not_applicable() {
        let o = outcome_with_norms(&[50.0, 54.0, 46.0, 49.0, 52.0, 47.0, 50.0, 55.0, 48.0, 51.0]);
        let v = score_outcome(&o, Some(3));
        assert!(!v.model_detection_correct);
        assert_eq!(v.target_call, TargetClassCall::NotApplicable);
    }
}
