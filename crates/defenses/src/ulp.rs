//! Universal Litmus Patterns (Kolouri et al., CVPR 2020) — the
//! meta-classification baseline.
//!
//! ULP sidesteps trigger reverse engineering entirely: feed the suspect
//! model a small bank of *learned* probe images ("litmus patterns") and
//! classify the model itself from how it responds. The bank and a logistic
//! meta-classifier are trained offline on surrogate model pairs — here,
//! tiny clean/BadNet victims produced through the fixture cache, so the
//! surrogates are trained once per input signature and loaded bit-exactly
//! ever after.
//!
//! The patterns are optimised to *excite* backdoored models (drive some
//! class's softmax toward 1) while leaving clean models indifferent; the
//! pooled max-softmax response is the single feature the logistic head
//! consumes. At inspection time one forward pass of the bank yields both
//! the model-level call (meta-classifier) and a per-class response profile
//! that feeds the shared MAD verdict: a backdoored class absorbs the
//! patterns' probability mass, so its "norm" statistic `−ln(response)` is
//! a small-side outlier exactly like a reversed-trigger L1 norm.

use crate::verdict::{ClassResult, Defense, DetectionOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use usb_attacks::fixtures::{cached_victim, FixtureSpec};
use usb_attacks::{train_clean_victim, Attack, BadNet};
use usb_data::SyntheticSpec;
use usb_nn::models::{Architecture, ModelKind, Network};
use usb_nn::train::TrainConfig;
use usb_tensor::{Tape, Tensor, Workspace};

/// Floor avoiding `ln(0)` when a class receives no probability mass.
const RESPONSE_FLOOR: f64 = 1e-6;

/// Hyperparameters for the ULP baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UlpConfig {
    /// Number of litmus patterns in the bank.
    pub patterns: usize,
    /// Gradient steps optimising the bank against the surrogate pairs.
    pub opt_steps: usize,
    /// Learning rate for the pattern updates.
    pub lr: f32,
    /// Clean/backdoored surrogate pairs trained per input signature.
    pub surrogate_pairs: usize,
    /// Gradient steps fitting the logistic meta-classifier.
    pub meta_steps: usize,
    /// Learning rate for the logistic fit.
    pub meta_lr: f64,
    /// Base seed for pattern initialisation and surrogate training.
    pub seed: u64,
}

impl UlpConfig {
    /// Full-strength configuration (used by the experiment grid).
    pub fn standard() -> Self {
        UlpConfig {
            patterns: 4,
            opt_steps: 150,
            lr: 0.3,
            surrogate_pairs: 2,
            meta_steps: 300,
            meta_lr: 1.0,
            seed: 0x0117,
        }
    }

    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        UlpConfig {
            opt_steps: 80,
            ..Self::standard()
        }
    }
}

impl Default for UlpConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Input signature a litmus bank is specific to: a bank probes models of
/// one (channels, height, width, classes) shape.
type Signature = (usize, usize, usize, usize);

/// A trained bank: the patterns plus the 1-D logistic head over the
/// pooled max-softmax feature.
struct LitmusBank {
    /// `[m, C, H, W]` probe images in `[0, 1]`.
    patterns: Tensor,
    /// Logistic weight on the pooled response feature.
    weight: f64,
    /// Logistic bias.
    bias: f64,
}

/// The ULP defense. Banks are trained lazily per input signature and
/// memoised for the lifetime of the defense object; the surrogate victims
/// behind them live in the shared fixture cache.
pub struct Ulp {
    /// Hyperparameters.
    pub config: UlpConfig,
    banks: Mutex<Vec<(Signature, Arc<LitmusBank>)>>,
}

impl Ulp {
    /// ULP with the given configuration.
    pub fn new(config: UlpConfig) -> Self {
        Ulp {
            config,
            banks: Mutex::new(Vec::new()),
        }
    }

    /// ULP with the standard configuration.
    pub fn standard() -> Self {
        Self::new(UlpConfig::standard())
    }

    /// ULP with the reduced test configuration.
    pub fn fast() -> Self {
        Self::new(UlpConfig::fast())
    }

    /// The bank for `sig`, training it on first use.
    fn bank(&self, sig: Signature) -> Arc<LitmusBank> {
        let mut banks = self.banks.lock().expect("ULP bank lock poisoned");
        if let Some((_, bank)) = banks.iter().find(|(s, _)| *s == sig) {
            return Arc::clone(bank);
        }
        let bank = Arc::new(train_bank(&self.config, sig));
        banks.push((sig, Arc::clone(&bank)));
        bank
    }

    /// The meta-classifier's P(backdoored) for `model` — the model-level
    /// litmus score (`≥ 0.5` reads as backdoored).
    pub fn meta_score(&self, model: &Network) -> f64 {
        let (c, h, w) = model.input_shape();
        let bank = self.bank((c, h, w, model.num_classes()));
        let mut ws = Workspace::new();
        let probs = softmax_rows(&model.infer(&bank.patterns, &mut ws));
        sigmoid(bank.weight * pooled_response(&probs) + bank.bias)
    }
}

impl Defense for Ulp {
    fn name(&self) -> &'static str {
        "ULP"
    }

    fn static_name(&self) -> &'static str {
        "ULP"
    }

    /// Litmus responses are probabilities, not reverse-engineered masks:
    /// the convergence filter does not apply.
    fn min_success(&self) -> f64 {
        0.0
    }

    fn reverse_class(
        &self,
        model: &Network,
        _images: &Tensor,
        target: usize,
        _rng: &mut StdRng,
    ) -> ClassResult {
        let (c, h, w) = model.input_shape();
        let bank = self.bank((c, h, w, model.num_classes()));
        let mut ws = Workspace::new();
        let probs = softmax_rows(&model.infer(&bank.patterns, &mut ws));
        class_result_from_probs(&bank.patterns, &probs, target, (h, w))
    }

    /// One forward pass of the bank yields every class's response; the
    /// logistic meta-classifier then gates the model-level call — when it
    /// reads the response profile as clean, no class stays flagged.
    fn inspect(&self, model: &Network, _images: &Tensor, _rng: &mut StdRng) -> DetectionOutcome {
        let (c, h, w) = model.input_shape();
        let k = model.num_classes();
        let bank = self.bank((c, h, w, k));
        let mut ws = Workspace::new();
        let probs = softmax_rows(&model.infer(&bank.patterns, &mut ws));
        let per_class: Vec<ClassResult> = (0..k)
            .map(|t| class_result_from_probs(&bank.patterns, &probs, t, (h, w)))
            .collect();
        let mut outcome =
            DetectionOutcome::from_class_results(self.static_name(), per_class, self.min_success());
        let score = sigmoid(bank.weight * pooled_response(&probs) + bank.bias);
        if score < 0.5 {
            outcome.flagged.clear();
        }
        outcome
    }
}

/// Row-wise softmax of `[m, k]` logits.
fn softmax_rows(logits: &Tensor) -> Vec<Vec<f64>> {
    let (m, k) = (logits.shape()[0], logits.shape()[1]);
    let data = logits.data();
    (0..m)
        .map(|i| {
            let row = &data[i * k..(i + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f64> = row.iter().map(|&v| f64::from(v - max).exp()).collect();
            let sum: f64 = exp.iter().sum();
            exp.into_iter().map(|e| e / sum).collect()
        })
        .collect()
}

/// The pooled feature the logistic head consumes: mean over patterns of
/// the max softmax probability.
fn pooled_response(probs: &[Vec<f64>]) -> f64 {
    let m = probs.len();
    probs
        .iter()
        .map(|row| row.iter().copied().fold(0.0, f64::max))
        .sum::<f64>()
        / m as f64
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Builds one class's [`ClassResult`] from the bank's response profile.
/// The "norm" statistic is `−ln(mean response)`: a class that absorbs the
/// patterns' probability mass gets a small value, exactly the small-side
/// outlier shape the shared MAD verdict flags.
fn class_result_from_probs(
    patterns: &Tensor,
    probs: &[Vec<f64>],
    target: usize,
    (h, w): (usize, usize),
) -> ClassResult {
    let m = probs.len();
    let response = probs.iter().map(|row| row[target]).sum::<f64>() / m as f64;
    let hits = probs
        .iter()
        .filter(|row| {
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i);
            best == Some(target)
        })
        .count();
    // The pattern that responds to this class the strongest, as the
    // reported "reversed trigger" visualisation.
    let best_pattern = (0..m)
        .max_by(|&a, &b| probs[a][target].total_cmp(&probs[b][target]))
        .unwrap_or(0);
    ClassResult {
        class: target,
        l1_norm: -response.max(RESPONSE_FLOOR).ln(),
        attack_success: hits as f64 / m as f64,
        pattern: patterns.index_axis0(best_pattern),
        mask: Tensor::zeros(&[h, w]),
    }
}

/// Trains the surrogate victims for one signature through the fixture
/// cache, returning `(model, is_backdoored)` pairs.
fn surrogates(config: &UlpConfig, sig: Signature) -> Vec<(Network, bool)> {
    let (c, h, w, k) = sig;
    assert!(
        c == 1 || c == 3,
        "ULP surrogates: unsupported channel count {c}"
    );
    let mut spec = if c == 1 {
        SyntheticSpec::mnist()
    } else {
        SyntheticSpec::cifar10()
    };
    spec = spec.with_train_size(128).with_test_size(32).with_classes(k);
    spec.height = h;
    spec.width = w;
    // ResNet-18 absorbs small triggers far more reliably than the
    // pooling-heavy BasicCnn (see EXPERIMENTS.md): at this budget the
    // surrogate backdoors reach ~1.0 ASR without collapsing accuracy.
    let arch = Architecture::new(ModelKind::ResNet18, (c, h, w), k).with_width(4);
    let tc = TrainConfig::new(10);
    let trigger = 2.min(h).min(w);
    let mut out = Vec::with_capacity(config.surrogate_pairs * 2);
    for pair in 0..config.surrogate_pairs {
        let data_seed = config.seed ^ (9000 + pair as u64);
        let train_seed = config.seed ^ (100 + pair as u64);
        let key_dims = format!("{c}x{h}x{w}x{k}");
        let clean_key = format!("ulp-clean-{pair}-{key_dims}");
        let clean_spec = FixtureSpec::new(&clean_key, spec.clone(), data_seed, train_seed)
            .with_config(&[&format!("{arch:?}"), &format!("{tc:?}"), "clean"]);
        let (_, clean) = cached_victim(&clean_spec, |data| {
            train_clean_victim(data, arch, tc, train_seed)
        });
        out.push((clean.model, false));
        let attack = BadNet::new(trigger, pair % k, 0.25);
        let bad_key = format!("ulp-badnet-{pair}-{key_dims}");
        let bad_spec =
            FixtureSpec::new(&bad_key, spec.clone(), data_seed, train_seed).with_config(&[
                &format!("{arch:?}"),
                &format!("{tc:?}"),
                &format!("{attack:?}"),
            ]);
        let (_, bad) = cached_victim(&bad_spec, |data| attack.execute(data, arch, tc, train_seed));
        out.push((bad.model, true));
    }
    out
}

/// Trains the litmus bank for one signature jointly with its logistic
/// head (the ULP paper's scheme): each step descends the BCE loss of
/// `sigmoid(w·x_j + b)` against the clean/backdoored label, where `x_j`
/// is the pooled max-softmax response of surrogate `j` to the bank —
/// gradients flow through the heads *and* through the models into the
/// patterns. A final longer logistic refit calibrates the head on the
/// frozen bank.
fn train_bank(config: &UlpConfig, sig: Signature) -> LitmusBank {
    let (c, h, w, k) = sig;
    let models = surrogates(config, sig);
    let n = models.len() as f64;
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add((c * 31 + h * 37 + w * 41 + k * 43) as u64),
    );
    let m = config.patterns;
    let mut patterns = Tensor::zeros(&[m, c, h, w]);
    for v in patterns.data_mut() {
        *v = rng.gen_range(0.0..1.0);
    }
    // A positive-slope head centred at x = 0.5 bootstraps the joint
    // descent (a zero weight would zero the pattern gradients too).
    let (mut weight, mut bias) = (6.0f64, -3.0f64);
    let mut tape = Tape::new();
    let mut ws = Workspace::new();
    for _ in 0..config.opt_steps {
        let mut total_grad = Tensor::zeros(&[m, c, h, w]);
        let (mut dw, mut db) = (0.0f64, 0.0f64);
        for (model, backdoored) in &models {
            let y = f64::from(u8::from(*backdoored));
            let mut feature = 0.0f64;
            let (_, d_input) = model.input_grad_in(
                &patterns,
                |logits, _| {
                    let probs = softmax_rows(logits);
                    let x = pooled_response(&probs);
                    feature = x;
                    // d BCE / d x = (σ(wx+b) − y)·w; d x / d logits goes
                    // through the max-softmax of each pattern's row.
                    let dx = (sigmoid(weight * x + bias) - y) * weight / m as f64;
                    let mut d = Tensor::zeros(&[m, k]);
                    let dd = d.data_mut();
                    for (i, row) in probs.iter().enumerate() {
                        let (star, s_star) = row
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(j, &p)| (j, p))
                            .expect("non-empty softmax row");
                        for (j, &s_j) in row.iter().enumerate() {
                            let indicator = f64::from(j == star);
                            dd[i * k + j] = (dx * s_star * (indicator - s_j)) as f32;
                        }
                    }
                    d
                },
                &mut tape,
                &mut ws,
            );
            let err = sigmoid(weight * feature + bias) - y;
            dw += err * feature;
            db += err;
            for (g, dg) in total_grad.data_mut().iter_mut().zip(d_input.data()) {
                *g += dg;
            }
            ws.recycle(d_input);
        }
        for (p, g) in patterns.data_mut().iter_mut().zip(total_grad.data()) {
            *p = (*p - config.lr * g).clamp(0.0, 1.0);
        }
        weight -= config.meta_lr * dw / n;
        bias -= config.meta_lr * db / n;
    }
    // Longer logistic refit on the frozen bank calibrates the head.
    let features: Vec<(f64, f64)> = models
        .iter()
        .map(|(model, backdoored)| {
            let probs = softmax_rows(&model.infer(&patterns, &mut ws));
            (pooled_response(&probs), f64::from(u8::from(*backdoored)))
        })
        .collect();
    for _ in 0..config.meta_steps {
        let (mut dw, mut db) = (0.0f64, 0.0f64);
        for &(x, y) in &features {
            let err = sigmoid(weight * x + bias) - y;
            dw += err * x;
            db += err;
        }
        weight -= config.meta_lr * dw / n;
        bias -= config.meta_lr * db / n;
    }
    LitmusBank {
        patterns,
        weight,
        bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surrogate_setting() -> (SyntheticSpec, Architecture) {
        let spec = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(96)
            .with_test_size(32)
            .with_classes(4);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
        (spec, arch)
    }

    /// The bank's logistic head must separate the very surrogates it was
    /// fitted on — the minimum bar for a meta-classifier.
    #[test]
    fn bank_separates_its_surrogates_in_sample() {
        let config = UlpConfig::fast();
        let sig = (1usize, 12usize, 12usize, 4usize);
        let bank = train_bank(&config, sig);
        assert_eq!(bank.patterns.shape(), &[config.patterns, 1, 12, 12]);
        let mut ws = Workspace::new();
        let mut clean_scores = Vec::new();
        let mut bad_scores = Vec::new();
        for (model, backdoored) in surrogates(&config, sig) {
            let probs = softmax_rows(&model.infer(&bank.patterns, &mut ws));
            let score = sigmoid(bank.weight * pooled_response(&probs) + bank.bias);
            if backdoored {
                bad_scores.push(score);
            } else {
                clean_scores.push(score);
            }
        }
        let worst_bad = bad_scores.iter().copied().fold(f64::INFINITY, f64::min);
        let worst_clean = clean_scores.iter().copied().fold(0.0, f64::max);
        assert!(
            worst_bad > worst_clean,
            "backdoored surrogates must outscore clean ones: {bad_scores:?} vs {clean_scores:?}"
        );
    }

    /// Two independently constructed defenses produce bit-identical
    /// outcomes: banks derive from the config seed alone.
    #[test]
    fn inspection_is_deterministic_across_instances() {
        let (spec, arch) = surrogate_setting();
        let data = spec.generate(77);
        let victim = BadNet::new(2, 1, 0.25).execute(&data, arch, TrainConfig::fast(), 31);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let (x, _) = data.clean_subset(16, &mut StdRng::seed_from_u64(4));
        let a = Ulp::fast().inspect(&victim.model, &x, &mut rng_a);
        let b = Ulp::fast().inspect(&victim.model, &x, &mut rng_b);
        assert_eq!(a.flagged, b.flagged);
        assert_eq!(a.confidences, b.confidences);
        for (ra, rb) in a.per_class.iter().zip(&b.per_class) {
            assert_eq!(ra.l1_norm, rb.l1_norm);
            assert_eq!(ra.attack_success, rb.attack_success);
        }
        // ULP never consumes the caller's rng — sequential defense suites
        // keep their seed streams even with ULP appended.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    /// The outcome is structurally complete: one result and one confidence
    /// per class, probabilities in range.
    #[test]
    fn outcome_is_well_formed() {
        let (spec, arch) = surrogate_setting();
        let data = spec.generate(78);
        let victim = train_clean_victim(&data, arch, TrainConfig::fast(), 32);
        let defense = Ulp::fast();
        let mut rng = StdRng::seed_from_u64(6);
        let (x, _) = data.clean_subset(16, &mut rng);
        let outcome = defense.inspect(&victim.model, &x, &mut rng);
        assert_eq!(outcome.method, "ULP");
        assert_eq!(outcome.per_class.len(), 4);
        assert_eq!(outcome.confidences.len(), 4);
        for r in &outcome.per_class {
            assert!(r.l1_norm >= 0.0);
            assert!((0.0..=1.0).contains(&r.attack_success));
        }
        let score = defense.meta_score(&victim.model);
        assert!((0.0..=1.0).contains(&score));
    }
}
