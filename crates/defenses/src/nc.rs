//! Neural Cleanse (Wang et al., IEEE S&P 2019).
//!
//! For every candidate target class `t`, NC optimises a `(mask, pattern)`
//! pair minimising
//!
//! ```text
//! L = CE(f(x·(1−m) + p·m), t) + λ·‖m‖₁
//! ```
//!
//! from a **random starting point**, with λ adapted dynamically: raised
//! while the trigger reaches the target reliably, lowered when it stops
//! working. A backdoored class admits a much smaller working mask than clean
//! classes, so its L1 norm is a small-side MAD outlier.

use crate::trigger_var::TriggerVar;
use crate::verdict::{ClassResult, Defense};
use rand::rngs::StdRng;
use usb_nn::loss::softmax_cross_entropy_uniform_target_ws;
use usb_nn::models::Network;
use usb_nn::optim::TensorAdam;
use usb_tensor::{ops, Tape, Tensor, Workspace};

/// Hyperparameters for Neural Cleanse.
///
/// Defaults (via [`NcConfig::standard`]): `steps: 150`, `lr: 0.1`,
/// `init_lambda: 1e-3`, `asr_threshold: 0.95` (fraction in `[0, 1]`),
/// `lambda_factor: 1.5`, `patience: 10` steps, `batch_size: 16` images.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcConfig {
    /// Optimisation steps per class.
    pub steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Initial λ for the mask-size penalty.
    pub init_lambda: f32,
    /// Success-rate threshold driving the dynamic λ schedule.
    pub asr_threshold: f64,
    /// Multiplicative λ adjustment factor.
    pub lambda_factor: f32,
    /// Steps between λ adjustments.
    pub patience: usize,
    /// Per-step batch size drawn (in order) from the clean data.
    pub batch_size: usize,
}

impl NcConfig {
    /// Full-strength configuration (used by the experiment grid). 150 steps
    /// is the point where clean-class masks have shrunk to their stable
    /// class-feature size on the synthetic substrate, giving the MAD test a
    /// clean profile to work with.
    pub fn standard() -> Self {
        NcConfig {
            steps: 150,
            lr: 0.1,
            init_lambda: 1e-3,
            asr_threshold: 0.95,
            lambda_factor: 1.5,
            patience: 10,
            batch_size: 16,
        }
    }

    /// Reduced configuration for unit tests: enough steps for backdoored vs
    /// clean class norms to separate, smaller than the full grid schedule.
    pub fn fast() -> Self {
        NcConfig {
            steps: 120,
            ..Self::standard()
        }
    }
}

impl Default for NcConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The Neural Cleanse defense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuralCleanse {
    /// Hyperparameters.
    pub config: NcConfig,
}

impl NeuralCleanse {
    /// NC with the standard configuration.
    pub fn new(config: NcConfig) -> Self {
        NeuralCleanse { config }
    }

    /// NC with the reduced test configuration.
    pub fn fast() -> Self {
        NeuralCleanse {
            config: NcConfig::fast(),
        }
    }
}

/// One mask/pattern optimisation shared by NC and TABOR: per step, apply
/// the trigger to a batch, backprop `CE + λ‖m‖₁ (+ extra regularisers)`,
/// Adam-update, adapt λ. The model is only read (gradients through the
/// tape-backed route), so concurrent per-class optimisations can share
/// one `&Network`.
pub(crate) fn optimise_trigger(
    model: &Network,
    images: &Tensor,
    target: usize,
    config: &NcConfig,
    mut var: TriggerVar,
    mut extra_reg: impl FnMut(&TriggerVar) -> (Tensor, Tensor),
) -> (TriggerVar, f64) {
    let n = images.shape()[0];
    assert!(n > 0, "optimise_trigger: no clean data");
    let bs = config.batch_size.min(n);
    let mut adam = TensorAdam::new(config.lr).with_betas(0.5, 0.9);
    let mut lambda = config.init_lambda;
    let mut cursor = 0usize;
    let mut recent_success;
    // One tape and workspace reused across all optimisation steps.
    let mut tape = Tape::new();
    let mut ws = Workspace::new();
    for step in 0..config.steps {
        // Take a batch of data from X in order (paper Alg. 2 line 3).
        let idx: Vec<usize> = (0..bs).map(|i| (cursor + i) % n).collect();
        cursor = (cursor + bs) % n.max(1);
        let items: Vec<Tensor> = idx.iter().map(|&i| images.index_axis0(i)).collect();
        let batch = Tensor::stack(&items);
        let stamped = var.apply(&batch);
        let (logits, d_stamped) = model.input_grad_in(
            &stamped,
            |logits, ws| {
                let (_, dlogits) = softmax_cross_entropy_uniform_target_ws(logits, target, ws);
                dlogits
            },
            &mut tape,
            &mut ws,
        );
        let hits = ops::argmax_rows(&logits)
            .iter()
            .filter(|&&p| p == target)
            .count();
        recent_success = hits as f64 / bs as f64;
        let (mut d_tm, mut d_tp) = var.backward(&batch, &d_stamped);
        // Workspace-backed tensors go back for the next step's reuse.
        ws.recycle(logits);
        ws.recycle(d_stamped);
        d_tm.add_assign(&var.mask_l1_grad(lambda));
        let (reg_tm, reg_tp) = extra_reg(&var);
        d_tm.add_assign(&reg_tm);
        d_tp.add_assign(&reg_tp);
        {
            let (tm, tp) = var.params_mut();
            adam.step(&mut [tm, tp], &[&d_tm, &d_tp]);
        }
        // Dynamic λ: tighten while the trigger works, relax when it breaks.
        if (step + 1) % config.patience == 0 {
            if recent_success >= config.asr_threshold {
                lambda *= config.lambda_factor;
            } else {
                lambda /= config.lambda_factor;
            }
        }
    }
    // Final success rate over all clean data: a pure read of the model, so
    // it goes through the cache-free inference path.
    let stamped = var.apply(images);
    let hits = model
        .predict(&stamped)
        .iter()
        .filter(|&&p| p == target)
        .count();
    (var, hits as f64 / n as f64)
}

impl Defense for NeuralCleanse {
    fn name(&self) -> &'static str {
        "NC"
    }

    fn static_name(&self) -> &'static str {
        "NC"
    }

    fn reverse_class(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult {
        let (c, h, w) = model.input_shape();
        let var = TriggerVar::random(c, h, w, rng);
        let (var, success) = optimise_trigger(model, images, target, &self.config, var, |_| {
            (Tensor::zeros(&[h, w]), Tensor::zeros(&[c, h, w]))
        });
        ClassResult {
            class: target,
            l1_norm: var.mask_l1(),
            attack_success: success,
            pattern: var.pattern(),
            mask: var.mask(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use usb_attacks::{Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn nc_reverses_small_trigger_for_backdoored_class() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(240)
            .with_test_size(60)
            .with_classes(4)
            .generate(51);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 4).with_width(4);
        let victim = BadNet::new(2, 1, 0.15).execute(&data, arch, TrainConfig::new(20), 6);
        assert!(victim.asr() > 0.8, "attack failed, asr {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(0);
        let (clean_x, _) = data.clean_subset(48, &mut rng);
        let nc = NeuralCleanse::fast();
        let backdoored = nc.reverse_class(&victim.model, &clean_x, 1, &mut rng);
        let clean = nc.reverse_class(&victim.model, &clean_x, 0, &mut rng);
        assert!(
            backdoored.l1_norm < clean.l1_norm,
            "backdoored class mask ({:.2}) should be smaller than clean ({:.2})",
            backdoored.l1_norm,
            clean.l1_norm
        );
        assert!(
            backdoored.attack_success > 0.8,
            "reversed trigger does not work: {}",
            backdoored.attack_success
        );
    }
}
