//! TABOR (Guo et al., ICDM 2020): Neural Cleanse plus explicit trigger
//! regularisers.
//!
//! On top of NC's `CE + λ‖m‖₁`, TABOR penalises
//!
//! * **overly large triggers** — an elastic-net term `λ₁(‖m‖₁ + ‖m‖₂²)`;
//! * **scattered triggers** — total variation of the mask `λ₂·TV(m)`;
//! * **noisy patterns** — total variation of the masked pattern
//!   `λ₃·TV(p⊙m)`.
//!
//! This reproduction keeps the regularisers that drive TABOR's behavioural
//! difference from NC (smoother, blockier masks; slightly better clean-model
//! behaviour, slower optimisation) and omits the NLP-specific terms of the
//! original paper.

use crate::nc::{optimise_trigger, NcConfig};
use crate::trigger_var::{total_variation_with_grad, TriggerVar};
use crate::verdict::{ClassResult, Defense};
use rand::rngs::StdRng;
use usb_nn::models::Network;
use usb_tensor::Tensor;

/// TABOR hyperparameters: the shared NC schedule plus regulariser weights.
///
/// Defaults (via [`TaborConfig::standard`]): the NC schedule at
/// `steps: 200`, with `elastic_weight: 1e-3`, `mask_tv_weight: 1e-3`,
/// `pattern_tv_weight: 5e-4` (all dimensionless loss weights).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaborConfig {
    /// The underlying mask/pattern optimisation schedule.
    pub base: NcConfig,
    /// Elastic-net weight λ₁ (overly large triggers).
    pub elastic_weight: f32,
    /// Mask smoothness weight λ₂.
    pub mask_tv_weight: f32,
    /// Masked-pattern smoothness weight λ₃.
    pub pattern_tv_weight: f32,
}

impl TaborConfig {
    /// Full-strength configuration. TABOR runs more steps than NC (the
    /// extra regularisers slow convergence), which also reproduces the
    /// paper's Table 7 time ordering TABOR > NC ≫ USB.
    pub fn standard() -> Self {
        let mut base = NcConfig::standard();
        base.steps = 200;
        TaborConfig {
            base,
            elastic_weight: 1e-3,
            mask_tv_weight: 1e-3,
            pattern_tv_weight: 5e-4,
        }
    }

    /// Reduced configuration for unit tests.
    pub fn fast() -> Self {
        TaborConfig {
            base: NcConfig::fast(),
            ..Self::standard()
        }
    }
}

impl Default for TaborConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The TABOR defense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tabor {
    /// Hyperparameters.
    pub config: TaborConfig,
}

impl Tabor {
    /// TABOR with the standard configuration.
    pub fn new(config: TaborConfig) -> Self {
        Tabor { config }
    }

    /// TABOR with the reduced test configuration.
    pub fn fast() -> Self {
        Tabor {
            config: TaborConfig::fast(),
        }
    }
}

impl Defense for Tabor {
    fn name(&self) -> &'static str {
        "TABOR"
    }

    fn static_name(&self) -> &'static str {
        "TABOR"
    }

    fn reverse_class(
        &self,
        model: &Network,
        images: &Tensor,
        target: usize,
        rng: &mut StdRng,
    ) -> ClassResult {
        let (c, h, w) = model.input_shape();
        let var = TriggerVar::random(c, h, w, rng);
        let cfg = self.config;
        let (var, success) = optimise_trigger(
            model,
            images,
            target,
            &cfg.base,
            var,
            move |v: &TriggerVar| {
                let mask = v.mask();
                let pattern = v.pattern();
                // Elastic net on the mask: d(‖m‖₁ + ‖m‖₂²)/dm = 1 + 2m.
                let mut d_mask = mask.map(|m| cfg.elastic_weight * (1.0 + 2.0 * m));
                // Mask smoothness.
                let (_, tv_m) = total_variation_with_grad(&mask);
                d_mask.axpy(cfg.mask_tv_weight, &tv_m);
                // Masked-pattern smoothness: TV(p⊙m); chain to both factors.
                let masked: Tensor = {
                    let (ch, hh, ww) = (pattern.shape()[0], pattern.shape()[1], pattern.shape()[2]);
                    let mut out = Tensor::zeros(&[ch, hh, ww]);
                    for cc in 0..ch {
                        for j in 0..hh * ww {
                            out.data_mut()[cc * hh * ww + j] =
                                pattern.data()[cc * hh * ww + j] * mask.data()[j];
                        }
                    }
                    out
                };
                let (_, tv_pm) = total_variation_with_grad(&masked);
                let (ch, hh, ww) = (pattern.shape()[0], pattern.shape()[1], pattern.shape()[2]);
                let mut d_pattern = Tensor::zeros(&[ch, hh, ww]);
                for cc in 0..ch {
                    for j in 0..hh * ww {
                        let g = cfg.pattern_tv_weight * tv_pm.data()[cc * hh * ww + j];
                        d_pattern.data_mut()[cc * hh * ww + j] = g * mask.data()[j];
                        d_mask.data_mut()[j] += g * pattern.data()[cc * hh * ww + j];
                    }
                }
                (v.chain_mask(&d_mask), v.chain_pattern(&d_pattern))
            },
        );
        ClassResult {
            class: target,
            l1_norm: var.mask_l1(),
            attack_success: success,
            pattern: var.pattern(),
            mask: var.mask(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_attacks::{Attack, BadNet};
    use usb_data::SyntheticSpec;
    use usb_nn::models::{Architecture, ModelKind};
    use usb_nn::train::TrainConfig;

    #[test]
    fn tabor_reverses_backdoor_with_smooth_mask() {
        let data = SyntheticSpec::mnist()
            .with_size(12)
            .with_train_size(240)
            .with_test_size(60)
            .with_classes(4)
            .generate(61);
        let arch = Architecture::new(ModelKind::ResNet18, (1, 12, 12), 4).with_width(4);
        let victim = BadNet::new(2, 3, 0.15).execute(&data, arch, TrainConfig::new(20), 8);
        assert!(victim.asr() > 0.8, "attack failed: {}", victim.asr());
        let mut rng = StdRng::seed_from_u64(1);
        let (clean_x, _) = data.clean_subset(48, &mut rng);
        let tabor = Tabor::fast();
        let backdoored = tabor.reverse_class(&victim.model, &clean_x, 3, &mut rng);
        let clean = tabor.reverse_class(&victim.model, &clean_x, 0, &mut rng);
        assert!(
            backdoored.l1_norm < clean.l1_norm,
            "backdoored mask {:.2} should beat clean {:.2}",
            backdoored.l1_norm,
            clean.l1_norm
        );
        assert!(backdoored.attack_success > 0.7);
    }
}
