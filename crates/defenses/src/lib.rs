//! # usb-defenses
//!
//! The reverse-engineering baselines the USB paper compares against, plus
//! the shared detection machinery:
//!
//! * [`NeuralCleanse`] — Wang et al. (S&P 2019): per class, optimise a
//!   `(mask, pattern)` pair so that `x·(1−m) + p·m` classifies as the class,
//!   with a dynamically weighted `‖mask‖₁` penalty; flag classes whose mask
//!   norm is an abnormally small MAD outlier.
//! * [`Tabor`] — Guo et al. (ICDM 2020): Neural Cleanse plus explicit
//!   regularisers (elastic-net mask size, total-variation smoothness of the
//!   mask and of the masked pattern).
//! * [`Ulp`] — Universal Litmus Patterns (Kolouri et al., CVPR 2020): no
//!   reverse engineering at all — a learned bank of probe images plus a
//!   logistic meta-classifier over the pooled softmax response, trained on
//!   cached clean/backdoored surrogate pairs.
//! * [`DetectionOutcome`] / [`ModelVerdict`] / [`TargetClassCall`] — the
//!   verdict types every defense (including USB in `usb-core`) produces, and
//!   the scoring used by the paper's *Model Detection* and *Target Class
//!   Detection* table columns.
//! * [`TriggerVar`] — the tanh-parameterised `(mask, pattern)` optimisation
//!   variable shared by NC, TABOR, and USB's Alg. 2.
//!
//! # Example
//!
//! ```rust,no_run
//! use usb_defenses::{Defense, NeuralCleanse};
//! use usb_data::SyntheticSpec;
//! # use usb_attacks::{Attack, BadNet};
//! # use usb_nn::models::{Architecture, ModelKind};
//! # use usb_nn::train::TrainConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = SyntheticSpec::mnist().with_size(16).generate(1);
//! # let arch = Architecture::new(ModelKind::BasicCnn, (1, 16, 16), 10).with_width(8);
//! # let victim = BadNet::new(2, 0, 0.1).execute(&data, arch, TrainConfig::fast(), 1);
//! let mut rng = StdRng::seed_from_u64(0);
//! let (clean_x, _) = data.clean_subset(64, &mut rng);
//! let outcome = NeuralCleanse::fast().inspect(&victim.model, &clean_x, &mut rng);
//! println!("flagged classes: {:?}", outcome.flagged);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod nc;
mod tabor;
mod trigger_var;
mod ulp;
mod verdict;

pub use nc::{NcConfig, NeuralCleanse};
pub use tabor::{Tabor, TaborConfig};
pub use trigger_var::{total_variation_with_grad, TriggerVar};
pub use ulp::{Ulp, UlpConfig};
pub use verdict::{
    score_outcome, ClassResult, Defense, DetectionOutcome, ModelVerdict, TargetClassCall,
};
