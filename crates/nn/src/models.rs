//! The victim-model zoo: the paper's four architectures, width-scaled for
//! CPU training.
//!
//! * [`ModelKind::BasicCnn`] — the paper's §A.7 two-conv / two-fc network.
//! * [`ModelKind::ResNet18`] — 4 stages × 2 basic residual blocks.
//! * [`ModelKind::Vgg16`] — 13 conv layers in the familiar 2-2-3-3-3 groups.
//! * [`ModelKind::EfficientNetB0`] — MBConv blocks with depthwise
//!   convolutions and squeeze-excite gating.
//!
//! Every builder takes a `width` multiplier so the topology of the paper's
//! models is preserved while parameter counts stay CPU-trainable (see
//! DESIGN.md for the substitution argument).

use crate::compose::{Residual, Sequential, SqueezeExcite};
use crate::layer::{Layer, Mode, ParamSlot, StateSlot};
use crate::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d,
    ReLU, SiLU,
};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use usb_tensor::{ops, Dtype, Tape, Tensor, Workspace};

/// Which of the paper's architectures to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Two conv + two fc layers (paper §A.7); MNIST-scale experiments.
    BasicCnn,
    /// ResNet-18 topology (CIFAR-10 experiments, Table 1).
    ResNet18,
    /// VGG-16 topology (Tables 3 and 4).
    Vgg16,
    /// EfficientNet-B0 topology (ImageNet-subset experiments, Table 2).
    EfficientNetB0,
}

impl ModelKind {
    /// Default width multiplier giving a CPU-trainable model.
    pub fn default_width(self) -> usize {
        match self {
            ModelKind::BasicCnn => 16,
            ModelKind::ResNet18 => 8,
            ModelKind::Vgg16 => 8,
            ModelKind::EfficientNetB0 => 8,
        }
    }

    /// Name as used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::BasicCnn => "Basic CNN",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::Vgg16 => "VGG-16",
            ModelKind::EfficientNetB0 => "EfficientNet-B0",
        }
    }
}

/// A fully specified architecture: kind, input shape, classes, width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Architecture {
    /// Topology family.
    pub kind: ModelKind,
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub num_classes: usize,
    /// Width multiplier (base channel count).
    pub width: usize,
}

impl Architecture {
    /// Describes an architecture with the kind's default width.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn new(kind: ModelKind, input: (usize, usize, usize), num_classes: usize) -> Self {
        assert!(
            input.0 > 0 && input.1 > 0 && input.2 > 0,
            "Architecture: zero input dimension"
        );
        assert!(num_classes > 0, "Architecture: zero classes");
        Architecture {
            kind,
            input,
            num_classes,
            width: kind.default_width(),
        }
    }

    /// Overrides the width multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width > 0, "Architecture: zero width");
        self.width = width;
        self
    }

    /// Instantiates the network with fresh random weights.
    pub fn build(&self, rng: &mut impl Rng) -> Network {
        let (features, feat_dim) = match self.kind {
            ModelKind::BasicCnn => build_basic_cnn(self, rng),
            ModelKind::ResNet18 => build_resnet18(self, rng),
            ModelKind::Vgg16 => build_vgg16(self, rng),
            ModelKind::EfficientNetB0 => build_efficientnet_b0(self, rng),
        };
        let classifier = Sequential::new().push(Linear::new(feat_dim, self.num_classes, rng));
        Network {
            features,
            classifier,
            arch: *self,
        }
    }
}

/// A trained (or trainable) victim network: a feature extractor followed by
/// a linear classifier head.
///
/// The split lets the latent-backdoor attack reach penultimate activations
/// ([`Network::penultimate`]) and lets defenses backpropagate all the way to
/// the *input* (see [`Layer::backward`] on the composite).
///
/// Networks are `Clone` (the optimizer path still mutates), but the whole
/// detection pipeline no longer needs clones: forward-only work goes
/// through [`Network::infer`] and the `predict` family, and *gradients*
/// go through [`Network::input_grad_in`], whose backward state lives in a
/// caller-owned [`Tape`] instead of the layers. Both take `&self`, so one
/// victim is shared by reference across every worker thread, each worker
/// bringing its own tape and [`Workspace`].
pub struct Network {
    /// Everything up to (and including) the penultimate representation.
    pub features: Sequential,
    /// The final linear head mapping features to logits.
    pub classifier: Sequential,
    arch: Architecture,
}

/// Process-wide count of [`Network`] clones, incremented by every
/// `Network::clone`.
static NETWORK_CLONES: AtomicUsize = AtomicUsize::new(0);

/// Process-wide number of [`Network`] clones made so far.
///
/// A diagnostic counter for the shared-nothing scaling contract: the
/// parallel inspection engine fans per-class workers out over one
/// `&Network`, and the determinism suite pins "inspect spawns **zero**
/// model clones" by sampling this counter around an inspection. (Relaxed
/// ordering — the counter is a test probe, not a synchronisation point.)
pub fn network_clone_count() -> usize {
    NETWORK_CLONES.load(Ordering::Relaxed)
}

impl Clone for Network {
    /// Clones parameters and topology (layer clones drop transient caches;
    /// see [`Layer::clone_box`]) and bumps [`network_clone_count`].
    fn clone(&self) -> Self {
        NETWORK_CLONES.fetch_add(1, Ordering::Relaxed);
        Network {
            features: self.features.clone(),
            classifier: self.classifier.clone(),
            arch: self.arch,
        }
    }
}

impl Network {
    /// The architecture this network was built from.
    pub fn arch(&self) -> Architecture {
        self.arch
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.arch.num_classes
    }

    /// Expected input shape `(C, H, W)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.arch.input
    }

    /// Logits for a batch `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the architecture.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (c, h, w) = self.arch.input;
        assert_eq!(
            &x.shape()[1..],
            &[c, h, w],
            "Network: expected input [N,{c},{h},{w}], got {:?}",
            x.shape()
        );
        let feats = self.features.forward(x, mode);
        self.classifier.forward(&feats, mode)
    }

    /// Penultimate (feature-space) activations for a batch.
    pub fn penultimate(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.features.forward(x, mode)
    }

    /// Backward pass from `dL/dlogits` to `dL/dinput`, accumulating
    /// parameter gradients along the way.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g_feat = self.classifier.backward(grad_logits);
        self.features.backward(&g_feat)
    }

    /// Backward pass computing only `dL/dinput` — parameter gradients are
    /// skipped, not accumulated (see [`Layer::input_backward`]). The input
    /// gradient is bit-identical to [`Network::backward`]'s.
    pub fn input_backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g_feat = self.classifier.input_backward(grad_logits);
        self.features.input_backward(&g_feat)
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        self.features.zero_grad();
        self.classifier.zero_grad();
    }

    /// Total number of scalar parameters. `&self` — it only visits shapes.
    pub fn param_count(&self) -> usize {
        self.features.param_count() + self.classifier.param_count()
    }

    /// Inference-only logits for a batch `[N, C, H, W]`: bit-identical to
    /// `forward(x, Mode::Eval)` with none of its side effects (no cache
    /// writes, no allocation once `ws` is warm). See [`Layer::infer`] for
    /// the full contract.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the architecture.
    pub fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (c, h, w) = self.arch.input;
        assert_eq!(
            &x.shape()[1..],
            &[c, h, w],
            "Network: expected input [N,{c},{h},{w}], got {:?}",
            x.shape()
        );
        let feats = self.features.infer(x, ws);
        let logits = self.classifier.infer(&feats, ws);
        ws.recycle(feats);
        logits
    }

    /// Predicted class per batch row (eval mode, cache-free).
    ///
    /// Convenience wrapper over [`Network::predict_in`] with a throwaway
    /// [`Workspace`]; hot loops should hold a workspace and call
    /// `predict_in` so scratch buffers are reused across calls.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.predict_in(x, &mut Workspace::new())
    }

    /// Predicted class per batch row, drawing scratch from `ws`.
    pub fn predict_in(&self, x: &Tensor, ws: &mut Workspace) -> Vec<usize> {
        let logits = self.infer(x, ws);
        let preds = ops::argmax_rows(&logits);
        ws.recycle(logits);
        preds
    }

    /// Predicted class of a **single** image `[C, H, W]` — the replacement
    /// for the awkward `predict(&Tensor::stack(slice::from_ref(&x)))[0]`
    /// batch-of-one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-3 or its shape mismatches the
    /// architecture.
    pub fn predict_one(&self, x: &Tensor) -> usize {
        self.predict_one_in(x, &mut Workspace::new())
    }

    /// [`Network::predict_one`] drawing scratch from `ws` (the per-sample
    /// prediction loop of the UAP sweep runs through this).
    pub fn predict_one_in(&self, x: &Tensor, ws: &mut Workspace) -> usize {
        assert_eq!(x.ndim(), 3, "predict_one: x must be [C,H,W]");
        let mut batch = ws.take_dirty(x.len());
        batch.copy_from_slice(x.data());
        let shape4: Vec<usize> = std::iter::once(1)
            .chain(x.shape().iter().copied())
            .collect();
        let batch = Tensor::from_vec(batch, &shape4);
        let logits = self.infer(&batch, ws);
        let pred = ops::argmax_row(logits.data());
        ws.recycle(batch);
        ws.recycle(logits);
        pred
    }

    /// Gradient of an arbitrary logit-space loss with respect to the input.
    ///
    /// Runs an eval-mode forward, feeds `grad_of(logits)` backwards through
    /// [`Network::input_backward`] — parameter gradients are never computed
    /// on this path, they are a side effect the input-space defenses never
    /// want — and returns `dL/dx`. Parameter gradients are left zeroed, as
    /// they always were.
    ///
    /// This is the legacy `&mut` route (backward state cached inside the
    /// layers). The detection pipeline uses [`Network::input_grad_in`],
    /// which computes the **bit-identical** gradient through a caller-owned
    /// [`Tape`] with the model only read; this method remains as the
    /// reference the equivalence suite checks the tape route against.
    pub fn input_grad(
        &mut self,
        x: &Tensor,
        grad_of: impl FnOnce(&Tensor) -> Tensor,
    ) -> (Tensor, Tensor) {
        let logits = self.forward(x, Mode::Eval);
        let g = grad_of(&logits);
        let gi = self.input_backward(&g);
        // input_backward accumulates nothing, but `input_grad` has always
        // guaranteed zeroed parameter gradients on return even if the
        // caller left stale ones behind — keep that contract.
        self.zero_grad();
        (logits, gi)
    }

    /// Read-only inference that records backward state on `tape`: the
    /// bit-identical logits of [`Network::infer`] (and therefore of an
    /// eval-mode forward), with every layer's gradient prerequisites
    /// captured as tape frames instead of written into the model. Follow
    /// with [`Network::grad`] on the same tape. See
    /// [`Layer::infer_recording`] for the full contract.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the architecture.
    pub fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let (c, h, w) = self.arch.input;
        assert_eq!(
            &x.shape()[1..],
            &[c, h, w],
            "Network: expected input [N,{c},{h},{w}], got {:?}",
            x.shape()
        );
        let feats = self.features.infer_recording(x, tape, ws);
        let logits = self.classifier.infer_recording(&feats, tape, ws);
        ws.recycle(feats);
        logits
    }

    /// Backward pass from `dL/dlogits` to `dL/dinput` over the state the
    /// most recent [`Network::infer_recording`] left on `tape` — the
    /// read-only counterpart of [`Network::input_backward`], bit-identical
    /// to it (see [`Layer::grad`]). Parameter gradients are never touched.
    ///
    /// # Panics
    ///
    /// Panics without a matching `infer_recording` on the tape.
    pub fn grad(&self, grad_logits: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let g_feat = self.classifier.grad(grad_logits, tape, ws);
        let gi = self.features.grad(&g_feat, tape, ws);
        ws.recycle(g_feat);
        gi
    }

    /// [`Network::input_grad`] through the read-only tape route: one
    /// recorded inference plus one tape backward, drawing all scratch from
    /// `tape`/`ws` (both fully reused across calls — a warm DeepFool loop
    /// allocates nothing here).
    ///
    /// Takes `&self`: the model is never written, so **one network can
    /// serve concurrent gradient computations on every worker thread**,
    /// each worker holding its own tape and workspace. Logits and `dL/dx`
    /// are bit-identical to the legacy `&mut` [`Network::input_grad`], and
    /// parameter gradients are trivially untouched (there is no mutable
    /// access to touch them with).
    /// The loss-gradient closure receives the workspace so it can draw its
    /// `dL/dlogits` tensor from the pool; that tensor is recycled here once
    /// the backward pass has consumed it.
    pub fn input_grad_in(
        &self,
        x: &Tensor,
        grad_of: impl FnOnce(&Tensor, &mut Workspace) -> Tensor,
        tape: &mut Tape,
        ws: &mut Workspace,
    ) -> (Tensor, Tensor) {
        tape.begin();
        let logits = self.infer_recording(x, tape, ws);
        let g = grad_of(&logits, ws);
        let gi = self.grad(&g, tape, ws);
        ws.recycle(g);
        (logits, gi)
    }

    /// Converts every GEMM weight (Linear / Conv2d) to the given storage
    /// dtype, freeing the dense copies. `Dtype::F32` is a no-op. The network
    /// becomes inference-only: training entry points panic afterwards.
    pub fn quantize_weights(&mut self, dtype: Dtype) {
        Layer::quantize_weights(&mut self.features, dtype);
        Layer::quantize_weights(&mut self.classifier, dtype);
    }

    /// The storage dtype of the GEMM weights: `Some(F16)`/`Some(Q8)` when
    /// every quantizable weight carries that payload, `Some(F32)` for a
    /// dense network, `None` for a mixed state (which only a bug or a
    /// hand-edited bundle can produce).
    pub fn weight_dtype(&mut self) -> Option<Dtype> {
        let mut dtype: Option<Dtype> = Some(Dtype::F32);
        let mut first = true;
        self.visit_state_q(&mut |_, slot| {
            if let StateSlot::Weight { quant, .. } = slot {
                let d = quant.as_ref().map_or(Dtype::F32, |q| q.dtype());
                if first {
                    dtype = Some(d);
                    first = false;
                } else if dtype != Some(d) {
                    dtype = None;
                }
            }
        });
        dtype
    }

    /// Bytes of tensor payload this network keeps resident: dense state
    /// plus quantized payloads plus the gradient buffers optimisers see.
    /// This is the model component of a serve-cache entry's footprint.
    pub fn resident_bytes(&mut self) -> usize {
        // Values (incl. batch-norm running stats) via the state walk; the
        // Weight arm adds the quantized payload. Gradient buffers via
        // visit_params — which skips quantized weights, whose grads are
        // empty anyway — so nothing is counted twice.
        let mut bytes = 0usize;
        self.visit_state_q(&mut |_, slot| match slot {
            StateSlot::Dense(t) => bytes += 4 * t.len(),
            StateSlot::Weight { dense, quant, .. } => {
                bytes += 4 * dense.len();
                if let Some(q) = quant {
                    bytes += q.byte_len();
                }
            }
        });
        self.visit_params(&mut |slot| bytes += 4 * slot.grad.len());
        bytes
    }
}

impl Layer for Network {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        Network::forward(self, x, mode)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        Network::backward(self, grad_out)
    }
    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        Network::input_backward(self, grad_out)
    }
    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        Network::infer(self, x, ws)
    }
    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        Network::infer_recording(self, x, tape, ws)
    }
    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        Network::grad(self, grad_out, tape, ws)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        self.features.visit_params(f);
        self.classifier.visit_params(f);
    }
    fn param_count(&self) -> usize {
        Network::param_count(self)
    }
    fn name(&self) -> &'static str {
        "network"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        self.features.visit_state(f);
        self.classifier.visit_state(f);
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        self.features.visit_state_q(f);
        self.classifier.visit_state_q(f);
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        Network::quantize_weights(self, dtype);
    }
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

/// Paper §A.7: two conv layers (ReLU + 2x2 average pooling) and two fully
/// connected layers. Kernel size adapts to small inputs so the second
/// convolution always fits.
fn build_basic_cnn(arch: &Architecture, rng: &mut impl Rng) -> (Sequential, usize) {
    let (c, h, w) = arch.input;
    let wdt = arch.width;
    let k = if h.min(w) >= 20 { 5 } else { 3 };
    let mut cur_h = h;
    let mut cur_w = w;
    let mut seq = Sequential::new();
    seq = seq.push(Conv2d::new(c, wdt, k, 1, 0, true, rng));
    cur_h -= k - 1;
    cur_w -= k - 1;
    seq = seq.push(ReLU::new());
    if cur_h >= 2 && cur_w >= 2 {
        seq = seq.push(AvgPool2d::new(2, 2));
        cur_h = (cur_h - 2) / 2 + 1;
        cur_w = (cur_w - 2) / 2 + 1;
    }
    seq = seq.push(Conv2d::new(wdt, 2 * wdt, k, 1, 0, true, rng));
    cur_h -= k - 1;
    cur_w -= k - 1;
    seq = seq.push(ReLU::new());
    if cur_h >= 2 && cur_w >= 2 {
        seq = seq.push(AvgPool2d::new(2, 2));
        cur_h = (cur_h - 2) / 2 + 1;
        cur_w = (cur_w - 2) / 2 + 1;
    }
    let flat = 2 * wdt * cur_h * cur_w;
    let hidden = flat.clamp(32, 512);
    let seq = seq
        .push(Flatten::new())
        .push(Linear::new(flat, hidden, rng))
        .push(ReLU::new());
    (seq, hidden)
}

fn conv_bn_act(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    rng: &mut impl Rng,
) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(in_ch, out_ch, k, stride, pad, false, rng))
        .push(BatchNorm2d::new(out_ch))
        .push(ReLU::new())
}

/// One ResNet basic block (two 3x3 convs) with optional downsampling.
fn basic_block(in_ch: usize, out_ch: usize, stride: usize, rng: &mut impl Rng) -> Sequential {
    let main = Sequential::new()
        .push(Conv2d::new(in_ch, out_ch, 3, stride, 1, false, rng))
        .push(BatchNorm2d::new(out_ch))
        .push(ReLU::new())
        .push(Conv2d::new(out_ch, out_ch, 3, 1, 1, false, rng))
        .push(BatchNorm2d::new(out_ch));
    let block = if stride != 1 || in_ch != out_ch {
        let shortcut = Sequential::new()
            .push(Conv2d::new(in_ch, out_ch, 1, stride, 0, false, rng))
            .push(BatchNorm2d::new(out_ch));
        Residual::with_shortcut(main, shortcut)
    } else {
        Residual::new(main)
    };
    Sequential::new().push(block).push(ReLU::new())
}

/// ResNet-18 topology: stem + 4 stages × 2 basic blocks + GAP.
fn build_resnet18(arch: &Architecture, rng: &mut impl Rng) -> (Sequential, usize) {
    let (c, _, _) = arch.input;
    let w = arch.width;
    let widths = [w, 2 * w, 4 * w, 8 * w];
    let mut seq = conv_bn_act(c, w, 3, 1, 1, rng);
    let mut in_ch = w;
    for (stage, &out_ch) in widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        seq = seq.push(basic_block(in_ch, out_ch, stride, rng));
        seq = seq.push(basic_block(out_ch, out_ch, 1, rng));
        in_ch = out_ch;
    }
    let seq = seq.push(GlobalAvgPool::new());
    (seq, in_ch)
}

/// VGG-16 topology: conv groups 2-2-3-3-3 with max pooling between groups.
/// Pools are skipped once the spatial size reaches 1 so small inputs work.
fn build_vgg16(arch: &Architecture, rng: &mut impl Rng) -> (Sequential, usize) {
    let (c, h, _) = arch.input;
    let w = arch.width;
    let groups: [(usize, usize); 5] = [(2, w), (2, 2 * w), (3, 4 * w), (3, 8 * w), (3, 8 * w)];
    let mut seq = Sequential::new();
    let mut in_ch = c;
    let mut cur = h;
    for &(convs, out_ch) in &groups {
        for _ in 0..convs {
            seq = seq
                .push(Conv2d::new(in_ch, out_ch, 3, 1, 1, false, rng))
                .push(BatchNorm2d::new(out_ch))
                .push(ReLU::new());
            in_ch = out_ch;
        }
        if cur >= 2 {
            seq = seq.push(MaxPool2d::new(2, 2));
            cur /= 2;
        }
    }
    let flat = in_ch * cur * cur;
    let hidden = (4 * w).max(16);
    let seq = seq
        .push(Flatten::new())
        .push(Linear::new(flat, hidden, rng))
        .push(ReLU::new());
    (seq, hidden)
}

/// One MBConv block: 1x1 expand → depthwise k×k → squeeze-excite → 1x1
/// project, residual when the shape is preserved.
fn mbconv(
    in_ch: usize,
    out_ch: usize,
    expand: usize,
    k: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> Sequential {
    let mid = in_ch * expand;
    let mut main = Sequential::new();
    if expand != 1 {
        main = main
            .push(Conv2d::new(in_ch, mid, 1, 1, 0, false, rng))
            .push(BatchNorm2d::new(mid))
            .push(SiLU::new());
    }
    main = main
        .push(DepthwiseConv2d::new(mid, k, stride, k / 2, false, rng))
        .push(BatchNorm2d::new(mid))
        .push(SiLU::new())
        .push(SqueezeExcite::new(mid, 4, rng))
        .push(Conv2d::new(mid, out_ch, 1, 1, 0, false, rng))
        .push(BatchNorm2d::new(out_ch));
    if stride == 1 && in_ch == out_ch {
        Sequential::new().push(Residual::new(main))
    } else {
        main
    }
}

/// EfficientNet-B0 topology (width-scaled): stem, four MBConv stages, 1x1
/// head, GAP.
fn build_efficientnet_b0(arch: &Architecture, rng: &mut impl Rng) -> (Sequential, usize) {
    let (c, _, _) = arch.input;
    let w = arch.width;
    // (expand, out_ch, kernel, stride) per stage, mirroring B0's progression.
    let stages: [(usize, usize, usize, usize); 4] = [
        (1, w, 3, 1),
        (4, 2 * w, 3, 2),
        (4, 3 * w, 5, 2),
        (4, 4 * w, 3, 2),
    ];
    let mut seq = Sequential::new()
        .push(Conv2d::new(c, w, 3, 1, 1, false, rng))
        .push(BatchNorm2d::new(w))
        .push(SiLU::new());
    let mut in_ch = w;
    for &(expand, out_ch, k, stride) in &stages {
        seq = seq.push(mbconv(in_ch, out_ch, expand, k, stride, rng));
        in_ch = out_ch;
    }
    let head = 8 * w;
    let seq = seq
        .push(Conv2d::new(in_ch, head, 1, 1, 0, false, rng))
        .push(BatchNorm2d::new(head))
        .push(SiLU::new())
        .push(GlobalAvgPool::new());
    (seq, head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(kind: ModelKind, input: (usize, usize, usize), classes: usize, width: usize) {
        let mut rng = StdRng::seed_from_u64(42);
        let arch = Architecture::new(kind, input, classes).with_width(width);
        let mut net = arch.build(&mut rng);
        let x = Tensor::from_fn(&[2, input.0, input.1, input.2], |i| {
            ((i as f32) * 0.1).sin()
        });
        let logits = net.forward(&x, Mode::Train);
        assert_eq!(logits.shape(), &[2, classes], "{kind:?} logits shape");
        assert!(logits.all_finite(), "{kind:?} produced non-finite logits");
        // Input gradients flow end to end.
        let gi = net.backward(&Tensor::ones(logits.shape()));
        assert_eq!(gi.shape(), x.shape(), "{kind:?} input grad shape");
        assert!(gi.all_finite(), "{kind:?} produced non-finite input grads");
        assert!(net.param_count() > 0);
        // Eval mode also works and supports backward.
        let logits_eval = net.forward(&x, Mode::Eval);
        assert!(logits_eval.all_finite());
        let gi = net.backward(&Tensor::ones(logits_eval.shape()));
        assert!(gi.all_finite());
    }

    #[test]
    fn basic_cnn_on_mnist_shape() {
        check(ModelKind::BasicCnn, (1, 28, 28), 10, 8);
    }

    #[test]
    fn basic_cnn_on_small_input() {
        check(ModelKind::BasicCnn, (1, 12, 12), 4, 4);
    }

    #[test]
    fn resnet18_on_cifar_shape() {
        check(ModelKind::ResNet18, (3, 16, 16), 10, 4);
    }

    #[test]
    fn vgg16_on_cifar_shape() {
        check(ModelKind::Vgg16, (3, 16, 16), 10, 4);
    }

    #[test]
    fn efficientnet_on_imagenet_shape() {
        check(ModelKind::EfficientNetB0, (3, 24, 24), 10, 4);
    }

    #[test]
    fn basic_cnn_matches_paper_dimensions() {
        // Paper §A.7: 28x28x1 input, conv(1,16,5) + pool + conv(16,32,5) +
        // pool gives 32·4·4 = 512 flat features.
        let mut rng = StdRng::seed_from_u64(0);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 28, 28), 10).with_width(16);
        let mut net = arch.build(&mut rng);
        let x = Tensor::zeros(&[1, 1, 28, 28]);
        let feats = net.penultimate(&x, Mode::Eval);
        assert_eq!(feats.shape(), &[1, 512]);
    }

    #[test]
    fn penultimate_feeds_classifier() {
        let mut rng = StdRng::seed_from_u64(1);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 3).with_width(4);
        let mut net = arch.build(&mut rng);
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| (i as f32 * 0.05).cos());
        let feats = net.penultimate(&x, Mode::Eval);
        let via_head = net.classifier.forward(&feats, Mode::Eval);
        let direct = net.forward(&x, Mode::Eval);
        for (a, b) in via_head.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn input_grad_discards_param_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 3).with_width(4);
        let mut net = arch.build(&mut rng);
        let x = Tensor::from_fn(&[1, 1, 12, 12], |i| (i as f32 * 0.07).sin());
        let (logits, gi) = net.input_grad(&x, |l| Tensor::ones(l.shape()));
        assert_eq!(logits.shape(), &[1, 3]);
        assert_eq!(gi.shape(), x.shape());
        let mut max_param_grad = 0.0f32;
        net.visit_params(&mut |s| max_param_grad = max_param_grad.max(s.grad.linf_norm()));
        assert_eq!(max_param_grad, 0.0, "param grads must be zeroed");
    }

    #[test]
    #[should_panic(expected = "expected input")]
    fn network_rejects_wrong_input_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 3).with_width(4);
        let mut net = arch.build(&mut rng);
        let _ = net.forward(&Tensor::zeros(&[1, 3, 12, 12]), Mode::Eval);
    }

    #[test]
    fn quantized_network_reports_dtype_and_shrinks() {
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 3).with_width(4);
        let mut net = arch.build(&mut StdRng::seed_from_u64(5));
        assert_eq!(net.weight_dtype(), Some(Dtype::F32));
        let params = net.param_count();
        let dense_bytes = net.resident_bytes();
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| (i as f32 * 0.03).sin());
        let mut ws = Workspace::new();
        let dense_logits = net.infer(&x, &mut ws);

        net.quantize_weights(Dtype::Q8);
        assert_eq!(net.weight_dtype(), Some(Dtype::Q8));
        assert_eq!(net.param_count(), params, "logical count must not change");
        let q_bytes = net.resident_bytes();
        assert!(
            q_bytes * 2 < dense_bytes,
            "Q8 resident bytes {q_bytes} should be well under half of {dense_bytes}"
        );
        let q_logits = net.infer(&x, &mut ws);
        assert!(q_logits.all_finite());
        for (a, b) in q_logits.data().iter().zip(dense_logits.data()) {
            assert!((a - b).abs() < 0.25, "Q8 logit drifted too far: {a} vs {b}");
        }
    }

    #[test]
    fn deterministic_build_given_seed() {
        let arch = Architecture::new(ModelKind::ResNet18, (3, 8, 8), 4).with_width(2);
        let mut a = arch.build(&mut StdRng::seed_from_u64(9));
        let mut b = arch.build(&mut StdRng::seed_from_u64(9));
        let x = Tensor::from_fn(&[1, 3, 8, 8], |i| (i as f32 * 0.11).sin());
        let ya = a.forward(&x, Mode::Eval);
        let yb = b.forward(&x, Mode::Eval);
        assert_eq!(ya.data(), yb.data());
    }
}
