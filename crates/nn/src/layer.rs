//! The [`Layer`] trait: forward caching, backward gradients, parameter
//! visitation, the cache-free [`Layer::infer`] path, and the read-only
//! tape-backed gradient route ([`Layer::infer_recording`] /
//! [`Layer::grad`]).

use usb_tensor::{Dtype, QTensor, Tape, Tensor, Workspace};

/// Whether a forward pass runs in training mode (batch statistics, caches
/// for backward) or evaluation mode (running statistics).
///
/// Defenses backpropagate through models in [`Mode::Eval`] — batch-norm
/// layers must therefore support `backward` after an eval-mode forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: use batch statistics, update running averages.
    Train,
    /// Inference: use running statistics; backward still works and
    /// differentiates the frozen affine transform.
    Eval,
}

/// A mutable view of one persistent-state tensor as visited by
/// [`Layer::visit_state_q`], distinguishing the slots that support
/// low-precision storage from those that are always dense.
///
/// Only the *quantizable weights* — the GEMM operands of [`crate::layers::Linear`]
/// and [`crate::layers::Conv2d`] — are `Weight` slots; biases, batch-norm
/// parameters and running statistics, and depthwise kernels (tiny
/// `[C, 1, KH, KW]` tensors whose kernels read them scalar-wise) stay
/// `Dense` and therefore always persist in exact f32.
pub enum StateSlot<'a> {
    /// A state tensor that is always stored dense (exact f32).
    Dense(&'a mut Tensor),
    /// A quantizable GEMM weight. When `quant` is `Some`, the layer is in
    /// low-precision inference mode: `dense` and `grad` are empty (their
    /// buffers freed) and the kernels read `quant` through the workspace
    /// dequant-panel cache.
    Weight {
        /// The dense f32 value (empty while `quant` is populated).
        dense: &'a mut Tensor,
        /// The gradient accumulator (freed alongside `dense` on
        /// quantization — quantized weights are inference-only).
        grad: &'a mut Tensor,
        /// The quantized payload, if the layer holds one.
        quant: &'a mut Option<QTensor>,
    },
}

/// A mutable view of one parameter tensor and its gradient accumulator.
pub struct ParamSlot<'a> {
    /// The parameter values, updated by optimizers.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by `backward`, consumed by optimizers.
    pub grad: &'a mut Tensor,
    /// Whether weight decay should apply (false for biases and batch-norm
    /// affine parameters, following common practice).
    pub decay: bool,
}

/// A differentiable module.
///
/// # Contract
///
/// * `forward` must be called before `backward`; the layer caches whatever
///   intermediate state the gradient needs. One forward supports exactly one
///   backward (calling `backward` twice without a fresh forward is
///   unspecified but must not panic unsafely).
/// * `backward(grad_out)` returns `dL/d input` for the *most recent* forward
///   batch and **adds** parameter gradients into the slots visited by
///   [`Layer::visit_params`]. Call [`Layer::zero_grad`] between optimizer
///   steps.
/// * Layers are plain data (`Send + Sync`), so trained models can be moved
///   across threads, shared by reference, and cached in `OnceLock`
///   fixtures; [`Layer::clone_box`] makes whole models cloneable behind
///   `Box<dyn Layer>`, which is how the parallel inspection engine hands
///   each worker thread its own victim copy.
pub trait Layer: Send + Sync {
    /// Computes the layer output for `x`.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_out = dL/d output` backwards, returning
    /// `dL/d input` and accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before any `forward` or with a
    /// gradient whose shape does not match the last output.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// The `dL/d input` of [`Layer::backward`] **without** accumulating
    /// parameter gradients.
    ///
    /// Input-space optimisation (DeepFool, trigger refinement, NC/TABOR)
    /// only ever wants the input gradient; the parameter gradients the
    /// plain `backward` also produces are discarded immediately. Skipping
    /// them drops entire kernels on the hot path — a convolution layer
    /// avoids the im2col of its cached input *and* the weight GEMM. The
    /// returned input gradient is **bit-identical** to `backward`'s (same
    /// kernels, same order); only the parameter-gradient side effect is
    /// gone.
    ///
    /// The default forwards to [`Layer::backward`] (correct for parameter
    /// free layers); layers with parameters and composites override it.
    ///
    /// # Panics
    ///
    /// Same contract as [`Layer::backward`]: panics if called before any
    /// `forward`.
    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward(grad_out)
    }

    /// Inference-only forward pass: the **bit-identical** logits of
    /// `forward(x, Mode::Eval)` without any of its side effects.
    ///
    /// # Contract
    ///
    /// * Same values as an eval-mode [`Layer::forward`], bit for bit —
    ///   implementations go through the same kernels, never a reimplemented
    ///   approximation.
    /// * Takes `&self`: no input cloning into `cached_input`, no backward
    ///   caches, no running-statistics updates. A model can therefore be
    ///   **shared by reference across threads** for forward-only work
    ///   (each thread brings its own [`Workspace`]).
    /// * All scratch (im2col columns, matmul outputs, intermediate
    ///   activations) is drawn from `ws`; after a first warming call at a
    ///   given input geometry, repeat calls allocate nothing. Callers that
    ///   no longer need the returned tensor can hand it back via
    ///   [`Workspace::recycle`].
    /// * `backward` after `infer` is **not** supported — gradients need the
    ///   caches only `forward` populates. For a read-only gradient, use
    ///   [`Layer::infer_recording`] + [`Layer::grad`] instead.
    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor;

    /// [`Layer::infer`] that additionally records this layer's backward
    /// state — what `forward` would have stashed in `cached_input` and
    /// friends — as a frame on the caller-owned `tape`.
    ///
    /// # Contract
    ///
    /// * Output values are **bit-identical** to [`Layer::infer`] (and
    ///   therefore to an eval-mode [`Layer::forward`]): implementations go
    ///   through the same kernels, recording is a pure side channel.
    /// * Takes `&self`, like `infer`: the model is only read, so one model
    ///   can be shared by reference across threads, each worker bringing
    ///   its own tape and workspace.
    /// * Composites recurse in a fixed order and leaves push exactly the
    ///   frames their own [`Layer::grad`] pops — strict stack discipline,
    ///   so `grad` must be called with the tape exactly as this call left
    ///   it.
    /// * Frames reuse tape buffers: after one warm-up record→grad cycle at
    ///   a given geometry, repeat cycles allocate nothing.
    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor;

    /// Propagates `grad_out = dL/d output` backwards through the state
    /// recorded by the **most recent** [`Layer::infer_recording`] on
    /// `tape`, returning `dL/d input` — the read-only counterpart of
    /// [`Layer::input_backward`].
    ///
    /// # Contract
    ///
    /// * The returned input gradient is **bit-identical** to what
    ///   [`Layer::input_backward`] returns after an eval-mode `forward`
    ///   with the same input: both run the same kernels in the same order,
    ///   only the location of the recorded state differs.
    /// * Parameter gradients are never touched (there is nowhere to
    ///   accumulate them through `&self`).
    /// * Pops exactly the frames `infer_recording` pushed and recycles
    ///   them, leaving the tape ready for the next recording.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `infer_recording` (empty tape)
    /// or with a gradient whose shape does not match the recorded output.
    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor;

    /// Visits every `(parameter, gradient)` pair owned by this layer (and
    /// recursively by sub-layers), in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>));

    /// Resets all accumulated parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |slot| slot.grad.fill(0.0));
    }

    /// Human-readable layer name for debugging.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters (for reporting). Takes `&self` —
    /// it only reads shapes.
    ///
    /// Deliberately has **no default**: parameter visitation is `&mut`
    /// (it hands out gradient slots), so a correct shared-reference count
    /// must be written per layer — parameter-free layers return `0`,
    /// composites sum their children — and a forgotten implementation is
    /// a compile error rather than a silent zero. The equivalence test
    /// suite cross-checks the implementations against a
    /// [`Layer::visit_params`] sweep for the whole model zoo.
    fn param_count(&self) -> usize;

    /// Clones this layer behind a fresh box. Clones carry all *persistent*
    /// state — parameters, gradients, running statistics — but start with
    /// **empty forward caches and scratch workspaces**: caches only matter
    /// for a `backward` that immediately follows the same object's
    /// `forward`, so copying them into a clone is pure memory overhead
    /// (this is what keeps per-worker victim clones in the parallel
    /// inspection engine cheap). Implementations are one line on a `Clone`
    /// type: `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Visits every tensor that defines this layer's *persistent state* —
    /// parameter values plus any non-parameter buffers (e.g. batch-norm
    /// running statistics) — in a deterministic order, tagging each with
    /// the owning layer's [`Layer::name`].
    ///
    /// This is the traversal the [`crate::serde`] state-dict format is
    /// built on: two structurally identical models visit the same
    /// `(kind, shape)` sequence, so state saved from one can be loaded
    /// into the other. Gradients and forward caches are transient and are
    /// deliberately *not* visited.
    ///
    /// The default implementation visits the parameter values from
    /// [`Layer::visit_params`]; leaf layers with extra buffers and
    /// composite layers (which must recurse so sub-layer kinds are
    /// reported, not their own) override it.
    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        let kind = self.name();
        self.visit_params(&mut |slot| f(kind, slot.value));
    }

    /// Dtype-aware sibling of [`Layer::visit_state`]: visits the same
    /// tensors, in the same order, with the same kind tags, but hands out
    /// [`StateSlot`]s so callers can see (and install) quantized payloads
    /// on the slots that support them.
    ///
    /// The default wraps [`Layer::visit_state`], tagging every slot
    /// [`StateSlot::Dense`] — correct for every layer without a
    /// quantizable GEMM weight. [`crate::layers::Linear`] and
    /// [`crate::layers::Conv2d`] override it to expose their weight as a
    /// [`StateSlot::Weight`]; composites recurse.
    ///
    /// Invariant (pinned by the serde tests): the `(kind, slot)` sequence
    /// of `visit_state_q` is the `(kind, tensor)` sequence of
    /// `visit_state` — element `i` of one describes element `i` of the
    /// other. The persistence layer depends on this to map records onto
    /// slots.
    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        self.visit_state(&mut |kind, tensor| f(kind, StateSlot::Dense(tensor)));
    }

    /// Converts this layer's quantizable weights to `dtype` in place,
    /// freeing their dense value and gradient buffers. After this the
    /// layer is **inference-only**: `infer`/`infer_recording`/`grad` keep
    /// working (dequantizing on the fly), while `forward`/`backward`
    /// panic and optimizers see no weight slot.
    ///
    /// The default is a no-op (layers without quantizable weights);
    /// [`Dtype::F32`] is always a no-op. Composites recurse.
    fn quantize_weights(&mut self, dtype: Dtype) {
        let _ = dtype;
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A parameter tensor paired with its gradient accumulator.
///
/// Most layers own a few of these; [`Param::slot`] adapts them to the
/// visitation API.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether weight decay applies.
    pub decay: bool,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient buffer.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad, decay }
    }

    /// Borrows this parameter as a [`ParamSlot`].
    pub fn slot(&mut self) -> ParamSlot<'_> {
        ParamSlot {
            value: &mut self.value,
            grad: &mut self.grad,
            decay: self.decay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Dummy {
        w: Param,
    }

    impl Layer for Dummy {
        fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
            x.scale(self.w.value.data()[0])
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.scale(self.w.value.data()[0])
        }
        fn infer(&self, x: &Tensor, _ws: &mut Workspace) -> Tensor {
            x.scale(self.w.value.data()[0])
        }
        fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
            let _ = tape.push();
            self.infer(x, ws)
        }
        fn grad(&self, grad_out: &Tensor, tape: &mut Tape, _ws: &mut Workspace) -> Tensor {
            let frame = tape.pop();
            tape.recycle(frame);
            grad_out.scale(self.w.value.data()[0])
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
            f(self.w.slot());
        }
        fn param_count(&self) -> usize {
            self.w.value.len()
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn param_count_and_zero_grad() {
        let mut d = Dummy {
            w: Param::new(Tensor::from_vec(vec![2.0, 3.0], &[2]), true),
        };
        assert_eq!(d.param_count(), 2);
        d.w.grad.fill(5.0);
        d.zero_grad();
        assert_eq!(d.w.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn mode_is_copy_and_comparable() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }
}
