//! Mini-batch training loop over raw `(images, labels)` tensors.
//!
//! Dataset handling (synthetic generation, poisoning) lives in higher
//! crates; this module only needs a `[N, C, H, W]` tensor and class labels.

use crate::layer::Mode;
use crate::loss::softmax_cross_entropy;
use crate::models::Network;
use crate::optim::Sgd;
use rand::seq::SliceRandom;
use rand::Rng;
use usb_tensor::{ops, par, Tensor, Workspace};

/// Hyperparameters for supervised training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl TrainConfig {
    /// The paper's TrojanZoo-default-inspired configuration, scaled to CPU:
    /// batch 96 → 32, lr 0.01 → 0.05 (smaller nets tolerate higher rates),
    /// epochs 50 → caller-chosen.
    pub fn new(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }

    /// A configuration fast enough for unit tests (5 epochs, small batches).
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }

    /// Overrides the batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "TrainConfig: zero batch size");
        self.batch_size = batch_size;
        self
    }

    /// Overrides the learning rate.
    #[must_use]
    pub fn with_lr(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "TrainConfig: non-positive lr");
        self.lr = lr;
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::new(3)
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over the epoch.
    pub loss: f64,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Trains `net` in place on `(images, labels)` and returns per-epoch stats.
///
/// Batches are reshuffled each epoch with `rng`, so runs are deterministic
/// given the seed.
///
/// # Panics
///
/// Panics if `images` is not rank-4 or label count mismatches.
pub fn fit(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    config: TrainConfig,
    rng: &mut impl Rng,
) -> Vec<EpochStats> {
    assert_eq!(images.ndim(), 4, "fit: images must be [N,C,H,W]");
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "fit: label count mismatch");
    assert!(n > 0, "fit: empty dataset");
    let mut sgd = Sgd::new(config.lr, config.momentum, config.weight_decay);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        // Step decay: ×0.3 at 60% and 85% of the schedule, stabilising the
        // end of training (mirrors the common TrojanZoo recipe).
        let decay = if epoch * 100 >= config.epochs * 85 {
            0.09
        } else if epoch * 100 >= config.epochs * 60 {
            0.3
        } else {
            1.0
        };
        sgd.lr = config.lr * decay;
        order.shuffle(rng);
        let mut epoch_loss = 0.0f64;
        let mut hits = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let (bx, by) = gather_batch(images, labels, chunk);
            let logits = net.forward(&bx, Mode::Train);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &by);
            epoch_loss += loss as f64 * chunk.len() as f64;
            hits += ops::argmax_rows(&logits)
                .iter()
                .zip(&by)
                .filter(|(p, l)| p == l)
                .count();
            net.zero_grad();
            let _ = net.backward(&dlogits);
            sgd.step(net);
        }
        history.push(EpochStats {
            loss: epoch_loss / n as f64,
            accuracy: hits as f64 / n as f64,
        });
    }
    history
}

/// Collects the rows of `images`/`labels` selected by `indices` into a
/// batch.
///
/// # Panics
///
/// Panics if an index is out of bounds.
pub fn gather_batch(images: &Tensor, labels: &[usize], indices: &[usize]) -> (Tensor, Vec<usize>) {
    let items: Vec<Tensor> = indices.iter().map(|&i| images.index_axis0(i)).collect();
    let by: Vec<usize> = indices.iter().map(|&i| labels[i]).collect();
    (Tensor::stack(&items), by)
}

/// Classification accuracy of `net` on `(images, labels)`, evaluated in
/// batches of 64.
///
/// Batches run in parallel on the [`usb_tensor::par`] worker pool (thread
/// count from `USB_THREADS` / available parallelism). Evaluation is pure
/// inference, so every worker predicts on the **same shared network** via
/// the cache-free [`Network::predict_in`] path — no model clones at all;
/// each worker only brings its own [`Workspace`] of scratch buffers. The
/// integer hit counts are summed, so the result is identical at any thread
/// count.
pub fn evaluate(net: &Network, images: &Tensor, labels: &[usize]) -> f64 {
    evaluate_with_workers(net, images, labels, par::resolve_workers(0))
}

/// [`evaluate`] at an explicit worker count instead of the ambient
/// `USB_THREADS` / available-parallelism resolution — the entry point for
/// anything that pins its own thread budget (and for asserting the
/// thread-count invariance without mutating process environment).
pub fn evaluate_with_workers(
    net: &Network,
    images: &Tensor,
    labels: &[usize],
    workers: usize,
) -> f64 {
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "evaluate: label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let indices: Vec<usize> = (0..n).collect();
    let chunks: Vec<&[usize]> = indices.chunks(64).collect();
    let score = |ws: &mut Workspace, chunk: &[usize]| -> usize {
        let (bx, by) = gather_batch(images, labels, chunk);
        let preds = net.predict_in(&bx, ws);
        preds.iter().zip(&by).filter(|(p, l)| p == l).count()
    };
    let workers = workers.max(1).min(chunks.len());
    let hits: usize = if workers <= 1 {
        let mut ws = Workspace::new();
        chunks.iter().map(|chunk| score(&mut ws, chunk)).sum()
    } else {
        // One contiguous stripe of batches (and one workspace) per worker.
        let stripe = chunks.len().div_ceil(workers);
        let stripes: Vec<&[&[usize]]> = chunks.chunks(stripe).collect();
        par::par_map(workers, &stripes, |_, stripe| {
            let mut ws = Workspace::new();
            stripe
                .iter()
                .map(|chunk| score(&mut ws, chunk))
                .sum::<usize>()
        })
        .into_iter()
        .sum()
    };
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Architecture, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use usb_tensor::init;

    /// Tiny two-class dataset: class 0 bright top half, class 1 bright
    /// bottom half, plus noise.
    fn toy_dataset(n: usize, rng: &mut impl Rng) -> (Tensor, Vec<usize>) {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let mut img = init::uniform(&[1, 8, 8], 0.0, 0.15, rng);
            for y in 0..8 {
                for x in 0..8 {
                    let bright = if class == 0 { y < 4 } else { y >= 4 };
                    if bright {
                        *img.at_mut(&[0, y, x]) += 0.7;
                    }
                }
            }
            images.push(img);
            labels.push(class);
        }
        (Tensor::stack(&images), labels)
    }

    #[test]
    fn training_learns_separable_toy_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let (images, labels) = toy_dataset(64, &mut rng);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 8, 8), 2).with_width(4);
        let mut net = arch.build(&mut rng);
        let before = evaluate(&net, &images, &labels);
        let stats = fit(&mut net, &images, &labels, TrainConfig::fast(), &mut rng);
        let after = evaluate(&net, &images, &labels);
        assert!(after > 0.9, "accuracy {before} -> {after}, stats {stats:?}");
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss + 1e-6,
            "loss should not increase: {stats:?}"
        );
    }

    #[test]
    fn gather_batch_selects_rows() {
        let images = Tensor::from_fn(&[3, 1, 2, 2], |i| i as f32);
        let labels = vec![7, 8, 9];
        let (bx, by) = gather_batch(&images, &labels, &[2, 0]);
        assert_eq!(bx.shape(), &[2, 1, 2, 2]);
        assert_eq!(by, vec![9, 7]);
        assert_eq!(bx.index_axis0(0).data()[0], 8.0);
    }

    #[test]
    fn evaluate_on_untrained_model_is_near_chance() {
        let mut rng = StdRng::seed_from_u64(5);
        let (images, labels) = toy_dataset(32, &mut rng);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 8, 8), 2).with_width(4);
        let net = arch.build(&mut rng);
        let acc = evaluate(&net, &images, &labels);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_rejects_empty_dataset() {
        let mut rng = StdRng::seed_from_u64(6);
        let arch = Architecture::new(ModelKind::BasicCnn, (1, 8, 8), 2).with_width(4);
        let mut net = arch.build(&mut rng);
        let _ = fit(
            &mut net,
            &Tensor::zeros(&[0, 1, 8, 8]),
            &[],
            TrainConfig::fast(),
            &mut rng,
        );
    }
}
