//! Optimizers: SGD with momentum and Adam.
//!
//! Two APIs are provided:
//!
//! * [`Sgd`] / [`Adam`] step a whole [`Layer`] via parameter visitation —
//!   used by the model-training loops.
//! * [`TensorAdam`] steps a flat list of free tensors — used by the
//!   defenses, whose optimisation variables (mask, pattern, UAP) are not
//!   layer parameters.

use crate::layer::Layer;
use usb_tensor::kernels;
use usb_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and decoupled weight
/// decay (applied only to parameters whose slot has `decay = true`).
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Sgd: non-positive learning rate");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step using the gradients currently accumulated in
    /// `model`, then leaves the gradients untouched (callers usually follow
    /// with [`Layer::zero_grad`]).
    pub fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |slot| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(slot.value.shape()));
            }
            let v = &mut velocity[idx];
            let vd = v.data_mut();
            let pd = slot.value.data_mut();
            let gd = slot.grad.data();
            let decay = if slot.decay { wd } else { 0.0 };
            for i in 0..pd.len() {
                let g = gd[i] + decay * pd[i];
                vd[i] = momentum * vd[i] + g;
                pd[i] -= lr * vd[i];
            }
            idx += 1;
        });
    }
}

/// Adam state for one tensor.
#[derive(Debug, Clone)]
struct AdamSlotState {
    m: Tensor,
    v: Tensor,
}

/// Adam over a model's parameters (visitation order defines state pairing,
/// which is stable because layer structure never changes during training).
#[derive(Debug)]
pub struct Adam {
    inner: TensorAdam,
    /// L2 weight-decay coefficient for decaying slots.
    pub weight_decay: f32,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's detection betas
    /// `(0.5, 0.9)` available through [`Adam::with_betas`].
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        Adam {
            inner: TensorAdam::new(lr),
            weight_decay: 0.0,
        }
    }

    /// Overrides the `(β₁, β₂)` pair.
    #[must_use]
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.inner = self.inner.with_betas(beta1, beta2);
        self
    }

    /// Sets decoupled weight decay.
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one Adam step to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.inner.t += 1;
        let mut idx = 0;
        let inner = &mut self.inner;
        let wd = self.weight_decay;
        model.visit_params(&mut |slot| {
            if inner.state.len() <= idx {
                inner.state.push(AdamSlotState {
                    m: Tensor::zeros(slot.value.shape()),
                    v: Tensor::zeros(slot.value.shape()),
                });
            }
            let decay = if slot.decay { wd } else { 0.0 };
            inner.apply(idx, slot.value, slot.grad, decay);
            idx += 1;
        });
    }
}

/// Adam over a flat list of free tensors (defense optimisation variables).
///
/// Call [`TensorAdam::step`] with matching `(params, grads)` slices; state
/// is keyed by position, so always pass the tensors in the same order.
#[derive(Debug)]
pub struct TensorAdam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: Vec<AdamSlotState>,
}

impl TensorAdam {
    /// Creates an optimizer with betas `(0.9, 0.999)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "TensorAdam: non-positive learning rate");
        TensorAdam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Overrides the `(β₁, β₂)` pair — the paper uses `(0.5, 0.9)` for
    /// detection.
    #[must_use]
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 out of range");
        assert!((0.0..1.0).contains(&beta2), "beta2 out of range");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// One Adam update over position-paired `(params, grads)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or a pair's shapes
    /// disagree.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "TensorAdam: slice mismatch");
        self.t += 1;
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            if self.state.len() <= i {
                self.state.push(AdamSlotState {
                    m: Tensor::zeros(p.shape()),
                    v: Tensor::zeros(p.shape()),
                });
            }
            self.apply(i, p, g, 0.0);
        }
    }

    /// The update only reads the gradient, so it borrows it shared — no
    /// per-step clone of `dL/dθ` (the refine loop calls this 40–80 times
    /// per class).
    fn apply(&mut self, idx: usize, value: &mut Tensor, grad: &Tensor, decay: f32) {
        let st = &mut self.state[idx];
        assert_eq!(st.m.shape(), value.shape(), "TensorAdam: state shape drift");
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let md = st.m.data_mut();
        let vd = st.v.data_mut();
        let pd = value.data_mut();
        let gd = grad.data();
        let params = kernels::AdamParams {
            b1,
            b2,
            bc1,
            bc2,
            lr,
            eps,
            decay,
        };
        if kernels::try_adam_step(pd, gd, md, vd, &params) {
            return;
        }
        for i in 0..pd.len() {
            let g = gd[i] + decay * pd[i];
            md[i] = b1 * md[i] + (1.0 - b1) * g;
            vd[i] = b2 * vd[i] + (1.0 - b2) * g * g;
            let mhat = md[i] / bc1;
            let vhat = vd[i] / bc2;
            pd[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Mode, Param, ParamSlot};

    /// y = w·x ; loss = (w·x − 1)²; single scalar parameter.
    #[derive(Clone)]
    struct Scalar {
        w: Param,
        x: f32,
    }

    impl Layer for Scalar {
        fn forward(&mut self, _x: &Tensor, _mode: Mode) -> Tensor {
            Tensor::from_vec(vec![self.w.value.data()[0] * self.x], &[1])
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            self.w.grad.data_mut()[0] += grad_out.data()[0] * self.x;
            grad_out.clone()
        }
        fn infer(&self, _x: &Tensor, _ws: &mut usb_tensor::Workspace) -> Tensor {
            Tensor::from_vec(vec![self.w.value.data()[0] * self.x], &[1])
        }
        fn infer_recording(
            &self,
            x: &Tensor,
            tape: &mut usb_tensor::Tape,
            ws: &mut usb_tensor::Workspace,
        ) -> Tensor {
            let _ = tape.push();
            self.infer(x, ws)
        }
        fn grad(
            &self,
            grad_out: &Tensor,
            tape: &mut usb_tensor::Tape,
            _ws: &mut usb_tensor::Workspace,
        ) -> Tensor {
            let frame = tape.pop();
            tape.recycle(frame);
            grad_out.clone()
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
            f(self.w.slot());
        }
        fn param_count(&self) -> usize {
            self.w.value.len()
        }
        fn name(&self) -> &'static str {
            "scalar"
        }

        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    fn optimize(opt: &mut dyn FnMut(&mut Scalar), steps: usize) -> f32 {
        let mut model = Scalar {
            w: Param::new(Tensor::from_vec(vec![0.0], &[1]), true),
            x: 2.0,
        };
        for _ in 0..steps {
            let y = model.forward(&Tensor::zeros(&[1]), Mode::Train).data()[0];
            let dl = 2.0 * (y - 1.0);
            model.zero_grad();
            let _ = model.backward(&Tensor::from_vec(vec![dl], &[1]));
            opt(&mut model);
        }
        model.w.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05, 0.9, 0.0);
        let w = optimize(&mut |m| sgd.step(m), 200);
        assert!((w - 0.5).abs() < 1e-2, "w={w}, expected 0.5");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let w = optimize(&mut |m| adam.step(m), 300);
        assert!((w - 0.5).abs() < 1e-2, "w={w}, expected 0.5");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        let mut model = Scalar {
            w: Param::new(Tensor::from_vec(vec![4.0], &[1]), true),
            x: 0.0, // no data gradient, only decay
        };
        for _ in 0..10 {
            model.zero_grad();
            let _ = model.forward(&Tensor::zeros(&[1]), Mode::Train);
            let _ = model.backward(&Tensor::from_vec(vec![0.0], &[1]));
            sgd.step(&mut model);
        }
        assert!(model.w.value.data()[0] < 4.0);
    }

    #[test]
    fn tensor_adam_minimises_free_tensor() {
        // minimise ||p − target||².
        let target = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let mut p = Tensor::zeros(&[3]);
        let mut adam = TensorAdam::new(0.1).with_betas(0.5, 0.9);
        for _ in 0..200 {
            let grad = p.sub(&target).scale(2.0);
            adam.step(&mut [&mut p], &[&grad]);
        }
        for (a, b) in p.data().iter().zip(target.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_bad_learning_rate() {
        let _ = Sgd::new(0.0, 0.9, 0.0);
    }
}
